"""Compatibility shim so `python setup.py develop` works offline
(environments without the `wheel` package cannot run `pip install -e .`)."""

from setuptools import setup

setup()
