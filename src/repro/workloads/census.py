"""Census-like feature-engineering pipeline (Kaggle-style, Fig. 8a).

The paper's census workload fits in one machine's memory: it measures how
well each framework scales *up* (uses all cores of one node) rather than
*out*. Operator mix: missing-data handling, type normalization, filters,
derived features, per-group statistics, and a final training-table join.
"""

from __future__ import annotations

import numpy as np

from ..engine.local import DataFrame as LocalFrame

EDUCATION_LEVELS = ["HS", "Bachelors", "Masters", "PhD", "None"]
STATES = [f"ST{i:02d}" for i in range(51)]


def generate_census(n_rows: int = 50_000, seed: int = 0) -> dict[str, LocalFrame]:
    rng = np.random.default_rng(seed)
    age = rng.integers(16, 95, n_rows).astype(np.float64)
    age[rng.random(n_rows) < 0.03] = np.nan  # some missing ages
    income = np.round(rng.lognormal(10.3, 0.7, n_rows), 2)
    income[rng.random(n_rows) < 0.05] = np.nan
    people = LocalFrame({
        "person_id": np.arange(n_rows, dtype=np.int64),
        "age": age,
        "income": income,
        "education": np.array(
            [EDUCATION_LEVELS[v] for v in rng.integers(0, 5, n_rows)],
            dtype=object,
        ),
        "state": np.array(
            [STATES[v] for v in rng.integers(0, 51, n_rows)], dtype=object
        ),
        "hours_per_week": rng.integers(1, 99, n_rows).astype(np.float64),
    })
    state_info = LocalFrame({
        "state": np.array(STATES, dtype=object),
        "region": np.array(
            [f"R{i % 4}" for i in range(51)], dtype=object
        ),
        "cost_index": np.round(rng.uniform(0.8, 1.6, 51), 3),
    })
    return {"people": people, "states": state_info}


def census_pipeline(t):
    """Clean → derive → aggregate → join, the standard tabular-ML prep."""
    people = t["people"]
    people = people.fillna({"age": 35.0})
    people = people[people["income"] > 0]
    people = people.assign(
        log_income=lambda d: d["income"] * 0.0 + d["income"],
    )
    people = people.assign(
        full_time=lambda d: (d["hours_per_week"] >= 35).astype(np.float64),
        senior=lambda d: (d["age"] >= 60).astype(np.float64),
    )
    joined = people.merge(t["states"], on="state")
    joined = joined.assign(
        real_income=lambda d: d["income"] / d["cost_index"],
    )
    by_state = joined.groupby(["region", "education"], as_index=False).agg({
        "real_income": "mean",
        "full_time": "mean",
        "senior": "mean",
        "person_id": "count",
    })
    return by_state.sort_values(["region", "education"])


CENSUS_FEATURES = frozenset({"fillna", "merge_basic", "groupby_multi_key"})
