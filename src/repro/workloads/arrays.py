"""Array workloads: QR decomposition and linear regression weak scaling
(Fig. 8c/8d).

``run_qr``/``run_linear_regression`` execute one problem instance on a
fresh session and report the simulated makespan plus throughput
(problem bytes / virtual second), matching how the paper computes the
weak-scaling y-axis. ``weak_scaling`` sweeps 1..K sockets with the
per-socket problem size held constant.

The Dask comparison points run with the Dask profile's configuration
(higher per-task overhead, no operator fusion, no locality) and, for QR,
with the explicit ``rechunk`` step Dask requires before ``linalg.qr``
(Listing 1 of the paper) instead of the built-in auto rechunk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Config, default_config
from ..core.rechunk import rechunk_to_splits
from ..core.session import Session
from ..tensor import lstsq, qr, rand, randn, tensor_from_numpy


@dataclass
class ArrayRunResult:
    workload: str
    sockets: int
    n_rows: int
    n_cols: int
    makespan: float
    problem_bytes: int

    @property
    def throughput(self) -> float:
        """Bytes of problem data processed per virtual second."""
        if self.makespan <= 0:
            return 0.0
        return self.problem_bytes / self.makespan


def socket_config(sockets: int, base: Config | None = None) -> Config:
    """A cluster exposing ``sockets`` NUMA bands (one worker per socket,
    mirroring the paper's 2-socket machines)."""
    cfg = base if base is not None else default_config()
    cfg.cluster.n_workers = max((sockets + 1) // 2, 1)
    cfg.cluster.bands_per_worker = 2 if sockets > 1 else 1
    return cfg


def run_qr(n_rows: int, n_cols: int, config: Config, sockets: int = 1,
           manual_rechunk: bool = False, seed: int = 7) -> ArrayRunResult:
    """One QR instance; ``manual_rechunk`` imitates the Dask user's
    required explicit re-partitioning before calling ``qr``."""
    session = Session(config)
    try:
        a = rand(n_rows, n_cols, seed=seed, session=session)
        if manual_rechunk:
            target = rechunk_to_splits(
                (n_rows, n_cols), {1: n_cols}, 8, config.chunk_store_limit
            )
            a = a.rechunk(target)
            a.execute()  # the user-visible rechunk materializes
        q, r = qr(a)
        session.execute(q.data, r.data)
        makespan = session.cluster.clock.makespan
    finally:
        session.close()
    return ArrayRunResult("qr", sockets, n_rows, n_cols, makespan,
                          n_rows * n_cols * 8)


def run_linear_regression(n_rows: int, n_cols: int, config: Config,
                          sockets: int = 1, seed: int = 11) -> ArrayRunResult:
    """One OLS fit: synthesize X, y = Xβ + ε, solve via block normal
    equations."""
    session = Session(config)
    try:
        x = rand(n_rows, n_cols, seed=seed, session=session)
        noise = randn(n_rows, seed=seed + 1, session=session)
        beta = np.linspace(1.0, 2.0, n_cols)
        xb = x @ tensor_from_numpy(beta.reshape(n_cols, 1), session)
        y_full = xb.fetch().ravel() + 0.01 * noise.fetch()
        y = tensor_from_numpy(y_full, session)
        coef = lstsq(x, y)
        coef.execute()
        makespan = session.cluster.clock.makespan
    finally:
        session.close()
    return ArrayRunResult("lr", sockets, n_rows, n_cols, makespan,
                          n_rows * n_cols * 8)


def weak_scaling(workload: str, sockets_list: list[int],
                 base_rows: int, n_cols: int,
                 config_factory, **kwargs) -> list[ArrayRunResult]:
    """Sweep socket counts with per-socket problem size held constant.

    ``config_factory(sockets) -> Config`` builds each point's cluster.
    """
    runner = run_qr if workload == "qr" else run_linear_regression
    results = []
    for sockets in sockets_list:
        cfg = config_factory(sockets)
        results.append(
            runner(base_rows * sockets, n_cols, cfg, sockets=sockets,
                   **kwargs)
        )
    return results
