"""PLAsTiCC-like astronomy pipeline (Kaggle-style, Fig. 8a).

Light-curve feature extraction: a large detections table (object, time,
flux, passband) reduced to per-object statistical features, joined with
object metadata — the second single-machine scaling workload.
"""

from __future__ import annotations

import numpy as np

from ..engine.local import DataFrame as LocalFrame


def generate_plasticc(n_objects: int = 2_000, points_per_object: int = 30,
                      seed: int = 0) -> dict[str, LocalFrame]:
    rng = np.random.default_rng(seed)
    n = n_objects * points_per_object
    object_ids = np.repeat(np.arange(n_objects, dtype=np.int64),
                           points_per_object)
    detections = LocalFrame({
        "object_id": object_ids,
        "mjd": rng.uniform(59_000, 60_500, n),
        "passband": rng.integers(0, 6, n),
        "flux": rng.normal(0, 50, n) + np.repeat(
            rng.normal(0, 200, n_objects), points_per_object
        ),
        "flux_err": np.abs(rng.normal(5, 2, n)),
        "detected": rng.random(n) < 0.3,
    })
    metadata = LocalFrame({
        "object_id": np.arange(n_objects, dtype=np.int64),
        "ra": rng.uniform(0, 360, n_objects),
        "decl": rng.uniform(-90, 90, n_objects),
        "hostgal_photoz": np.abs(rng.normal(0.5, 0.3, n_objects)),
        "target": rng.integers(0, 14, n_objects),
    })
    return {"detections": detections, "metadata": metadata}


def plasticc_pipeline(t):
    """Per-object light-curve features, the Kaggle-kernel operator mix."""
    det = t["detections"]
    det = det[det["flux_err"] < 20.0]
    det = det.assign(
        snr=lambda d: d["flux"] / d["flux_err"],
    )
    det = det.assign(
        strong=lambda d: (d["snr"].abs() > 5.0).astype(np.float64),
    )
    features = det.groupby("object_id", as_index=False).agg({
        "flux": "mean",
        "snr": "std",
        "strong": "sum",
        "mjd": "max",
        "passband": "nunique",
    })
    joined = features.merge(t["metadata"], on="object_id")
    joined = joined[joined["hostgal_photoz"] < 1.5]
    return joined.sort_values("object_id")


PLASTICC_FEATURES = frozenset({"groupby_nunique", "merge_basic", "abs"})
