"""Synthetic TPC-H data generator (the repo's ``dbgen`` stand-in).

Generates the eight TPC-H tables at a laptop-scale row budget while
preserving the spec's table-size ratios, key relationships, value domains
and date ranges, so all 22 queries exercise the same operator mix as the
real benchmark. A ``skew`` knob concentrates order/lineitem foreign keys
on few customers/parts to reproduce the paper's data-skew scenarios.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from ...engine.local import DataFrame, RangeIndex
from . import schema


def _dates(rng, n: int, start=schema.DATE_START, end=schema.DATE_END):
    lo = np.datetime64(start).astype("datetime64[D]").astype(np.int64)
    hi = np.datetime64(end).astype("datetime64[D]").astype(np.int64)
    return rng.integers(lo, hi, n).astype("datetime64[D]")


def _choice(rng, options, n: int) -> np.ndarray:
    idx = rng.integers(0, len(options), n)
    out = np.empty(n, dtype=object)
    for i, j in enumerate(idx):
        out[i] = options[j]
    return out


def _comments(rng, n: int, keyword_rate: float = 0.03) -> np.ndarray:
    words = schema.P_NAME_WORDS
    out = np.empty(n, dtype=object)
    keyword_mask = rng.random(n) < keyword_rate
    for i in range(n):
        base = " ".join(
            words[j] for j in rng.integers(0, len(words), 4)
        )
        if keyword_mask[i]:
            keyword = schema.COMMENT_KEYWORDS[
                int(rng.integers(0, len(schema.COMMENT_KEYWORDS)))
            ]
            base = f"{base} {keyword} {base[:8]}"
        out[i] = base
    return out


def _skewed_keys(rng, n: int, n_keys: int, skew: float) -> np.ndarray:
    """Foreign keys over ``1..n_keys``; ``skew`` in [0, 1) routes that
    fraction of rows to ~1% of the keys (a hot head)."""
    uniform = rng.integers(1, n_keys + 1, n)
    if skew <= 0:
        return uniform
    hot_count = max(n_keys // 100, 1)
    hot_keys = rng.integers(1, hot_count + 1, n)
    take_hot = rng.random(n) < skew
    return np.where(take_hot, hot_keys, uniform)


def generate_tables(sf: float = 1.0, seed: int = 0,
                    skew: float = 0.0) -> dict[str, DataFrame]:
    """Generate all eight tables at scale factor ``sf``."""
    rng = np.random.default_rng(seed)
    counts = {
        name: (rows if name in schema.FIXED_TABLES
               else max(int(rows * sf), 1))
        for name, rows in schema.ROWS_PER_SF.items()
    }
    tables: dict[str, DataFrame] = {}

    tables["region"] = DataFrame({
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": np.array(schema.REGIONS, dtype=object),
        "r_comment": _comments(rng, 5),
    })

    nation_names = np.array([n for n, _ in schema.NATIONS], dtype=object)
    nation_regions = np.array([r for _, r in schema.NATIONS], dtype=np.int64)
    tables["nation"] = DataFrame({
        "n_nationkey": np.arange(25, dtype=np.int64),
        "n_name": nation_names,
        "n_regionkey": nation_regions,
        "n_comment": _comments(rng, 25),
    })

    n_supp = counts["supplier"]
    tables["supplier"] = DataFrame({
        "s_suppkey": np.arange(1, n_supp + 1, dtype=np.int64),
        "s_name": np.array([f"Supplier#{i:09d}" for i in range(1, n_supp + 1)],
                           dtype=object),
        "s_address": _comments(rng, n_supp, keyword_rate=0.0),
        "s_nationkey": rng.integers(0, 25, n_supp),
        "s_phone": np.array([f"{rng.integers(10, 35)}-{i:07d}"
                             for i in range(n_supp)], dtype=object),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_supp), 2),
        "s_comment": _comments(rng, n_supp),
    })

    n_cust = counts["customer"]
    tables["customer"] = DataFrame({
        "c_custkey": np.arange(1, n_cust + 1, dtype=np.int64),
        "c_name": np.array([f"Customer#{i:09d}" for i in range(1, n_cust + 1)],
                           dtype=object),
        "c_address": _comments(rng, n_cust, keyword_rate=0.0),
        "c_nationkey": rng.integers(0, 25, n_cust),
        "c_phone": np.array([f"{rng.integers(10, 35)}-{i:07d}"
                             for i in range(n_cust)], dtype=object),
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, n_cust), 2),
        "c_mktsegment": _choice(rng, schema.MKT_SEGMENTS, n_cust),
        "c_comment": _comments(rng, n_cust),
    })

    n_part = counts["part"]
    name_words = schema.P_NAME_WORDS
    tables["part"] = DataFrame({
        "p_partkey": np.arange(1, n_part + 1, dtype=np.int64),
        "p_name": np.array([
            " ".join(name_words[j] for j in rng.integers(0, len(name_words), 5))
            for _ in range(n_part)
        ], dtype=object),
        "p_mfgr": np.array([f"Manufacturer#{rng.integers(1, 6)}"
                            for _ in range(n_part)], dtype=object),
        "p_brand": _choice(rng, schema.BRANDS, n_part),
        "p_type": _choice(rng, schema.PART_TYPES, n_part),
        "p_size": rng.integers(1, 51, n_part),
        "p_container": _choice(rng, schema.PART_CONTAINERS, n_part),
        "p_retailprice": np.round(rng.uniform(900.0, 2000.0, n_part), 2),
        "p_comment": _comments(rng, n_part),
    })

    n_ps = counts["partsupp"]
    tables["partsupp"] = DataFrame({
        "ps_partkey": rng.integers(1, n_part + 1, n_ps),
        "ps_suppkey": rng.integers(1, n_supp + 1, n_ps),
        "ps_availqty": rng.integers(1, 10000, n_ps),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, n_ps), 2),
        "ps_comment": _comments(rng, n_ps),
    })

    n_ord = counts["orders"]
    order_keys = np.arange(1, n_ord + 1, dtype=np.int64)
    tables["orders"] = DataFrame({
        "o_orderkey": order_keys,
        "o_custkey": _skewed_keys(rng, n_ord, n_cust, skew),
        "o_orderstatus": _choice(rng, ["F", "O", "P"], n_ord),
        "o_totalprice": np.round(rng.uniform(1000.0, 400000.0, n_ord), 2),
        "o_orderdate": _dates(rng, n_ord, end="1998-08-02"),
        "o_orderpriority": _choice(rng, schema.ORDER_PRIORITIES, n_ord),
        "o_clerk": np.array([f"Clerk#{rng.integers(1, 1000):09d}"
                             for _ in range(n_ord)], dtype=object),
        "o_shippriority": np.zeros(n_ord, dtype=np.int64),
        "o_comment": _comments(rng, n_ord),
    })

    n_li = counts["lineitem"]
    li_orderkeys = _skewed_keys(rng, n_li, n_ord, skew)
    order_dates = tables["orders"]["o_orderdate"].values
    base_dates = order_dates[li_orderkeys - 1]
    ship_delta = rng.integers(1, 121, n_li)
    commit_delta = rng.integers(30, 91, n_li)
    receipt_delta = rng.integers(1, 31, n_li)
    shipdate = base_dates + ship_delta
    tables["lineitem"] = DataFrame({
        "l_orderkey": li_orderkeys,
        "l_partkey": _skewed_keys(rng, n_li, n_part, skew),
        "l_suppkey": rng.integers(1, n_supp + 1, n_li),
        "l_linenumber": rng.integers(1, 8, n_li),
        "l_quantity": rng.integers(1, 51, n_li).astype(np.float64),
        "l_extendedprice": np.round(rng.uniform(900.0, 100000.0, n_li), 2),
        "l_discount": np.round(rng.uniform(0.0, 0.10, n_li), 2),
        "l_tax": np.round(rng.uniform(0.0, 0.08, n_li), 2),
        "l_returnflag": _choice(rng, schema.RETURN_FLAGS, n_li),
        "l_linestatus": _choice(rng, schema.LINE_STATUSES, n_li),
        "l_shipdate": shipdate,
        "l_commitdate": base_dates + commit_delta,
        "l_receiptdate": shipdate + receipt_delta,
        "l_shipinstruct": _choice(rng, schema.SHIP_INSTRUCTS, n_li),
        "l_shipmode": _choice(rng, schema.SHIP_MODES, n_li),
        "l_comment": _comments(rng, n_li),
    })
    return tables


def write_tables(tables: Mapping[str, DataFrame], directory) -> dict[str, str]:
    """Write every table as ``<dir>/<name>.rpq``; returns the path map."""
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for name, frame in tables.items():
        path = os.path.join(str(directory), f"{name}.rpq")
        frame.to_parquet(path)
        paths[name] = path
    return paths


def dataset_bytes(tables: Mapping[str, DataFrame]) -> int:
    """Total in-memory footprint of a generated dataset."""
    return sum(frame.nbytes for frame in tables.values())
