"""All 22 TPC-H queries written with the pandas-style dataframe API.

Each query is a function ``q<i>(t)`` where ``t`` maps table name →
dataframe handle. The same code runs against the distributed engine
(``repro.dataframe``) and the single-node backend (``repro.frame``) —
that interchangeability *is* the paper's drop-in-replacement claim.

``as_scalar``/``keys_of`` bridge the two surfaces where a query needs a
driver-side value (a threshold, a key list for semi/anti joins).

``QUERY_FEATURES`` tags each query with the API features it exercises;
simulated baseline engines declare unsupported features, which is how the
harness classifies the paper's "API Compatibility" failures (Table II).
"""

from __future__ import annotations

import numpy as np

D = np.datetime64


def as_scalar(value) -> float:
    """Materialize a possibly-deferred reduction result."""
    return float(value)


def keys_of(series) -> list:
    """Distinct values of a column as a driver-side list (for isin)."""
    return list(series.unique())


def materialize(obj):
    """Fetch a deferred result; local results pass through."""
    if hasattr(obj, "fetch"):
        return obj.fetch()
    return obj


# --------------------------------------------------------------------------
# Q1 — pricing summary report
# --------------------------------------------------------------------------

def q1(t):
    li = t["lineitem"]
    li = li[li["l_shipdate"] <= D("1998-09-02")]
    li = li.assign(
        disc_price=lambda d: d["l_extendedprice"] * (1 - d["l_discount"]),
    )
    li = li.assign(
        charge=lambda d: d["disc_price"] * (1 + d["l_tax"]),
    )
    out = li.groupby(["l_returnflag", "l_linestatus"], as_index=False).agg({
        "l_quantity": "sum",
        "l_extendedprice": "sum",
        "disc_price": "sum",
        "charge": "sum",
        "l_discount": "mean",
    })
    return out.sort_values(["l_returnflag", "l_linestatus"])


# --------------------------------------------------------------------------
# Q2 — minimum cost supplier (four merges, the paper's dynamic-tiling demo)
# --------------------------------------------------------------------------

def q2(t):
    part = t["part"]
    part = part[part["p_size"] <= 25]
    part = part[part["p_type"].str.endswith("BRASS")]
    europe = t["region"][t["region"]["r_name"] == "EUROPE"]
    nations = t["nation"].merge(europe, left_on="n_regionkey",
                                right_on="r_regionkey")
    suppliers = t["supplier"].merge(nations, left_on="s_nationkey",
                                    right_on="n_nationkey")
    ps = t["partsupp"].merge(suppliers, left_on="ps_suppkey",
                             right_on="s_suppkey")
    ps = ps.merge(part, left_on="ps_partkey", right_on="p_partkey")
    min_cost = ps.groupby("ps_partkey", as_index=False).agg(
        {"ps_supplycost": "min"}
    ).rename(columns={"ps_supplycost": "min_cost"})
    ps = ps.merge(min_cost, on="ps_partkey")
    best = ps[ps["ps_supplycost"] == ps["min_cost"]]
    best = best[["s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
                 "s_address", "s_phone", "s_comment"]]
    return best.sort_values(["s_acctbal", "n_name", "s_name", "p_partkey"],
                            ascending=[False, True, True, True]).head(100)


# --------------------------------------------------------------------------
# Q3 — shipping priority
# --------------------------------------------------------------------------

def q3(t):
    cust = t["customer"]
    cust = cust[cust["c_mktsegment"] == "BUILDING"]
    orders = t["orders"]
    orders = orders[orders["o_orderdate"] < D("1995-03-15")]
    li = t["lineitem"]
    li = li[li["l_shipdate"] > D("1995-03-15")]
    joined = cust.merge(orders, left_on="c_custkey", right_on="o_custkey")
    joined = joined.merge(li, left_on="o_orderkey", right_on="l_orderkey")
    joined = joined.assign(
        revenue=lambda d: d["l_extendedprice"] * (1 - d["l_discount"])
    )
    out = joined.groupby(
        ["l_orderkey", "o_orderdate", "o_shippriority"], as_index=False
    ).agg({"revenue": "sum"})
    return out.sort_values(["revenue", "o_orderdate"],
                           ascending=[False, True]).head(10)


# --------------------------------------------------------------------------
# Q4 — order priority checking (semi join)
# --------------------------------------------------------------------------

def q4(t):
    orders = t["orders"]
    orders = orders[orders["o_orderdate"] >= D("1993-07-01")]
    orders = orders[orders["o_orderdate"] < D("1993-10-01")]
    li = t["lineitem"]
    late = li[li["l_commitdate"] < li["l_receiptdate"]]
    late_orders = keys_of(late["l_orderkey"])
    orders = orders[orders["o_orderkey"].isin(late_orders)]
    out = orders.groupby("o_orderpriority", as_index=False).agg(
        {"o_orderkey": "count"}
    ).rename(columns={"o_orderkey": "order_count"})
    return out.sort_values("o_orderpriority")


# --------------------------------------------------------------------------
# Q5 — local supplier volume
# --------------------------------------------------------------------------

def q5(t):
    asia = t["region"][t["region"]["r_name"] == "ASIA"]
    nations = t["nation"].merge(asia, left_on="n_regionkey",
                                right_on="r_regionkey")
    cust = t["customer"].merge(nations, left_on="c_nationkey",
                               right_on="n_nationkey")
    orders = t["orders"]
    orders = orders[orders["o_orderdate"] >= D("1994-01-01")]
    orders = orders[orders["o_orderdate"] < D("1995-01-01")]
    joined = orders.merge(cust, left_on="o_custkey", right_on="c_custkey")
    joined = joined.merge(t["lineitem"], left_on="o_orderkey",
                          right_on="l_orderkey")
    joined = joined.merge(t["supplier"], left_on="l_suppkey",
                          right_on="s_suppkey")
    joined = joined[joined["s_nationkey"] == joined["c_nationkey"]]
    joined = joined.assign(
        revenue=lambda d: d["l_extendedprice"] * (1 - d["l_discount"])
    )
    out = joined.groupby("n_name", as_index=False).agg({"revenue": "sum"})
    return out.sort_values("revenue", ascending=False)


# --------------------------------------------------------------------------
# Q6 — forecasting revenue change (scalar)
# --------------------------------------------------------------------------

def q6(t):
    li = t["lineitem"]
    li = li[li["l_shipdate"] >= D("1994-01-01")]
    li = li[li["l_shipdate"] < D("1995-01-01")]
    li = li[li["l_discount"].between(0.05, 0.07)]
    li = li[li["l_quantity"] < 24]
    return as_scalar((li["l_extendedprice"] * li["l_discount"]).sum())


# --------------------------------------------------------------------------
# Q7 — volume shipping (many merges; the paper's nine-merge query)
# --------------------------------------------------------------------------

def q7(t):
    nation = t["nation"]
    n1 = nation[nation["n_name"] == "FRANCE"]
    n2 = nation[nation["n_name"] == "GERMANY"]

    def volume(supp_nation, cust_nation):
        supp = t["supplier"].merge(
            supp_nation.rename(columns={"n_name": "supp_nation"}),
            left_on="s_nationkey", right_on="n_nationkey")
        cust = t["customer"].merge(
            cust_nation.rename(columns={"n_name": "cust_nation"}),
            left_on="c_nationkey", right_on="n_nationkey")
        li = t["lineitem"]
        li = li[li["l_shipdate"] >= D("1995-01-01")]
        li = li[li["l_shipdate"] <= D("1996-12-31")]
        joined = li.merge(supp, left_on="l_suppkey", right_on="s_suppkey")
        joined = joined.merge(t["orders"], left_on="l_orderkey",
                              right_on="o_orderkey")
        joined = joined.merge(cust, left_on="o_custkey", right_on="c_custkey")
        return joined

    both = [volume(n1, n2), volume(n2, n1)]
    out_parts = []
    for joined in both:
        joined = joined.assign(
            volume=lambda d: d["l_extendedprice"] * (1 - d["l_discount"]),
        )
        joined = joined.assign(l_year=lambda d: d["l_shipdate"].dt.year)
        part = joined.groupby(
            ["supp_nation", "cust_nation", "l_year"], as_index=False
        ).agg({"volume": "sum"})
        out_parts.append(materialize(part))
    from ...engine.local import concat as local_concat

    merged = local_concat(out_parts, ignore_index=True)
    return merged.sort_values(["supp_nation", "cust_nation", "l_year"])


# --------------------------------------------------------------------------
# Q8 — national market share
# --------------------------------------------------------------------------

def q8(t):
    part = t["part"][t["part"]["p_type"].str.endswith("STEEL")]
    america = t["region"][t["region"]["r_name"] == "AMERICA"]
    nations_in_region = t["nation"].merge(
        america, left_on="n_regionkey", right_on="r_regionkey")
    cust = t["customer"].merge(nations_in_region, left_on="c_nationkey",
                               right_on="n_nationkey")
    orders = t["orders"]
    orders = orders[orders["o_orderdate"] >= D("1995-01-01")]
    orders = orders[orders["o_orderdate"] <= D("1996-12-31")]
    li = t["lineitem"].merge(part, left_on="l_partkey", right_on="p_partkey")
    joined = li.merge(orders, left_on="l_orderkey", right_on="o_orderkey")
    joined = joined.merge(cust, left_on="o_custkey", right_on="c_custkey")
    supp_nation = t["supplier"].merge(
        t["nation"].rename(columns={"n_name": "supp_nation",
                                    "n_nationkey": "supp_nationkey"}),
        left_on="s_nationkey", right_on="supp_nationkey")
    joined = joined.merge(supp_nation, left_on="l_suppkey",
                          right_on="s_suppkey")
    joined = joined.assign(
        volume=lambda d: d["l_extendedprice"] * (1 - d["l_discount"]),
    )
    joined = joined.assign(o_year=lambda d: d["o_orderdate"].dt.year)
    joined = joined.assign(
        brazil_volume=lambda d: d["volume"].where(
            d["supp_nation"] == "BRAZIL", 0.0
        )
    )
    out = joined.groupby("o_year", as_index=False).agg(
        {"brazil_volume": "sum", "volume": "sum"}
    )
    out = out.assign(mkt_share=lambda d: d["brazil_volume"] / d["volume"])
    return out[["o_year", "mkt_share"]].sort_values("o_year")


# --------------------------------------------------------------------------
# Q9 — product type profit measure
# --------------------------------------------------------------------------

def q9(t):
    part = t["part"][t["part"]["p_name"].str.contains("green")]
    li = t["lineitem"].merge(part, left_on="l_partkey", right_on="p_partkey")
    li = li.merge(t["supplier"], left_on="l_suppkey", right_on="s_suppkey")
    li = li.merge(t["partsupp"], left_on=["l_partkey", "l_suppkey"],
                  right_on=["ps_partkey", "ps_suppkey"])
    li = li.merge(t["orders"], left_on="l_orderkey", right_on="o_orderkey")
    li = li.merge(t["nation"], left_on="s_nationkey", right_on="n_nationkey")
    li = li.assign(
        amount=lambda d: d["l_extendedprice"] * (1 - d["l_discount"])
        - d["ps_supplycost"] * d["l_quantity"],
    )
    li = li.assign(o_year=lambda d: d["o_orderdate"].dt.year)
    out = li.groupby(["n_name", "o_year"], as_index=False).agg(
        {"amount": "sum"}
    )
    return out.sort_values(["n_name", "o_year"], ascending=[True, False])


# --------------------------------------------------------------------------
# Q10 — returned item reporting
# --------------------------------------------------------------------------

def q10(t):
    orders = t["orders"]
    orders = orders[orders["o_orderdate"] >= D("1993-10-01")]
    orders = orders[orders["o_orderdate"] < D("1994-01-01")]
    li = t["lineitem"][t["lineitem"]["l_returnflag"] == "R"]
    joined = t["customer"].merge(orders, left_on="c_custkey",
                                 right_on="o_custkey")
    joined = joined.merge(li, left_on="o_orderkey", right_on="l_orderkey")
    joined = joined.merge(t["nation"], left_on="c_nationkey",
                          right_on="n_nationkey")
    joined = joined.assign(
        revenue=lambda d: d["l_extendedprice"] * (1 - d["l_discount"])
    )
    out = joined.groupby(
        ["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name"],
        as_index=False,
    ).agg({"revenue": "sum"})
    return out.sort_values("revenue", ascending=False).head(20)


# --------------------------------------------------------------------------
# Q11 — important stock identification (scalar threshold subquery)
# --------------------------------------------------------------------------

def q11(t):
    germany = t["nation"][t["nation"]["n_name"] == "GERMANY"]
    supp = t["supplier"].merge(germany, left_on="s_nationkey",
                               right_on="n_nationkey")
    ps = t["partsupp"].merge(supp, left_on="ps_suppkey", right_on="s_suppkey")
    ps = ps.assign(value=lambda d: d["ps_supplycost"] * d["ps_availqty"])
    total = as_scalar(ps["value"].sum())
    per_part = ps.groupby("ps_partkey", as_index=False).agg({"value": "sum"})
    out = per_part[per_part["value"] > total * 0.001]
    return out.sort_values("value", ascending=False)


# --------------------------------------------------------------------------
# Q12 — shipping modes and order priority
# --------------------------------------------------------------------------

def q12(t):
    li = t["lineitem"]
    li = li[li["l_shipmode"].isin(["MAIL", "SHIP"])]
    li = li[li["l_commitdate"] < li["l_receiptdate"]]
    li = li[li["l_shipdate"] < li["l_commitdate"]]
    li = li[li["l_receiptdate"] >= D("1994-01-01")]
    li = li[li["l_receiptdate"] < D("1995-01-01")]
    joined = li.merge(t["orders"], left_on="l_orderkey", right_on="o_orderkey")
    joined = joined.assign(
        high=lambda d: d["o_orderpriority"].isin(
            ["1-URGENT", "2-HIGH"]
        ).astype(np.float64),
    )
    joined = joined.assign(low=lambda d: 1.0 - d["high"])
    out = joined.groupby("l_shipmode", as_index=False).agg(
        {"high": "sum", "low": "sum"}
    )
    return out.sort_values("l_shipmode")


# --------------------------------------------------------------------------
# Q13 — customer distribution (left join + named aggregation)
# --------------------------------------------------------------------------

def q13(t):
    orders = t["orders"]
    orders = orders[~orders["o_comment"].str.contains("special requests")]
    joined = t["customer"].merge(orders, left_on="c_custkey",
                                 right_on="o_custkey", how="left")
    counts = joined.groupby("c_custkey", as_index=False).agg(
        c_count=("o_orderkey", "count")
    )
    out = counts.groupby("c_count", as_index=False).agg(
        custdist=("c_count", "size")
    )
    return out.sort_values(["custdist", "c_count"], ascending=[False, False])


# --------------------------------------------------------------------------
# Q14 — promotion effect (scalar)
# --------------------------------------------------------------------------

def q14(t):
    li = t["lineitem"]
    li = li[li["l_shipdate"] >= D("1995-09-01")]
    li = li[li["l_shipdate"] < D("1995-10-01")]
    joined = li.merge(t["part"], left_on="l_partkey", right_on="p_partkey")
    joined = joined.assign(
        revenue=lambda d: d["l_extendedprice"] * (1 - d["l_discount"]),
    )
    joined = joined.assign(
        promo=lambda d: d["revenue"].where(
            d["p_type"].str.startswith("PROMO"), 0.0
        )
    )
    promo = as_scalar(joined["promo"].sum())
    total = as_scalar(joined["revenue"].sum())
    return 100.0 * promo / total if total else 0.0


# --------------------------------------------------------------------------
# Q15 — top supplier (scalar max subquery)
# --------------------------------------------------------------------------

def q15(t):
    li = t["lineitem"]
    li = li[li["l_shipdate"] >= D("1996-01-01")]
    li = li[li["l_shipdate"] < D("1996-04-01")]
    li = li.assign(
        revenue=lambda d: d["l_extendedprice"] * (1 - d["l_discount"])
    )
    per_supp = li.groupby("l_suppkey", as_index=False).agg({"revenue": "sum"})
    top = as_scalar(per_supp["revenue"].max())
    best = per_supp[per_supp["revenue"] >= top * (1 - 1e-9)]
    out = best.merge(t["supplier"], left_on="l_suppkey", right_on="s_suppkey")
    return out[["s_suppkey", "s_name", "s_address", "s_phone", "revenue"]]


# --------------------------------------------------------------------------
# Q16 — parts/supplier relationship (anti join + count distinct)
# --------------------------------------------------------------------------

def q16(t):
    supp = t["supplier"]
    complained = supp[supp["s_comment"].str.contains("Customer Complaints")]
    bad_keys = keys_of(complained["s_suppkey"])
    part = t["part"]
    part = part[part["p_brand"] != "Brand#45"]
    part = part[~part["p_type"].str.startswith("MEDIUM POLISHED")]
    part = part[part["p_size"].isin([49, 14, 23, 45, 19, 3, 36, 9])]
    ps = t["partsupp"].merge(part, left_on="ps_partkey", right_on="p_partkey")
    ps = ps[~ps["ps_suppkey"].isin(bad_keys)]
    out = ps.groupby(["p_brand", "p_type", "p_size"], as_index=False).agg(
        supplier_cnt=("ps_suppkey", "nunique")
    )
    return out.sort_values(
        ["supplier_cnt", "p_brand", "p_type", "p_size"],
        ascending=[False, True, True, True],
    )


# --------------------------------------------------------------------------
# Q17 — small-quantity-order revenue (correlated avg subquery)
# --------------------------------------------------------------------------

def q17(t):
    part = t["part"]
    part = part[part["p_container"].str.endswith("BOX")]
    li = t["lineitem"].merge(part, left_on="l_partkey", right_on="p_partkey")
    avg_qty = li.groupby("l_partkey", as_index=False).agg(
        {"l_quantity": "mean"}
    ).rename(columns={"l_quantity": "avg_qty"})
    joined = li.merge(avg_qty, on="l_partkey")
    small = joined[joined["l_quantity"] < joined["avg_qty"] * 0.2]
    return as_scalar(small["l_extendedprice"].sum()) / 7.0


# --------------------------------------------------------------------------
# Q18 — large volume customers
# --------------------------------------------------------------------------

def q18(t, qty_threshold: float = 150.0):
    li = t["lineitem"]
    per_order = li.groupby("l_orderkey", as_index=False).agg(
        {"l_quantity": "sum"}
    ).rename(columns={"l_quantity": "total_qty"})
    big = per_order[per_order["total_qty"] > qty_threshold]
    joined = big.merge(t["orders"], left_on="l_orderkey",
                       right_on="o_orderkey")
    joined = joined.merge(t["customer"], left_on="o_custkey",
                          right_on="c_custkey")
    out = joined[["c_name", "c_custkey", "o_orderkey", "o_orderdate",
                  "o_totalprice", "total_qty"]]
    return out.sort_values(["o_totalprice", "o_orderdate"],
                           ascending=[False, True]).head(100)


# --------------------------------------------------------------------------
# Q19 — discounted revenue (disjunctive predicates, scalar)
# --------------------------------------------------------------------------

def q19(t):
    joined = t["lineitem"].merge(t["part"], left_on="l_partkey",
                                 right_on="p_partkey")
    joined = joined[joined["l_shipmode"].isin(["AIR", "REG AIR"])]
    joined = joined[joined["l_shipinstruct"] == "DELIVER IN PERSON"]
    b1 = (joined["p_brand"] == "Brand#12") \
        & joined["l_quantity"].between(1, 11) & (joined["p_size"] <= 5)
    b2 = (joined["p_brand"] == "Brand#23") \
        & joined["l_quantity"].between(10, 20) & (joined["p_size"] <= 10)
    b3 = (joined["p_brand"] == "Brand#34") \
        & joined["l_quantity"].between(20, 30) & (joined["p_size"] <= 15)
    matched = joined[b1 | b2 | b3]
    return as_scalar(
        (matched["l_extendedprice"] * (1 - matched["l_discount"])).sum()
    )


# --------------------------------------------------------------------------
# Q20 — potential part promotion (nested semi joins)
# --------------------------------------------------------------------------

def q20(t):
    part = t["part"][t["part"]["p_name"].str.startswith("forest")]
    part_keys = keys_of(part["p_partkey"])
    li = t["lineitem"]
    li = li[li["l_shipdate"] >= D("1994-01-01")]
    li = li[li["l_shipdate"] < D("1995-01-01")]
    li = li[li["l_partkey"].isin(part_keys)]
    shipped = li.groupby(["l_partkey", "l_suppkey"], as_index=False).agg(
        {"l_quantity": "sum"}
    ).rename(columns={"l_quantity": "shipped_qty"})
    ps = t["partsupp"][t["partsupp"]["ps_partkey"].isin(part_keys)]
    joined = ps.merge(shipped, left_on=["ps_partkey", "ps_suppkey"],
                      right_on=["l_partkey", "l_suppkey"])
    qualified = joined[joined["ps_availqty"] > joined["shipped_qty"] * 0.5]
    supp_keys = keys_of(qualified["ps_suppkey"])
    canada = t["nation"][t["nation"]["n_name"] == "CANADA"]
    supp = t["supplier"].merge(canada, left_on="s_nationkey",
                               right_on="n_nationkey")
    supp = supp[supp["s_suppkey"].isin(supp_keys)]
    return materialize(supp[["s_name", "s_address"]].sort_values("s_name"))


# --------------------------------------------------------------------------
# Q21 — suppliers who kept orders waiting (multi-exists)
# --------------------------------------------------------------------------

def q21(t):
    orders = t["orders"][t["orders"]["o_orderstatus"] == "F"]
    li = t["lineitem"].merge(orders, left_on="l_orderkey",
                             right_on="o_orderkey")
    per_order = li.groupby("l_orderkey", as_index=False).agg(
        supp_count=("l_suppkey", "nunique")
    )
    multi = per_order[per_order["supp_count"] > 1]
    late = li[li["l_receiptdate"] > li["l_commitdate"]]
    late_per_order = late.groupby("l_orderkey", as_index=False).agg(
        late_supp_count=("l_suppkey", "nunique")
    )
    single_late = late_per_order[late_per_order["late_supp_count"] == 1]
    target = multi.merge(single_late, on="l_orderkey")
    culprits = late.merge(target, on="l_orderkey")
    culprits = culprits.merge(t["supplier"], left_on="l_suppkey",
                              right_on="s_suppkey")
    saudi = culprits.merge(t["nation"], left_on="s_nationkey",
                           right_on="n_nationkey")
    saudi = saudi[saudi["n_name"] == "SAUDI ARABIA"]
    out = saudi.groupby("s_name", as_index=False).agg(
        numwait=("l_orderkey", "nunique")
    )
    return out.sort_values(["numwait", "s_name"],
                           ascending=[False, True]).head(100)


# --------------------------------------------------------------------------
# Q22 — global sales opportunity (anti join + scalar avg)
# --------------------------------------------------------------------------

def q22(t):
    cust = t["customer"]
    cust = cust.assign(cntrycode=lambda d: d["c_phone"].str.slice(0, 2))
    codes = ["13", "31", "23", "29", "30", "18", "17"]
    cust = cust[cust["cntrycode"].isin(codes)]
    positive = cust[cust["c_acctbal"] > 0.0]
    avg_bal = as_scalar(positive["c_acctbal"].mean())
    rich = cust[cust["c_acctbal"] > avg_bal]
    with_orders = keys_of(t["orders"]["o_custkey"])
    no_orders = rich[~rich["c_custkey"].isin(with_orders)]
    out = no_orders.groupby("cntrycode", as_index=False).agg(
        {"c_custkey": "count", "c_acctbal": "sum"}
    ).rename(columns={"c_custkey": "numcust", "c_acctbal": "totacctbal"})
    return out.sort_values("cntrycode")


ALL_QUERIES = {f"q{i}": globals()[f"q{i}"] for i in range(1, 23)}

#: API features each query exercises, used by the engine compat matrices.
QUERY_FEATURES: dict[str, frozenset] = {
    "q1": frozenset({"groupby_multi_key", "dt_compare", "assign"}),
    "q2": frozenset({"merge_basic", "str_ops", "sort_multi"}),
    "q3": frozenset({"merge_basic", "groupby_multi_key", "sort_multi"}),
    "q4": frozenset({"isin_semi_join", "groupby_basic"}),
    "q5": frozenset({"merge_basic", "cross_column_filter"}),
    "q6": frozenset({"between", "scalar_reduce"}),
    "q7": frozenset({"merge_basic", "dt_ops", "concat"}),
    "q8": frozenset({"merge_basic", "where_case", "dt_ops"}),
    "q9": frozenset({"merge_multi_key", "str_ops", "dt_ops"}),
    "q10": frozenset({"merge_basic", "groupby_multi_key", "sort_single"}),
    "q11": frozenset({"merge_basic", "scalar_reduce"}),
    "q12": frozenset({"isin_semi_join", "cross_column_filter",
                      "where_case"}),
    "q13": frozenset({"merge_left", "groupby_named_agg",
                      "groupby_of_groupby"}),
    "q14": frozenset({"merge_basic", "where_case", "scalar_reduce"}),
    "q15": frozenset({"groupby_basic", "scalar_reduce"}),
    "q16": frozenset({"isin_semi_join", "groupby_nunique",
                      "groupby_named_agg"}),
    "q17": frozenset({"merge_basic", "groupby_basic", "scalar_reduce"}),
    "q18": frozenset({"groupby_basic", "merge_basic", "sort_multi"}),
    "q19": frozenset({"between", "boolean_or", "scalar_reduce"}),
    "q20": frozenset({"isin_semi_join", "merge_multi_key", "str_ops"}),
    "q21": frozenset({"groupby_nunique", "merge_basic",
                      "groupby_named_agg"}),
    "q22": frozenset({"str_ops", "isin_semi_join", "scalar_reduce"}),
}
