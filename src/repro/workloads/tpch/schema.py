"""TPC-H schema constants (column names, enums, date ranges).

The real benchmark's schema, scaled down in row counts by
:mod:`repro.workloads.tpch.dbgen`; columns and value domains follow the
TPC-H specification closely enough for all 22 queries to be meaningful.
"""

from __future__ import annotations

#: rows per scale-factor unit (real TPC-H uses 1500/6000 thousands; the
#: reproduction keeps the same *ratios* at laptop scale).
ROWS_PER_SF = {
    "region": 5,
    "nation": 25,
    "supplier": 20,
    "customer": 150,
    "part": 40,
    "partsupp": 160,
    "orders": 300,
    "lineitem": 1200,
}

#: tables that do not grow with the scale factor.
FIXED_TABLES = ("region", "nation")

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                "MACHINERY"]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW"]

SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]

SHIP_INSTRUCTS = ["COLLECT COD", "DELIVER IN PERSON", "NONE",
                  "TAKE BACK RETURN"]

RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]

PART_TYPES = [
    f"{a} {b} {c}"
    for a in ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
    for b in ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
    for c in ("BRASS", "COPPER", "NICKEL", "STEEL", "TIN")
]

PART_CONTAINERS = [
    f"{a} {b}"
    for a in ("JUMBO", "LG", "MED", "SM", "WRAP")
    for b in ("BAG", "BOX", "CAN", "CASE", "DRUM", "JAR", "PACK", "PKG")
]

BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]

P_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "hazel", "indian", "ivory",
]

#: comment keywords some queries grep for.
COMMENT_KEYWORDS = ["special requests", "Customer Complaints",
                    "pending deposits", "unusual accounts"]

DATE_START = "1992-01-01"
DATE_END = "1998-08-02"
