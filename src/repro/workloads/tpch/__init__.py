"""TPC-H workload: synthetic dbgen + all 22 queries."""

from .dbgen import dataset_bytes, generate_tables, write_tables
from .queries import ALL_QUERIES, QUERY_FEATURES, as_scalar, materialize

__all__ = [
    "ALL_QUERIES",
    "QUERY_FEATURES",
    "as_scalar",
    "dataset_bytes",
    "generate_tables",
    "materialize",
    "write_tables",
]
