"""TPCx-AI use case 10 stand-in: fraud scoring over skewed transactions.

The paper's Fig. 8(a) headline: UC10 joins a 3.2 MB customer file with a
34 GB financial-transaction file on customer ID, and the key distribution
is heavily skewed. Static planners hash both sides by key, so the hot
customers land in one partition — one busy core (Dask/Modin 29×/37×
slower) or a dead worker. The generator reproduces that shape at laptop
scale: a tiny customer table, a large transaction table, and a ``skew``
fraction of transactions concentrated on ~1% of customers.
"""

from __future__ import annotations

import numpy as np

from ..engine.local import DataFrame as LocalFrame


def generate_uc10(n_customers: int = 200, n_transactions: int = 60_000,
                  skew: float = 0.7, seed: int = 0) -> dict[str, LocalFrame]:
    """Customer + transaction tables with a hot-key distribution."""
    rng = np.random.default_rng(seed)
    customers = LocalFrame({
        "customer_id": np.arange(1, n_customers + 1, dtype=np.int64),
        "credit_limit": np.round(rng.uniform(500, 50_000, n_customers), 2),
        "segment": np.array(
            [f"seg{v}" for v in rng.integers(0, 5, n_customers)], dtype=object
        ),
    })
    hot = max(n_customers // 300, 1)  # ~one dominant customer, as in UC10
    uniform_keys = rng.integers(1, n_customers + 1, n_transactions)
    hot_keys = rng.integers(1, hot + 1, n_transactions)
    keys = np.where(rng.random(n_transactions) < skew, hot_keys, uniform_keys)
    transactions = LocalFrame({
        "customer_id": keys,
        "amount": np.round(rng.lognormal(4.0, 1.2, n_transactions), 2),
        "merchant": rng.integers(0, 500, n_transactions),
        "hour": rng.integers(0, 24, n_transactions),
        "online": rng.random(n_transactions) < 0.4,
    })
    return {"customers": customers, "transactions": transactions}


def uc10_pipeline(t):
    """The UC10-like preprocessing/feature pipeline.

    Joins the imbalanced tables, engineers per-customer spend features and
    flags transactions far above the customer's typical amount.
    """
    tx = t["transactions"]
    tx = tx[tx["amount"] > 1.0]
    joined = tx.merge(t["customers"], on="customer_id")
    joined = joined.assign(
        over_limit=lambda d: (d["amount"] > d["credit_limit"]).astype(
            np.float64
        ),
    )
    joined = joined.assign(
        night=lambda d: (d["hour"] < 6).astype(np.float64),
    )
    features = joined.groupby("customer_id", as_index=False).agg({
        "amount": "sum",
        "over_limit": "sum",
        "night": "mean",
        "merchant": "nunique",
    })
    return features.sort_values("amount", ascending=False)


UC10_FEATURES = frozenset({"merge_basic", "groupby_nunique", "where_case"})
