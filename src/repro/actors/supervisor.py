"""Actor supervision: per-uid restart policy with storm limiting.

The :class:`Supervisor` owns a registry of respawn factories, one per
service uid. When an actor dies (scripted kill, destroyed pool entry, a
chaos experiment), the next delivery to its uid — or an explicit health
probe — restarts it through its factory and the actor resumes serving
from authoritative state:

* ``StorageActor`` factories close over the worker's durable
  ``WorkerStorage`` unit (captured at deploy time, before the router
  swaps handles), so stored bytes, tiers and pins survive the actor.
* Supervisor-pool service actors (meta, storage router, shuffle,
  scheduling, cache, lifecycle) close over their long-lived service
  objects; the actor shell is stateless.
* ``SubtaskRunnerActor`` factories build a fresh stateless runner; any
  compute lost with the old one re-runs through the executor's inline
  retry, and lost chunks replay through ``LifecycleService`` lineage
  (``RecoveryManager``).

Restart-storm limiting: each uid has a restart budget
(``Config.restart_limit``); once exhausted the supervisor raises
:class:`~repro.errors.RestartStorm` instead of looping on a crashing
actor.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ActorNotFound, RestartStorm

if TYPE_CHECKING:  # pragma: no cover
    from .actor import ActorRef
    from .pool import ActorSystem

#: a factory returns ``(actor_cls, args, kwargs)`` for ``create_actor``.
Factory = Callable[[], tuple[type, tuple, dict]]


class _Registration:
    __slots__ = ("address", "uid", "factory", "kind", "restarts")

    def __init__(self, address: str, uid: str, factory: Factory, kind: str):
        self.address = address
        self.uid = uid
        self.factory = factory
        self.kind = kind
        self.restarts = 0


class Supervisor:
    """Restart policy for supervised actors (thread-safe).

    Restarts may fire from the accounting thread *or* a band-runner
    thread (whichever delivers to the dead uid first), so the registry
    and restart bookkeeping live under a lock; the actual respawn runs
    under it too, making concurrent deliveries to one dead uid restart
    it exactly once.
    """

    def __init__(self, system: "ActorSystem", restart_limit: int = 5):
        self.system = system
        self.restart_limit = restart_limit
        self._lock = threading.RLock()
        self._registry: dict[str, _Registration] = {}
        self.total_restarts = 0
        self.total_kills = 0

    # -- registry -----------------------------------------------------------
    def register(self, address: str, uid: str, factory: Factory,
                 kind: str = "service") -> None:
        """Adopt ``uid``: on death, respawn at ``address`` via ``factory``."""
        with self._lock:
            self._registry[uid] = _Registration(address, uid, factory, kind)

    def unregister(self, uid: str) -> None:
        with self._lock:
            self._registry.pop(uid, None)

    def supervised(self) -> list[str]:
        with self._lock:
            return list(self._registry)

    def address_of(self, uid: str) -> str | None:
        with self._lock:
            reg = self._registry.get(uid)
            return None if reg is None else reg.address

    def restartable(self, uid: str) -> bool:
        with self._lock:
            reg = self._registry.get(uid)
            return reg is not None and reg.restarts < self.restart_limit

    def restarts_of(self, uid: str) -> int:
        with self._lock:
            reg = self._registry.get(uid)
            return 0 if reg is None else reg.restarts

    # -- death & rebirth ----------------------------------------------------
    def kill(self, uid: str) -> bool:
        """Remove ``uid`` abruptly (no ``on_stop``), simulating a crash.

        Returns whether the actor was alive. Restart happens lazily on
        the next delivery to the uid, or at the next health probe.
        """
        with self._lock:
            reg = self._registry.get(uid)
            if reg is None:
                raise ActorNotFound("<unsupervised>", uid,
                                    "kill of an unsupervised uid")
            try:
                pool = self.system.get_pool(reg.address)
                pool.remove(uid)
            except ActorNotFound:
                return False
            self.total_kills += 1
            return True

    def restart(self, uid: str) -> "ActorRef":
        """Respawn ``uid`` through its factory, enforcing the storm limit."""
        with self._lock:
            reg = self._registry.get(uid)
            if reg is None:
                raise ActorNotFound("<unsupervised>", uid,
                                    "restart of an unsupervised uid")
            if self.system.has_actor(reg.address, uid):
                return self.system.actor_ref(reg.address, uid)
            if reg.restarts >= self.restart_limit:
                raise RestartStorm(uid, reg.restarts, self.restart_limit)
            actor_cls, args, kwargs = reg.factory()
            ref = self.system.create_actor(
                reg.address, actor_cls, *args, uid=uid, **kwargs)
            reg.restarts += 1
            self.total_restarts += 1
            return ref

    def ensure_alive(self, uid: str) -> bool:
        """Restart ``uid`` if dead; returns whether a restart happened."""
        with self._lock:
            reg = self._registry.get(uid)
            if reg is None or self.system.has_actor(reg.address, uid):
                return False
            self.restart(uid)
            return True

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "supervised": len(self._registry),
                "total_restarts": self.total_restarts,
                "total_kills": self.total_kills,
                "restarts_by_uid": {
                    uid: reg.restarts
                    for uid, reg in self._registry.items() if reg.restarts
                },
            }
