"""``repro.actors`` — an in-process actor framework (Xoscar stand-in).

The engine's services (session, task, meta, storage, scheduling) are
implemented as actors created on node pools, matching the paper's service
decomposition (Fig. 1) without requiring real processes.
"""

from .actor import Actor, ActorRef
from .message import ChaosEvent, Message, MessageChaos, MessageLog
from .pool import ActorPool, ActorSystem
from .supervisor import Supervisor

__all__ = [
    "Actor",
    "ActorPool",
    "ActorRef",
    "ActorSystem",
    "ChaosEvent",
    "Message",
    "MessageChaos",
    "MessageLog",
    "Supervisor",
]
