"""Actor pools and the actor system.

An :class:`ActorSystem` hosts one :class:`ActorPool` per node address
(supervisor and each worker), mirroring the Xoscar deployment the paper
describes: services are actors created on specific nodes, and all
inter-service communication is message delivery between pools.
"""

from __future__ import annotations

import threading
from typing import Any, Type

from ..errors import ActorError, ActorNotFound
from .actor import Actor, ActorRef
from .message import Message, MessageChaos, MessageLog


class ActorPool:
    """All actors living on one node address."""

    def __init__(self, address: str):
        self.address = address
        self._actors: dict[str, Actor] = {}
        self.stopped = False

    def register(self, actor: Actor) -> None:
        if actor.uid in self._actors:
            raise ActorError(f"actor {actor.uid!r} already exists on {self.address!r}")
        self._actors[actor.uid] = actor

    def lookup(self, uid: str) -> Actor:
        try:
            return self._actors[uid]
        except KeyError:
            raise ActorNotFound(self.address, uid) from None

    def remove(self, uid: str) -> Actor:
        try:
            return self._actors.pop(uid)
        except KeyError:
            raise ActorNotFound(self.address, uid) from None

    def uids(self) -> list[str]:
        return list(self._actors)

    def __contains__(self, uid: str) -> bool:
        return uid in self._actors

    def __len__(self) -> int:
        return len(self._actors)


class ActorSystem:
    """Creates pools, actors, and routes messages between them."""

    def __init__(self):
        self._pools: dict[str, ActorPool] = {}
        self.log = MessageLog()
        #: optional Supervisor: deliveries to a dead-but-supervised uid
        #: restart the actor transparently instead of failing.
        self.supervisor = None
        #: optional MessageChaos: seeded drop/delay/duplicate faults on
        #: token-carrying (mutating) messages. ``None``/zero rates = off.
        self.chaos: MessageChaos | None = None
        #: per-thread delivery state: parallel band runners deliver
        #: concurrently with the accounting thread, so the "which actor
        #: is currently handling a message" marker must be thread-local —
        #: a single shared field corrupts sender attribution across
        #: threads (and un-attributes nested calls racing each other).
        self._tls = threading.local()

    # -- pool management ----------------------------------------------------
    def create_pool(self, address: str) -> ActorPool:
        if address in self._pools:
            raise ActorError(f"pool {address!r} already exists")
        pool = ActorPool(address)
        self._pools[address] = pool
        return pool

    def get_pool(self, address: str) -> ActorPool:
        try:
            return self._pools[address]
        except KeyError:
            raise ActorError(f"no pool at {address!r}") from None

    def stop_pool(self, address: str) -> None:
        pool = self.get_pool(address)
        for uid in pool.uids():
            self.destroy_actor(address, uid)
        pool.stopped = True
        del self._pools[address]

    def addresses(self) -> list[str]:
        return list(self._pools)

    # -- actor lifecycle ------------------------------------------------------
    def create_actor(self, address: str, actor_cls: Type[Actor], *args: Any,
                     uid: str, **kwargs: Any) -> ActorRef:
        pool = self.get_pool(address)
        actor = actor_cls(*args, **kwargs)
        actor.uid = uid
        actor.address = address
        actor._system = self
        pool.register(actor)
        actor.on_start()
        return ActorRef(self, address, uid)

    def destroy_actor(self, address: str, uid: str) -> None:
        pool = self.get_pool(address)
        actor = pool.lookup(uid)
        actor.on_stop()
        pool.remove(uid)

    def actor_ref(self, address: str, uid: str) -> ActorRef:
        pool = self.get_pool(address)
        if uid not in pool:
            raise ActorNotFound(address, uid)
        return ActorRef(self, address, uid)

    def has_actor(self, address: str, uid: str) -> bool:
        return address in self._pools and uid in self._pools[address]

    def kill_actor(self, address: str, uid: str) -> None:
        """Remove an actor abruptly — no ``on_stop`` — simulating a crash."""
        self.get_pool(address).remove(uid)

    # -- message delivery --------------------------------------------------------
    @property
    def _current_actor(self) -> Actor | None:
        return getattr(self._tls, "current_actor", None)

    @_current_actor.setter
    def _current_actor(self, actor: Actor | None) -> None:
        self._tls.current_actor = actor

    def set_thread_sender(self, label: str | None) -> None:
        """Name this thread's deliveries when no actor is handling one.

        Band-runner pool threads set e.g. ``"band-runner"`` so their
        compute-phase storage peeks are attributed in the trace instead
        of showing up as ``<external>``.
        """
        self._tls.sender_label = label

    def _resolve(self, address: str, uid: str) -> Actor:
        """Look up a delivery target, restarting supervised dead actors.

        A ``destroy_actor``/``stop_pool``/kill racing an in-flight
        ``deliver`` surfaces as the typed, retryable
        :class:`~repro.errors.ActorNotFound` — unless the uid is
        supervised, in which case the actor is respawned from
        authoritative state and delivery proceeds as if nothing
        happened.  A supervised uid with no restart budget left raises
        :class:`~repro.errors.RestartStorm` instead: a crash loop must
        crash loudly, not retry forever.
        """
        try:
            try:
                return self._pools[address].lookup(uid)
            except KeyError:
                raise ActorNotFound(address, uid, "pool is gone") from None
        except ActorNotFound:
            supervisor = self.supervisor
            if supervisor is None or supervisor.address_of(uid) is None:
                raise
            supervisor.restart(uid)  # RestartStorm past the limit
            return self.get_pool(address).lookup(uid)

    def deliver(self, address: str, uid: str, method: str,
                args: tuple, kwargs: dict) -> Any:
        actor = self._resolve(address, uid)
        handler = getattr(actor, method, None)
        if handler is None or not callable(handler):
            raise ActorError(f"actor {uid!r} has no method {method!r}")
        current = self._current_actor
        if current is not None:
            sender = current.uid
        else:
            sender = getattr(self._tls, "sender_label", None) or "<external>"
        self.log.record(Message(sender=sender, recipient=uid, method=method,
                                args=args, kwargs=kwargs))
        chaos = self.chaos
        duplicated = False
        if chaos is not None:
            token = kwargs.get("dedup_token")
            if token is not None and chaos.enabled:
                # drops are absorbed by the at-least-once layer: the
                # first transmission is consumed, the retransmission
                # below is the delivery that reaches the endpoint.
                # Delays keep synchronous RPC semantics (recorded only).
                _, _, duplicated = chaos.plan(method, token)
        self._current_actor = actor
        try:
            if duplicated:
                # stray redelivery: the endpoint's dedup log makes the
                # second application a no-op returning the memoized
                # result, which is also what the caller sees.
                self.log.record(Message(sender=sender, recipient=uid,
                                        method=method, args=args,
                                        kwargs=kwargs))
                handler(*args, **kwargs)
            return handler(*args, **kwargs)
        finally:
            self._current_actor = current

    def shutdown(self) -> None:
        for address in list(self._pools):
            self.stop_pool(address)
