"""Actor pools and the actor system.

An :class:`ActorSystem` hosts one :class:`ActorPool` per node address
(supervisor and each worker), mirroring the Xoscar deployment the paper
describes: services are actors created on specific nodes, and all
inter-service communication is message delivery between pools.
"""

from __future__ import annotations

import threading
from typing import Any, Type

from ..errors import ActorError
from .actor import Actor, ActorRef
from .message import Message, MessageLog


class ActorPool:
    """All actors living on one node address."""

    def __init__(self, address: str):
        self.address = address
        self._actors: dict[str, Actor] = {}
        self.stopped = False

    def register(self, actor: Actor) -> None:
        if actor.uid in self._actors:
            raise ActorError(f"actor {actor.uid!r} already exists on {self.address!r}")
        self._actors[actor.uid] = actor

    def lookup(self, uid: str) -> Actor:
        try:
            return self._actors[uid]
        except KeyError:
            raise ActorError(f"no actor {uid!r} on {self.address!r}") from None

    def remove(self, uid: str) -> Actor:
        try:
            return self._actors.pop(uid)
        except KeyError:
            raise ActorError(f"no actor {uid!r} on {self.address!r}") from None

    def uids(self) -> list[str]:
        return list(self._actors)

    def __contains__(self, uid: str) -> bool:
        return uid in self._actors

    def __len__(self) -> int:
        return len(self._actors)


class ActorSystem:
    """Creates pools, actors, and routes messages between them."""

    def __init__(self):
        self._pools: dict[str, ActorPool] = {}
        self.log = MessageLog()
        #: per-thread delivery state: parallel band runners deliver
        #: concurrently with the accounting thread, so the "which actor
        #: is currently handling a message" marker must be thread-local —
        #: a single shared field corrupts sender attribution across
        #: threads (and un-attributes nested calls racing each other).
        self._tls = threading.local()

    # -- pool management ----------------------------------------------------
    def create_pool(self, address: str) -> ActorPool:
        if address in self._pools:
            raise ActorError(f"pool {address!r} already exists")
        pool = ActorPool(address)
        self._pools[address] = pool
        return pool

    def get_pool(self, address: str) -> ActorPool:
        try:
            return self._pools[address]
        except KeyError:
            raise ActorError(f"no pool at {address!r}") from None

    def stop_pool(self, address: str) -> None:
        pool = self.get_pool(address)
        for uid in pool.uids():
            self.destroy_actor(address, uid)
        pool.stopped = True
        del self._pools[address]

    def addresses(self) -> list[str]:
        return list(self._pools)

    # -- actor lifecycle ------------------------------------------------------
    def create_actor(self, address: str, actor_cls: Type[Actor], *args: Any,
                     uid: str, **kwargs: Any) -> ActorRef:
        pool = self.get_pool(address)
        actor = actor_cls(*args, **kwargs)
        actor.uid = uid
        actor.address = address
        actor._system = self
        pool.register(actor)
        actor.on_start()
        return ActorRef(self, address, uid)

    def destroy_actor(self, address: str, uid: str) -> None:
        pool = self.get_pool(address)
        actor = pool.lookup(uid)
        actor.on_stop()
        pool.remove(uid)

    def actor_ref(self, address: str, uid: str) -> ActorRef:
        pool = self.get_pool(address)
        if uid not in pool:
            raise ActorError(f"no actor {uid!r} on {address!r}")
        return ActorRef(self, address, uid)

    def has_actor(self, address: str, uid: str) -> bool:
        return address in self._pools and uid in self._pools[address]

    # -- message delivery --------------------------------------------------------
    @property
    def _current_actor(self) -> Actor | None:
        return getattr(self._tls, "current_actor", None)

    @_current_actor.setter
    def _current_actor(self, actor: Actor | None) -> None:
        self._tls.current_actor = actor

    def set_thread_sender(self, label: str | None) -> None:
        """Name this thread's deliveries when no actor is handling one.

        Band-runner pool threads set e.g. ``"band-runner"`` so their
        compute-phase storage peeks are attributed in the trace instead
        of showing up as ``<external>``.
        """
        self._tls.sender_label = label

    def deliver(self, address: str, uid: str, method: str,
                args: tuple, kwargs: dict) -> Any:
        actor = self.get_pool(address).lookup(uid)
        handler = getattr(actor, method, None)
        if handler is None or not callable(handler):
            raise ActorError(f"actor {uid!r} has no method {method!r}")
        current = self._current_actor
        if current is not None:
            sender = current.uid
        else:
            sender = getattr(self._tls, "sender_label", None) or "<external>"
        self.log.record(Message(sender=sender, recipient=uid, method=method,
                                args=args, kwargs=kwargs))
        self._current_actor = actor
        try:
            return handler(*args, **kwargs)
        finally:
            self._current_actor = current

    def shutdown(self) -> None:
        for address in list(self._pools):
            self.stop_pool(address)
