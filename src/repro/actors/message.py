"""Actor messages and the delivery log.

Every cross-actor call is materialized as a :class:`Message` and recorded,
giving tests and the simulation a faithful trace of service interactions —
the same observability a real Xoscar deployment gets from its RPC layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Message:
    """One actor method invocation."""

    sender: str
    recipient: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seq: int = 0

    def describe(self) -> str:
        return f"#{self.seq} {self.sender} -> {self.recipient}.{self.method}"


class MessageLog:
    """Bounded in-memory trace of delivered messages."""

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._messages: list[Message] = []
        self._seq = 0
        self.total_delivered = 0

    def record(self, message: Message) -> None:
        self._seq += 1
        self.total_delivered += 1
        message.seq = self._seq
        self._messages.append(message)
        if len(self._messages) > self.capacity:
            del self._messages[: len(self._messages) - self.capacity]

    def recent(self, n: int = 50) -> list[Message]:
        return self._messages[-n:]

    def count_for(self, recipient: str) -> int:
        return sum(1 for m in self._messages if m.recipient == recipient)

    def clear(self) -> None:
        self._messages.clear()
