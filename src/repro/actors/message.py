"""Actor messages and the delivery log.

Every cross-actor call is materialized as a :class:`Message` and recorded,
giving tests and the simulation a faithful trace of service interactions —
the same observability a real Xoscar deployment gets from its RPC layer.

The log is shared mutable state touched from the accounting thread *and*
band-runner pool threads (compute-phase storage peeks route through the
actor plane), so every mutation happens under a lock.  Aggregate counters
(per-recipient, per-edge) are maintained alongside the bounded message
list: trimming old messages never loses counts, which is what
``diagnostics.service_report`` summarizes.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Message:
    """One actor method invocation."""

    sender: str
    recipient: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seq: int = 0

    def describe(self) -> str:
        return f"#{self.seq} {self.sender} -> {self.recipient}.{self.method}"


class MessageLog:
    """Bounded in-memory trace of delivered messages (thread-safe)."""

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._messages: list[Message] = []
        self._seq = 0
        self.total_delivered = 0
        #: (sender, recipient) -> deliveries, never trimmed.
        self._edge_counts: Counter[tuple[str, str]] = Counter()
        #: recipient uid -> deliveries, never trimmed.
        self._recipient_counts: Counter[str] = Counter()
        #: (sender, recipient, method) -> deliveries, never trimmed.
        self._method_counts: Counter[tuple[str, str, str]] = Counter()

    def record(self, message: Message) -> None:
        with self._lock:
            self._seq += 1
            self.total_delivered += 1
            message.seq = self._seq
            self._messages.append(message)
            self._edge_counts[(message.sender, message.recipient)] += 1
            self._recipient_counts[message.recipient] += 1
            self._method_counts[
                (message.sender, message.recipient, message.method)
            ] += 1
            if len(self._messages) > self.capacity:
                del self._messages[: len(self._messages) - self.capacity]

    def recent(self, n: int = 50) -> list[Message]:
        with self._lock:
            return self._messages[-n:]

    def count_for(self, recipient: str) -> int:
        """Total deliveries to ``recipient`` (not limited to the window)."""
        with self._lock:
            return self._recipient_counts.get(recipient, 0)

    def recipient_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._recipient_counts)

    def edge_counts(self) -> dict[tuple[str, str], int]:
        with self._lock:
            return dict(self._edge_counts)

    def method_counts(self) -> dict[tuple[str, str, str], int]:
        with self._lock:
            return dict(self._method_counts)

    def edges(self) -> set[tuple[str, str]]:
        """Every (sender, recipient) pair ever delivered."""
        with self._lock:
            return set(self._edge_counts)

    def top_edges(self, n: int = 10) -> list[tuple[tuple[str, str], int]]:
        """The chattiest sender -> recipient pairs, busiest first."""
        with self._lock:
            return sorted(
                self._edge_counts.items(),
                key=lambda item: (-item[1], item[0]),
            )[:n]

    def clear(self) -> None:
        with self._lock:
            self._messages.clear()
            self._edge_counts.clear()
            self._recipient_counts.clear()
            self._method_counts.clear()
            self.total_delivered = 0

    def snapshot(self) -> dict[str, Any]:
        """Aggregates in one consistent view (diagnostics)."""
        with self._lock:
            return {
                "total_delivered": self.total_delivered,
                "recipients": dict(self._recipient_counts),
                "edges": dict(self._edge_counts),
            }


@dataclass
class ChaosEvent:
    """One message-level fault that fired (drop, delay, or duplicate)."""

    kind: str
    method: str
    token: Any

    def describe(self) -> str:
        return f"{self.kind} {self.method} token={self.token!r}"


class MessageChaos:
    """Seeded drop/delay/duplicate decisions for token-carrying messages.

    Decisions hash ``(seed, kind, method, seq)`` through
    ``structural_draw``, where ``seq`` is the dedup token's per-session
    message sequence number, minted on the deterministic accounting
    walk — so for one seed the same messages fault in serial, thread
    and process execution mode regardless of delivery interleaving.
    The token's *session* component is deliberately excluded from the
    draw: session ids come from a process-global counter, and the same
    workload must draw the same faults no matter how many sessions ran
    before it in the process (or in a mode-comparison harness).

    The chaos layer models an at-least-once transport over idempotent
    endpoints: a *drop* consumes the first transmission and is followed by
    an immediate retransmission; a *delay* holds the message briefly (the
    RPC stays synchronous, virtual time is not charged — latency variance
    is a wall-clock phenomenon here); a *duplicate* delivers the message
    twice and relies on the endpoint's dedup log to suppress the second
    application. Net effect: every mutation applies exactly once, in
    accounting-walk order, so reports stay bit-identical under chaos.
    """

    def __init__(self, spec, capacity: int = 4096):
        self.spec = spec
        self._lock = threading.Lock()
        self._events: list[ChaosEvent] = []
        self.capacity = capacity
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    @property
    def enabled(self) -> bool:
        return self.spec is not None and self.spec.any_rate

    def _draw(self, kind: str, method: str, token: Any) -> float:
        from ..graph.identity import structural_draw

        # (session, seq) token -> draw on seq only (mode/history-invariant).
        if isinstance(token, tuple) and len(token) > 1:
            parts = token[1:]
        elif isinstance(token, tuple):
            parts = token
        else:
            parts = (token,)
        return structural_draw(self.spec.seed, kind, method, *parts)

    def plan(self, method: str, token: Any) -> tuple[bool, bool, bool]:
        """``(dropped, delayed, duplicated)`` for one message delivery."""
        spec = self.spec
        dropped = (spec.drop_rate > 0.0
                   and self._draw("drop", method, token) < spec.drop_rate)
        delayed = (spec.delay_rate > 0.0
                   and self._draw("delay", method, token) < spec.delay_rate)
        duplicated = (spec.duplicate_rate > 0.0
                      and self._draw("dup", method, token)
                      < spec.duplicate_rate)
        if dropped or delayed or duplicated:
            with self._lock:
                if dropped:
                    self.dropped += 1
                    self._record(ChaosEvent("drop", method, token))
                if delayed:
                    self.delayed += 1
                    self._record(ChaosEvent("delay", method, token))
                if duplicated:
                    self.duplicated += 1
                    self._record(ChaosEvent("duplicate", method, token))
        return dropped, delayed, duplicated

    def _record(self, event: ChaosEvent) -> None:
        self._events.append(event)
        if len(self._events) > self.capacity:
            del self._events[: len(self._events) - self.capacity]

    @property
    def total_fired(self) -> int:
        return self.dropped + self.delayed + self.duplicated

    def events(self) -> list[ChaosEvent]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "dropped": self.dropped,
                "delayed": self.delayed,
                "duplicated": self.duplicated,
            }
