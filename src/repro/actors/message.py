"""Actor messages and the delivery log.

Every cross-actor call is materialized as a :class:`Message` and recorded,
giving tests and the simulation a faithful trace of service interactions —
the same observability a real Xoscar deployment gets from its RPC layer.

The log is shared mutable state touched from the accounting thread *and*
band-runner pool threads (compute-phase storage peeks route through the
actor plane), so every mutation happens under a lock.  Aggregate counters
(per-recipient, per-edge) are maintained alongside the bounded message
list: trimming old messages never loses counts, which is what
``diagnostics.service_report`` summarizes.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Message:
    """One actor method invocation."""

    sender: str
    recipient: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seq: int = 0

    def describe(self) -> str:
        return f"#{self.seq} {self.sender} -> {self.recipient}.{self.method}"


class MessageLog:
    """Bounded in-memory trace of delivered messages (thread-safe)."""

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._messages: list[Message] = []
        self._seq = 0
        self.total_delivered = 0
        #: (sender, recipient) -> deliveries, never trimmed.
        self._edge_counts: Counter[tuple[str, str]] = Counter()
        #: recipient uid -> deliveries, never trimmed.
        self._recipient_counts: Counter[str] = Counter()
        #: (sender, recipient, method) -> deliveries, never trimmed.
        self._method_counts: Counter[tuple[str, str, str]] = Counter()

    def record(self, message: Message) -> None:
        with self._lock:
            self._seq += 1
            self.total_delivered += 1
            message.seq = self._seq
            self._messages.append(message)
            self._edge_counts[(message.sender, message.recipient)] += 1
            self._recipient_counts[message.recipient] += 1
            self._method_counts[
                (message.sender, message.recipient, message.method)
            ] += 1
            if len(self._messages) > self.capacity:
                del self._messages[: len(self._messages) - self.capacity]

    def recent(self, n: int = 50) -> list[Message]:
        with self._lock:
            return self._messages[-n:]

    def count_for(self, recipient: str) -> int:
        """Total deliveries to ``recipient`` (not limited to the window)."""
        with self._lock:
            return self._recipient_counts.get(recipient, 0)

    def recipient_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._recipient_counts)

    def edge_counts(self) -> dict[tuple[str, str], int]:
        with self._lock:
            return dict(self._edge_counts)

    def method_counts(self) -> dict[tuple[str, str, str], int]:
        with self._lock:
            return dict(self._method_counts)

    def edges(self) -> set[tuple[str, str]]:
        """Every (sender, recipient) pair ever delivered."""
        with self._lock:
            return set(self._edge_counts)

    def top_edges(self, n: int = 10) -> list[tuple[tuple[str, str], int]]:
        """The chattiest sender -> recipient pairs, busiest first."""
        with self._lock:
            return sorted(
                self._edge_counts.items(),
                key=lambda item: (-item[1], item[0]),
            )[:n]

    def clear(self) -> None:
        with self._lock:
            self._messages.clear()
            self._edge_counts.clear()
            self._recipient_counts.clear()
            self._method_counts.clear()
            self.total_delivered = 0

    def snapshot(self) -> dict[str, Any]:
        """Aggregates in one consistent view (diagnostics)."""
        with self._lock:
            return {
                "total_delivered": self.total_delivered,
                "recipients": dict(self._recipient_counts),
                "edges": dict(self._edge_counts),
            }
