"""Actor base class and actor references."""

from __future__ import annotations

from typing import Any

from ..errors import ActorError


class Actor:
    """Base class for service actors.

    Subclasses implement plain methods; other actors invoke them through an
    :class:`ActorRef` obtained from the :class:`~repro.actors.pool.ActorSystem`.
    Lifecycle hooks ``on_start``/``on_stop`` run on creation/destruction.
    """

    def __init__(self):
        self.uid: str = ""
        self.address: str = ""
        self._system = None

    def on_start(self) -> None:
        """Called after the actor is registered in its pool."""

    def on_stop(self) -> None:
        """Called before the actor is removed from its pool."""

    def ref(self) -> "ActorRef":
        """A reference to this actor, usable from any other actor."""
        if self._system is None:
            raise ActorError(f"actor {self.uid!r} is not attached to a system")
        return self._system.actor_ref(self.address, self.uid)


class ActorRef:
    """Proxy for a (possibly remote) actor.

    Method access returns a callable that routes through the actor system,
    so every invocation is logged and validated against liveness.
    """

    __slots__ = ("_system", "address", "uid")

    def __init__(self, system, address: str, uid: str):
        self._system = system
        self.address = address
        self.uid = uid

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def invoke(*args: Any, **kwargs: Any):
            return self._system.deliver(self.address, self.uid, method, args, kwargs)

        invoke.__name__ = method
        return invoke

    def __repr__(self) -> str:
        return f"ActorRef({self.address}/{self.uid})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ActorRef)
            and other.address == self.address
            and other.uid == self.uid
        )

    def __hash__(self) -> int:
        return hash((self.address, self.uid))
