"""Baseline-engine framework: workloads, results, failure classification.

The evaluation compares *design decisions*, not reimplementations of
Spark/Dask/Modin: every simulated engine runs on the same substrate with
the configuration profile the paper attributes to it (static vs dynamic
tiling, spill policy, reduce strategy, scheduler overhead, API surface).
Failures are classified exactly like Table II: API compatibility, hang,
or OOM/killed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..config import Config, default_config
from ..core.session import Session
from ..dataframe import from_frame
from ..errors import ApiCompatibilityError, ExecutionHang, WorkerOutOfMemory
from ..engine.local import DataFrame as LocalFrame
from ..workloads.tpch.queries import materialize

#: Table II failure taxonomy.
STATUS_OK = "ok"
STATUS_API = "api"
STATUS_HANG = "hang"
STATUS_OOM = "oom"


@dataclass
class Workload:
    """One benchmark unit: a function over a dict of dataframe handles."""

    name: str
    fn: Callable
    features: frozenset = frozenset()


@dataclass
class EngineResult:
    """Outcome of one engine × workload run."""

    engine: str
    workload: str
    status: str
    makespan: float = 0.0
    error: str = ""
    value: object = None
    peak_memory: int = 0

    @property
    def failed(self) -> bool:
        return self.status != STATUS_OK


@dataclass
class EngineProfile:
    """Configuration profile of a simulated engine."""

    name: str
    display_name: str
    unsupported: frozenset = frozenset()
    #: Config feature switches applied on top of defaults.
    overrides: dict = field(default_factory=dict)
    #: single-node engines collapse the cluster to 1 worker / 1 thread.
    single_node: bool = False
    #: don't split data at all (the pandas profile).
    single_chunk: bool = False
    #: per-subtask scheduler overhead multiplier (central schedulers pay
    #: more per task than peer-to-peer execution).
    overhead_factor: float = 1.0
    #: network bandwidth divisor (serialization boundaries, e.g. JVM↔Python).
    network_penalty: float = 1.0
    #: wall-time multiplier for constant per-engine costs.
    time_factor: float = 1.0
    #: fraction of a worker's memory actually usable for data (Ray's
    #: object store is ~30-40% of RAM; JVM engines lose heap overhead).
    memory_fraction: float = 1.0
    #: classify near-limit memory pressure as a hang (Dask workers pause
    #: at high memory fractions and can wedge instead of dying).
    hang_memory_fraction: Optional[float] = None
    #: classify heavy spill thrash as a hang: total spilled bytes beyond
    #: this multiple of the worker memory limit means the workers spend
    #: their time paging, not progressing.
    hang_spill_factor: Optional[float] = None

    def supports(self, features: frozenset) -> bool:
        return not (features & self.unsupported)

    def build_config(self, n_workers: int, memory_limit: int,
                     chunk_store_limit: int,
                     data_bytes: int | None = None) -> Config:
        cfg = default_config()
        cfg.cluster.n_workers = 1 if self.single_node else n_workers
        cfg.cluster.bands_per_worker = 1 if self.single_node else \
            cfg.cluster.bands_per_worker
        cfg.cluster.threads_per_band = 1 if self.single_node else \
            cfg.cluster.threads_per_band
        cfg.cluster.memory_limit = max(
            int(memory_limit * self.memory_fraction), 1
        )
        cfg.chunk_store_limit = (
            10 ** 15 if self.single_chunk else chunk_store_limit
        )
        cfg.tree_reduce_threshold = max(chunk_store_limit // 2, 1)
        for key, value in self.overrides.items():
            setattr(cfg, key, value)
        if data_bytes is not None:
            from ..config import calibrate_cost_model

            calibrate_cost_model(cfg, data_bytes)
        cfg.cost_model.subtask_overhead *= self.overhead_factor
        cfg.cost_model.dispatch_overhead *= self.overhead_factor
        cfg.cost_model.network_bandwidth /= self.network_penalty
        return cfg


class BaselineEngine:
    """Runs workloads under one engine profile and classifies failures."""

    def __init__(self, profile: EngineProfile):
        self.profile = profile

    @property
    def name(self) -> str:
        return self.profile.name

    def run(self, workload: Workload, tables: Mapping[str, LocalFrame],
            n_workers: int = 4, memory_limit: int = 256 * 1024 * 1024,
            chunk_store_limit: int = 4 * 1024 * 1024) -> EngineResult:
        """Execute one workload; never raises — failures become results."""
        if not self.profile.supports(workload.features):
            missing = sorted(workload.features & self.profile.unsupported)
            return EngineResult(
                engine=self.name, workload=workload.name, status=STATUS_API,
                error=f"unsupported APIs: {', '.join(missing)}",
            )
        data_bytes = sum(frame.nbytes for frame in tables.values())
        cfg = self.profile.build_config(n_workers, memory_limit,
                                        chunk_store_limit,
                                        data_bytes=max(data_bytes, 1))
        session = Session(cfg)
        try:
            handles = {
                name: from_frame(frame, session)
                for name, frame in tables.items()
            }
            value = materialize(workload.fn(handles))
            makespan = session.cluster.clock.makespan * self.profile.time_factor
            peak = max(session.cluster.peak_memory().values(), default=0)
            limit = cfg.cluster.memory_limit
            if (self.profile.hang_memory_fraction is not None
                    and peak >= self.profile.hang_memory_fraction * limit):
                return EngineResult(
                    engine=self.name, workload=workload.name,
                    status=STATUS_HANG, makespan=makespan,
                    peak_memory=peak,
                    error="workers paused at memory limit",
                )
            if (self.profile.hang_spill_factor is not None
                    and session.storage.spilled_bytes()
                    > self.profile.hang_spill_factor * limit):
                return EngineResult(
                    engine=self.name, workload=workload.name,
                    status=STATUS_HANG, makespan=makespan,
                    peak_memory=peak,
                    error="spill thrash: workers paging instead of progressing",
                )
            return EngineResult(
                engine=self.name, workload=workload.name, status=STATUS_OK,
                makespan=makespan, value=value, peak_memory=peak,
            )
        except WorkerOutOfMemory as exc:
            return EngineResult(engine=self.name, workload=workload.name,
                                status=STATUS_OOM, error=str(exc))
        except ExecutionHang as exc:
            return EngineResult(engine=self.name, workload=workload.name,
                                status=STATUS_HANG, error=str(exc))
        except ApiCompatibilityError as exc:
            return EngineResult(engine=self.name, workload=workload.name,
                                status=STATUS_API, error=str(exc))
        finally:
            session.close()
