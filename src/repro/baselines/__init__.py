"""``repro.baselines`` — simulated comparator engines and the API matrix."""

from .api_matrix import (
    COVERAGE_CASES,
    ENGINE_UNSUPPORTED,
    coverage_rate,
    coverage_table,
    make_fixture,
    supported_cases,
)
from .base import (
    STATUS_API,
    STATUS_HANG,
    STATUS_OK,
    STATUS_OOM,
    BaselineEngine,
    EngineProfile,
    EngineResult,
    Workload,
)
from .engines import (
    DATAFRAME_ENGINES,
    DISTRIBUTED_ENGINES,
    PROFILES,
    all_engines,
    make_engine,
)

__all__ = [
    "BaselineEngine",
    "COVERAGE_CASES",
    "DATAFRAME_ENGINES",
    "DISTRIBUTED_ENGINES",
    "ENGINE_UNSUPPORTED",
    "EngineProfile",
    "EngineResult",
    "PROFILES",
    "STATUS_API",
    "STATUS_HANG",
    "STATUS_OK",
    "STATUS_OOM",
    "Workload",
    "all_engines",
    "coverage_rate",
    "coverage_table",
    "make_engine",
    "make_fixture",
    "supported_cases",
]
