"""The five engine profiles of the evaluation.

Each profile encodes the design decisions the paper attributes to the
corresponding system; see DESIGN.md for the calibration rationale.

- **xorbits** — the full engine: dynamic tiling, coloring fusion,
  operator fusion, auto merge, combine stage, spill, locality.
- **pandas** — single node, single thread, no partitioning, no spill:
  correct until the working set exceeds one machine's memory.
- **pyspark** (pandas API on Spark) — static planning but a robust
  shuffle engine with whole-stage fusion; pays a serialization penalty on
  every transfer (JVM↔Python rows) and rejects several pandas APIs.
- **dask** — static tiling from source sizes, tree-reduce by default,
  spills, central Python scheduler (higher per-task overhead); workers
  *pause* near the memory limit, which manifests as a hang.
- **modin** (on Ray) — static tiling, eager per-op execution (no graph
  or operator fusion), no combine stage, and no spill: the first
  oversized partition kills a worker.
"""

from __future__ import annotations

from .base import BaselineEngine, EngineProfile

XORBITS = EngineProfile(
    name="xorbits",
    display_name="Xorbits (this work)",
    unsupported=frozenset({"groupby_udf"}),
)

PANDAS = EngineProfile(
    name="pandas",
    display_name="pandas (single node)",
    unsupported=frozenset(),
    single_node=True,
    single_chunk=True,
    overrides={"spill_to_disk": False, "dynamic_tiling": False,
               "graph_fusion": True},
)

PYSPARK = EngineProfile(
    name="pyspark",
    display_name="pandas API on Spark",
    unsupported=frozenset({
        "groupby_named_agg", "groupby_udf", "iloc", "merge_key_sort",
        "value_counts", "groupby_of_groupby_udf", "mixed_index",
    }),
    overrides={"dynamic_tiling": False, "auto_merge": False},
    overhead_factor=2.0,
    network_penalty=2.0,   # Python<->JVM row serialization
    time_factor=1.1,       # job/stage startup
    memory_fraction=0.75,  # JVM heap + execution-memory overheads
)

DASK = EngineProfile(
    name="dask",
    display_name="Dask DataFrame",
    unsupported=frozenset({
        "iloc", "merge_key_sort", "groupby_median", "groupby_udf",
        "pivot_table", "apply_axis1", "mixed_index", "sort_within_groups",
    }),
    overrides={"dynamic_tiling": False, "operator_fusion": False,
               "auto_merge": False, "column_pruning": False},
    overhead_factor=5.0,   # central Python scheduler, ~1 ms/task
    hang_memory_fraction=0.97,
    hang_spill_factor=3.0,
)

MODIN = EngineProfile(
    name="modin",
    display_name="Modin on Ray",
    unsupported=frozenset({"array_interop"}),
    # graph_fusion stays on: Modin's query compiler lazily fuses map
    # operations per partition, so elementwise chains do not materialize;
    # shuffle/merge/groupby results do, and stay pinned (eager_release off).
    overrides={"dynamic_tiling": False,
               "operator_fusion": False, "auto_merge": False,
               "combine_stage": False, "spill_to_disk": False,
               "eager_release": False},
    overhead_factor=3.0,
    memory_fraction=0.55,  # Ray object store share of worker RAM
)

PROFILES = {p.name: p for p in (XORBITS, PANDAS, PYSPARK, DASK, MODIN)}

#: the dataframe comparison set of Section VI-B.
DATAFRAME_ENGINES = ("xorbits", "pandas", "pyspark", "dask", "modin")

#: the distributed-only set used for the large-scale tables.
DISTRIBUTED_ENGINES = ("xorbits", "pyspark", "dask", "modin")


def make_engine(name: str) -> BaselineEngine:
    """Engine instance by profile name."""
    return BaselineEngine(PROFILES[name])


def all_engines(names=DATAFRAME_ENGINES) -> list[BaselineEngine]:
    return [make_engine(name) for name in names]
