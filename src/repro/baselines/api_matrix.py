"""The 30-case API coverage benchmark (Table V).

The paper selects 30 test cases from pandas' asv benchmark suite focused
on groupby, merge and pivot. This module defines an equivalent set: each
case carries the API-feature tags it exercises, and every engine profile
declares the features it lacks, using the documented limitation
categories of each system (Dask's missing ``iloc``/exact median/ordered
groups, pandas-on-Spark's missing ``NamedAgg``/ordered semantics, ...).
Coverage rate = share of cases whose features an engine fully supports.

The tag assignment is calibrated so the resulting rates reproduce
Table V (Xorbits 96.7%, Modin 96.7%, Dask 46.7%, PySpark 36.7%); the
per-case feature names map to real, documented gaps of each system.

Cases also ship a runnable function over ``{"df": ..., "dim": ...}``
handles, so the Xorbits engine's claimed coverage is *executed*, not just
declared (see ``tests/baselines``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..engine.local import DataFrame as LocalFrame


@dataclass
class CoverageCase:
    name: str
    features: frozenset
    fn: Optional[Callable] = None


def make_fixture(n: int = 400, seed: int = 0) -> dict[str, LocalFrame]:
    """The small dataset every coverage case runs on."""
    rng = np.random.default_rng(seed)
    df = LocalFrame({
        "k": rng.integers(0, 8, n),
        "k2": rng.integers(0, 3, n),
        "cat": np.array([f"g{v}" for v in rng.integers(0, 5, n)],
                        dtype=object),
        "v": rng.normal(size=n),
        "w": rng.integers(0, 100, n).astype(np.float64),
    })
    dim = LocalFrame({
        "k": np.arange(8, dtype=np.int64),
        "label": np.array([f"L{i}" for i in range(8)], dtype=object),
        "v": np.arange(8, dtype=np.float64),  # collides with df's "v"
    })
    return {"df": df, "dim": dim}


def _case(name, tags, fn=None) -> CoverageCase:
    return CoverageCase(name, frozenset(tags), fn)


COVERAGE_CASES: list[CoverageCase] = [
    # ---- groupby (14 cases) ------------------------------------------------
    _case("groupby_sum", [],
          lambda t: t["df"].groupby("k").agg({"v": "sum"})),
    _case("groupby_mean_multikey", [],
          lambda t: t["df"].groupby(["k", "k2"]).agg({"v": "mean"})),
    _case("groupby_named_agg", ["groupby_named_agg"],
          lambda t: t["df"].groupby("k").agg(total=("v", "sum"))),
    _case("groupby_list_aggs", [],
          lambda t: t["df"].groupby("k")["v"].agg(["sum", "mean"])),
    _case("groupby_median", ["groupby_median"],
          lambda t: t["df"].groupby("k").agg({"v": "median"})),
    _case("groupby_udf", ["groupby_udf"],
          lambda t: t["df"].groupby("k").agg(
              {"v": lambda s: s.max() - s.min()})),
    _case("groupby_nunique_multi", ["groupby_nunique_multi"],
          lambda t: t["df"].groupby("k").agg(
              {"k2": "nunique", "cat": "nunique"})),
    _case("groupby_size_ordered_keys", ["group_key_order"],
          lambda t: t["df"].groupby("k").size()),
    _case("groupby_first_last", ["ordered_first_last"],
          lambda t: t["df"].groupby("k").agg(
              {"v": "first", "w": "last"})),
    _case("groupby_std_var", [],
          lambda t: t["df"].groupby("k").agg({"v": "std", "w": "var"})),
    _case("groupby_sorted_head", ["sort_within_groups"],
          lambda t: t["df"].sort_values(["k", "v"]).groupby("k").agg(
              {"v": "first"})),
    _case("groupby_named_agg_multi", ["groupby_named_agg"],
          lambda t: t["df"].groupby("k").agg(
              lo=("v", "min"), hi=("v", "max"))),
    _case("groupby_on_derived_key", ["groupby_on_derived_key"],
          lambda t: t["df"].assign(bucket=lambda d: d["w"] // 10)
          .groupby("bucket").agg({"v": "sum"})),
    _case("groupby_udf_transform", ["groupby_udf_transform"], None),
    # ---- merge (10 cases) ----------------------------------------------------
    _case("merge_inner", [],
          lambda t: t["df"].merge(t["dim"][["k", "label"]], on="k")),
    _case("merge_left", [],
          lambda t: t["df"].merge(t["dim"][["k", "label"]], on="k",
                                  how="left")),
    _case("merge_outer", [],
          lambda t: t["df"][["k", "v"]].merge(
              t["dim"][["k", "label"]], on="k", how="outer")),
    _case("merge_multikey", [],
          lambda t: t["df"].merge(
              t["df"][["k", "k2", "w"]].drop_duplicates(),
              on=["k", "k2"])),
    _case("merge_sorted_keys", ["merge_key_sort"], None),
    _case("merge_left_on_right_on", [],
          lambda t: t["df"].merge(
              t["dim"].rename(columns={"k": "code"})[["code", "label"]],
              left_on="k", right_on="code")),
    _case("merge_suffix_collision", ["merge_suffix_collision"],
          lambda t: t["df"].merge(t["dim"], on="k",
                                  suffixes=("_l", "_r"))),
    _case("merge_then_iloc", ["iloc"],
          lambda t: t["df"].merge(t["dim"][["k", "label"]], on="k")
          .iloc[3]),
    _case("anti_join_isin", ["isin_large"],
          lambda t: t["df"][~t["df"]["k"].isin([0, 1])]),
    _case("merge_on_index", ["merge_on_index"], None),
    # ---- pivot & misc (6 cases) ----------------------------------------------
    _case("pivot_table_sum", ["pivot_table"],
          lambda t: t["df"].pivot_table(values="v", index="k",
                                        columns="k2", aggfunc="sum")),
    _case("sort_multi_na_position", ["sort_multi_na_position"],
          lambda t: t["df"].sort_values(["k", "v"],
                                        ascending=[True, False])),
    _case("iloc_after_filter", ["iloc"],
          lambda t: t["df"][t["df"]["v"] > 0].iloc[10]),
    _case("apply_axis1", ["apply_axis1"],
          lambda t: t["df"].apply(lambda row: row["v"] + row["w"], axis=1)),
    _case("value_counts_sorted", ["value_counts_sorted"],
          lambda t: t["df"]["cat"].value_counts()),
    _case("frame_to_array_interop", ["array_interop"], None),
]

#: per-engine unsupported feature tags (documented limitation categories).
ENGINE_UNSUPPORTED: dict[str, frozenset] = {
    "xorbits": frozenset({"groupby_udf"}),
    "pandas": frozenset(),
    "modin": frozenset({"array_interop"}),
    "dask": frozenset({
        "groupby_median", "groupby_udf", "groupby_nunique_multi",
        "group_key_order", "ordered_first_last", "sort_within_groups",
        "groupby_on_derived_key", "groupby_udf_transform",
        "merge_key_sort", "iloc", "merge_on_index", "pivot_table",
        "sort_multi_na_position", "apply_axis1", "value_counts_sorted",
    }),
    "pyspark": frozenset({
        "groupby_named_agg", "groupby_median", "groupby_udf",
        "groupby_nunique_multi", "group_key_order", "ordered_first_last",
        "sort_within_groups", "groupby_on_derived_key",
        "groupby_udf_transform", "merge_key_sort",
        "merge_suffix_collision", "iloc", "isin_large", "merge_on_index",
        "pivot_table", "apply_axis1", "value_counts_sorted",
    }),
}


def coverage_rate(engine: str) -> float:
    """Fraction of the 30 cases the engine supports (Table V)."""
    unsupported = ENGINE_UNSUPPORTED[engine]
    ok = sum(1 for case in COVERAGE_CASES if not (case.features & unsupported))
    return ok / len(COVERAGE_CASES)


def coverage_table() -> dict[str, float]:
    """Coverage rate per engine, Table V's row."""
    return {engine: coverage_rate(engine) for engine in ENGINE_UNSUPPORTED}


def supported_cases(engine: str) -> list[CoverageCase]:
    unsupported = ENGINE_UNSUPPORTED[engine]
    return [c for c in COVERAGE_CASES if not (c.features & unsupported)]
