"""``repro.pandas`` — the drop-in pandas-like namespace (Listing 2).

Swap ``import pandas as pd`` for ``import repro.pandas as pd`` and the
same program runs distributed on the simulated cluster.
"""

from .dataframe import (
    DataFrame,
    Series,
    concat,
    from_dict,
    from_frame,
    read_csv,
    read_parquet,
)

__all__ = [
    "DataFrame",
    "Series",
    "concat",
    "from_dict",
    "from_frame",
    "read_csv",
    "read_parquet",
]
