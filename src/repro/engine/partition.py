"""Shared shuffle partition kernels: assign rows to partitions, split frames.

Every shuffle-map operator (merge, groupby shuffle-reduce, distributed
sort) does the same two things to a chunk: compute a per-row partition id
from the key column, then split the chunk into one frame per partition.
This module owns both, in two interchangeable implementations:

- the **vectorized** kernels (default): one pass over the key column
  (``hash_array`` / ``np.searchsorted``) and one stable ``argsort``/gather
  sweep that materializes all N output frames in two passes total;
- the **scalar** reference kernels: the original per-row Python loops and
  N boolean-mask scans, kept both as the parity oracle for tests and as
  the ``Config.vectorized_shuffle = False`` escape hatch.

Both produce bit-identical partitions: same rows, same within-partition
order (stable sort == boolean mask order), same index labels.

These kernels operate on *logical* (row-engine) frames; engine backends
layer their own physical fast paths on top (see
:meth:`repro.engine.columnar.ColumnarEngine.split`) but must match these
draws exactly — partition assignment is part of the deterministic
accounting walk, so it is backend-invariant by contract.

NA routing convention (inherited from the original binary search, where
``None <= boundary`` was simply never true): missing keys — ``None`` and
``NaN`` — fall into the **last** range partition and hash to partition
``0 % n_parts`` in hash mode.
"""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from ..frame import dtypes
from ..frame.hashing import hash_array, stable_hash


def assign_hash_partitions(keys: np.ndarray, n_parts: int,
                           vectorized: bool = True) -> np.ndarray:
    """Per-row partition ids via the deterministic content hash."""
    if not vectorized:
        return np.array(
            [stable_hash(v) % n_parts for v in keys.tolist()],
            dtype=np.int64,
        )
    return hash_array(keys) % n_parts


def assign_range_partitions(keys: np.ndarray, boundaries: list,
                            vectorized: bool = True) -> np.ndarray:
    """Per-row partition ids via search over the sampled boundaries.

    Partition ``r`` receives keys with ``boundaries[r-1] < key <=
    boundaries[r]``; missing keys land in the last partition.
    """
    if not boundaries:
        return np.zeros(len(keys), dtype=np.int64)
    if not vectorized:
        return _assign_range_scalar(keys, boundaries)
    keys = np.asarray(keys)
    if keys.dtype.kind in ("O", "U", "S"):
        bounds = dtypes.object_array(boundaries)
        keys = dtypes.as_array(keys)
        out = np.full(len(keys), len(boundaries), dtype=np.int64)
        present = ~dtypes.isna_array(keys)
        out[present] = np.searchsorted(bounds, keys[present], side="left")
        return out
    bounds = np.asarray(boundaries)
    # NaN sorts after every number in NumPy's order, so float NA keys
    # fall out of searchsorted already assigned to the last partition.
    return np.searchsorted(bounds, keys, side="left").astype(np.int64)


def _assign_range_scalar(keys: np.ndarray, boundaries: list) -> np.ndarray:
    """Reference per-row binary search (the original implementation)."""
    out = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys.tolist()):
        lo, hi = 0, len(boundaries)
        while lo < hi:
            mid = (lo + hi) // 2
            if key is not None and key <= boundaries[mid]:
                hi = mid
            else:
                lo = mid + 1
        out[i] = lo
    return out


def split_by_assignment(frame: DataFrame, assignment: np.ndarray,
                        n_parts: int, vectorized: bool = True
                        ) -> list[DataFrame]:
    """Split ``frame`` into ``n_parts`` frames by per-row partition id.

    The vectorized path reorders the frame once with a stable argsort and
    slices each partition out of the gathered columns — two passes over
    the data regardless of ``n_parts``, versus one boolean scan per
    partition in the reference path. Row order within each partition is
    the original chunk order in both paths.
    """
    if not vectorized:
        return [frame[assignment == r] for r in range(n_parts)]
    order = np.argsort(assignment, kind="stable")
    sorted_assign = assignment[order]
    bounds = np.searchsorted(sorted_assign, np.arange(n_parts + 1))
    gathered = {name: frame._data[name][order] for name in frame._columns}
    parts: list[DataFrame] = []
    for r in range(n_parts):
        lo, hi = int(bounds[r]), int(bounds[r + 1])
        data = {name: arr[lo:hi] for name, arr in gathered.items()}
        index = frame.index.take(order[lo:hi])
        parts.append(DataFrame._new(data, index, list(frame._columns)))
    return parts
