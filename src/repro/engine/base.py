"""The chunk-engine seam: pluggable physical chunk representations.

The tiling layer is deliberately backend-agnostic — operators tile into
chunks whose *physical* representation is an implementation detail — yet
for nine PRs every layer of this repository imported ``repro.frame``
directly, hard-wiring one row-oriented layout into kernels, executor,
shuffle plane and workloads alike.  This module is the seam that undoes
that: a :class:`ChunkEngine` ABC (in the spirit of Ludwig's
``DataFrameEngine``) plus a registry keyed by ``Config.chunk_engine``.

Value spaces
------------

Every engine distinguishes two value spaces:

- **logical** values — what operator kernels compute with: the
  ``repro.frame`` containers (``DataFrame``/``Series``), NumPy arrays
  and scalars.  ``ExecContext.get`` always hands kernels logical values.
- **physical** values — what sits in the executor environment, the
  storage service, and on the shuffle/IPC wire.  ``persist`` maps
  logical → physical; ``compute`` maps physical → logical.  For the
  default :class:`~repro.engine.row.RowEngine` both maps are the
  identity, so the row backend is bit-identical to the pre-seam engine.

Accounting follows the split: ``sizeof`` (storage tiers, shuffle/wire
byte counters) charges the *physical* value — a columnar chunk pays its
dictionary-encoded size, which is what actually travels — while meta
(:func:`describe_value`, feeding size-driven tiling decisions) reports
the *logical* row-space size, so plan topology never depends on the
backend.

Boundary rule (enforced by ``tools/check_service_boundaries.py``):
outside ``repro/frame/`` and ``repro/engine/`` no module may import
``repro.frame`` — the frame API is re-exported by
:mod:`repro.engine.local` and physical behaviour goes through an engine
handle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

import numpy as np

from ..frame import DataFrame, Series, concat as frame_concat
from ..utils import sizeof


class ChunkEngine(ABC):
    """One physical chunk representation, behind a uniform surface."""

    #: registry key (``Config.chunk_engine``).
    name: str = "abstract"
    #: compiled expression fusion evaluates templates against raw
    #: environment values, which only makes sense when physical ==
    #: logical; non-row engines decline and the fused step is
    #: interpreted operator-by-operator instead.
    supports_compiled_fusion: bool = False

    # -- representation -------------------------------------------------
    @abstractmethod
    def persist(self, value: Any) -> Any:
        """Logical → physical: the storage/shuffle form of a value.

        Must be idempotent (``persist(persist(v)) == persist(v)``) and
        exact: ``compute(persist(v))`` is value-identical to ``v``.
        """

    @abstractmethod
    def compute(self, value: Any) -> Any:
        """Physical → logical: materialize a value for kernel use."""

    def to_wire(self, value: Any) -> Any:
        """Physical → picklable wire form (procpool IPC)."""
        return value

    def from_wire(self, value: Any) -> Any:
        """Wire → physical (inverse of :meth:`to_wire`)."""
        return value

    # -- construction / combination ------------------------------------
    def df_like(self, data: dict, index=None, columns=None) -> Any:
        """Build a physical dataframe chunk from column arrays."""
        return self.persist(DataFrame(data, index=index, columns=columns))

    def empty_like(self, value: Any) -> Any:
        """An empty physical chunk with ``value``'s schema."""
        frame = self.compute(value)
        if isinstance(frame, DataFrame):
            return self.persist(frame.iloc[0:0])
        if isinstance(frame, Series):
            return self.persist(frame.iloc[0:0])
        if isinstance(frame, np.ndarray):
            return frame[0:0]
        return frame

    def concat(self, values: list) -> Any:
        """Concatenate physical chunks row-wise into one physical chunk."""
        if len(values) == 1:
            return values[0]
        return self.persist(frame_concat([self.compute(v) for v in values]))

    def take(self, value: Any, indexer: np.ndarray) -> Any:
        """Row gather of a physical chunk by positional indexer."""
        frame = self.compute(value)
        return self.persist(frame.iloc[indexer])

    def map_objects(self, value: Any, fn: Callable[[Any], Any]) -> Any:
        """Apply ``fn`` to the logical value; re-persist the result."""
        return self.persist(fn(self.compute(value)))

    # -- shuffle partition kernels -------------------------------------
    @abstractmethod
    def hash_partition(self, value: Any, key: Any, n_parts: int,
                       vectorized: bool = True) -> np.ndarray:
        """Per-row partition ids of ``value``'s ``key`` column by the
        deterministic content hash.  Backend-invariant: every engine
        must produce the draws of ``repro.frame.hashing`` over the
        *decoded* key values."""

    @abstractmethod
    def range_partition(self, value: Any, key: Any, boundaries: list,
                        vectorized: bool = True) -> np.ndarray:
        """Per-row partition ids by search over sampled boundaries."""

    @abstractmethod
    def split(self, value: Any, assignment: np.ndarray, n_parts: int,
              vectorized: bool = True) -> list:
        """Split a physical chunk into ``n_parts`` physical chunks."""

    # -- introspection / accounting ------------------------------------
    def sizeof(self, value: Any) -> int:
        """Byte size of a physical value (storage/meta accounting)."""
        return sizeof(value)

    def describe(self, value: Any, extra: dict | None = None) -> dict:
        """Schema facts of a physical value (see :func:`describe_value`)."""
        return describe_value(value, extra)

    def columns_of(self, value: Any) -> Optional[list]:
        frame = self.compute(value)
        if isinstance(frame, DataFrame):
            return frame.columns.to_list()
        return None

    def dtypes_of(self, value: Any) -> Optional[dict]:
        frame = self.compute(value)
        if isinstance(frame, DataFrame):
            return {c: frame._data[c].dtype for c in frame._columns}
        if isinstance(frame, Series):
            return {frame.name: frame.dtype}
        return None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_ENGINES: dict[str, ChunkEngine] = {}


def register_engine(engine: ChunkEngine) -> ChunkEngine:
    """Register an engine singleton under ``engine.name``."""
    _ENGINES[engine.name] = engine
    return engine


def get_engine(name: str = "row") -> ChunkEngine:
    """The engine registered as ``name`` (``Config.chunk_engine``)."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown chunk engine {name!r}; registered: "
            f"{sorted(_ENGINES)}"
        ) from None


def engine_of(config) -> ChunkEngine:
    """The engine a :class:`~repro.config.Config` selects."""
    return get_engine(getattr(config, "chunk_engine", "row"))


def compiled_fusion_enabled(config) -> bool:
    """Whether this config may compile fused steps to evaluators.

    The one structural decision the accounting walk and the band/pool
    runners must agree on — both call this, never ``config.compiled_fusion``
    directly, so a non-row engine degrades every path to interpretation
    identically.
    """
    return bool(getattr(config, "compiled_fusion", False)) \
        and engine_of(config).supports_compiled_fusion


def persist_result(engine: ChunkEngine, op, result: Any) -> Any:
    """Persist an operator kernel's result before it enters the env.

    Handles the multi-output convention (``{chunk_key: value}`` keyed by
    the op's own output keys) the kernel loops already use.
    """
    if isinstance(result, dict) and result and all(
        k in {o.key for o in op.outputs} for k in result
    ):
        return {key: engine.persist(value) for key, value in result.items()}
    return engine.persist(result)


# ---------------------------------------------------------------------------
# schema introspection (meta service)
# ---------------------------------------------------------------------------

#: physical-type describers contributed by engine backends:
#: ``type -> fn(value, extra) -> dict`` of ChunkMeta fields.
_DESCRIBERS: dict[type, Callable[[Any, dict], dict]] = {}


def register_describer(cls: type,
                       fn: Callable[[Any, dict], dict]) -> None:
    _DESCRIBERS[cls] = fn


def describe_value(value: Any, extra: dict | None = None) -> dict:
    """Engine-dispatched schema facts of an executed chunk value.

    Returns the field dict of a :class:`repro.core.meta.ChunkMeta`
    (shape/nbytes/kind/dtype/columns/extra).  Backends register
    describers for their physical types so columnar chunks report their
    schema without decoding.
    """
    extra = dict(extra or {})
    describer = _DESCRIBERS.get(type(value))
    if describer is not None:
        return describer(value, extra)
    if isinstance(value, DataFrame):
        return dict(shape=value.shape, nbytes=sizeof(value),
                    kind="dataframe", columns=value.columns.to_list(),
                    extra=extra)
    if isinstance(value, Series):
        return dict(shape=value.shape, nbytes=sizeof(value), kind="series",
                    dtype=value.dtype, extra=extra)
    if isinstance(value, np.ndarray):
        return dict(shape=value.shape, nbytes=sizeof(value), kind="tensor",
                    dtype=value.dtype, extra=extra)
    if isinstance(value, (list, tuple, dict)):
        return dict(shape=(), nbytes=sizeof(value), kind="scalar",
                    extra=extra)
    return dict(shape=(), nbytes=sizeof(value), kind="scalar",
                dtype=getattr(value, "dtype", None), extra=extra)
