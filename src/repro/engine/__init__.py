"""``repro.engine`` — the pluggable chunk-engine seam.

Select a backend with ``Config.chunk_engine`` (``"row"`` is the default
and bit-identical to the pre-seam executor; ``"columnar"`` stores chunks
as contiguous per-column arrays with dictionary-encoded strings).  See
:mod:`repro.engine.base` for the contract and DESIGN.md for the seam's
place in the architecture.
"""

from .base import (
    ChunkEngine,
    compiled_fusion_enabled,
    describe_value,
    engine_of,
    get_engine,
    persist_result,
    register_describer,
    register_engine,
)
from .columnar import COLUMNAR_ENGINE, ColumnarEngine
from .row import ROW_ENGINE, RowEngine

__all__ = [
    "COLUMNAR_ENGINE",
    "ChunkEngine",
    "ColumnarEngine",
    "ROW_ENGINE",
    "RowEngine",
    "compiled_fusion_enabled",
    "describe_value",
    "engine_of",
    "get_engine",
    "persist_result",
    "register_describer",
    "register_engine",
]
