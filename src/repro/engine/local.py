"""The logical value API, re-exported for everything outside the seam.

Operator kernels, workloads and baselines compute with *logical* values
— the ``repro.frame`` containers — regardless of which engine holds the
physical chunks.  They import those names from here, never from
``repro.frame`` directly (the boundary linter enforces it), so the
single-node library stays a private implementation detail of the row
value space and the engine package remains the only module that knows
both representations.

This is a pure re-export: no behaviour lives here.
"""

from ..frame import (
    AGGREGATIONS,
    DataFrame,
    DataFrameGroupBy,
    Index,
    MultiIndex,
    RangeIndex,
    Rolling,
    Series,
    SeriesGroupBy,
    concat,
    corr,
    cov,
    csv_row_count,
    cut,
    date_range,
    describe,
    get_dummies,
    melt,
    merge,
    parquet_file_size,
    parquet_metadata,
    pivot_table,
    qcut,
    rank,
    read_csv,
    read_parquet,
    sample,
    to_csv,
    to_datetime,
    to_parquet,
)
from ..frame import dtypes, io
from ..frame.groupby import _how_name
from ..frame.hashing import hash_array, stable_hash

__all__ = [
    "AGGREGATIONS",
    "DataFrame",
    "DataFrameGroupBy",
    "Index",
    "MultiIndex",
    "RangeIndex",
    "Rolling",
    "Series",
    "SeriesGroupBy",
    "_how_name",
    "concat",
    "corr",
    "cov",
    "csv_row_count",
    "cut",
    "date_range",
    "describe",
    "dtypes",
    "get_dummies",
    "hash_array",
    "io",
    "melt",
    "merge",
    "parquet_file_size",
    "parquet_metadata",
    "pivot_table",
    "qcut",
    "rank",
    "read_csv",
    "read_parquet",
    "sample",
    "stable_hash",
    "to_csv",
    "to_datetime",
    "to_parquet",
]
