"""The columnar engine: contiguous per-column chunks with dictionary
strings.

Physical form
-------------

A :class:`ColumnarFrame` keeps each column as either its raw contiguous
NumPy array or, for all-string object columns, a :class:`DictColumn` —
``int32`` codes into a sorted array of unique categories.  That is the
representation "Towards Scalable Dataframe Systems" and the Cylon line
of work identify as the one that makes shuffle/groupby hot paths cheap:
partitioning gathers 4-byte codes instead of object pointers, and the
wire carries each distinct string once per chunk instead of once per
row.

Parity contract
---------------

Everything observable except byte counters is backend-invariant:

- **values** — ``compute(persist(v))`` reproduces ``v`` exactly
  (``np.unique(return_inverse=True)`` is lossless; ``categories[codes]``
  is the original column).
- **hash draws** — string keys are hashed by *decoded value*:
  ``hash_array(categories)[codes]`` equals the elementwise FNV-1a hash
  of the decoded column because elementwise maps commute with gathers.
  The same argument covers range assignment via
  ``assign_range_partitions(categories, ...)[codes]``.  Partition
  assignment, and with it every ``structural_draw`` fault/cache
  identity, therefore matches the row engine bit for bit.
- **topology** — compiled fusion is declined
  (``supports_compiled_fusion = False``) identically in the accounting
  walk and all runners, so the subtask graph does not depend on which
  fusion path a band happens to take.

Columns that are not uniformly ``str`` (mixed, None/NaN-bearing, or
non-object) are stored raw — encoding stays a pure optimization, never a
semantics change.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np

from .base import ChunkEngine, register_describer, register_engine
from .partition import (
    assign_hash_partitions,
    assign_range_partitions,
    split_by_assignment,
)
from ..frame import DataFrame, Series
from ..frame.hashing import hash_array, stable_hash
from ..utils import register_sizeof

#: object-array byte charge per element / per array, mirroring
#: ``repro.frame``'s accounting so raw and decoded columns price alike.
_OBJ_ITEM_BYTES = 64
_OBJ_BASE_BYTES = 96


def _array_nbytes(arr: np.ndarray) -> int:
    if arr.dtype.kind == "O":
        return arr.size * _OBJ_ITEM_BYTES + _OBJ_BASE_BYTES
    return arr.nbytes


class DictColumn:
    """A dictionary-encoded string column: codes into sorted categories."""

    __slots__ = ("categories", "codes")

    def __init__(self, categories: np.ndarray, codes: np.ndarray):
        self.categories = categories
        self.codes = codes

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def nbytes(self) -> int:
        return self.codes.nbytes + _array_nbytes(self.categories)

    @property
    def dtype(self):
        # logical dtype: decoding yields an object array of strings.
        return self.categories.dtype

    def decode(self) -> np.ndarray:
        return self.categories[self.codes]

    def take(self, indexer: np.ndarray) -> "DictColumn":
        # categories are shared, never copied, across gathers/splits.
        return DictColumn(self.categories, self.codes[indexer])


def encode_column(arr: np.ndarray) -> Union[np.ndarray, DictColumn]:
    """Dictionary-encode an all-string object column; pass others raw."""
    if arr.dtype.kind != "O" or arr.size == 0:
        return arr
    for v in arr.tolist():
        if type(v) is not str:
            return arr
    categories, codes = np.unique(arr, return_inverse=True)
    return DictColumn(categories, codes.astype(np.int32))


def decode_column(col: Union[np.ndarray, DictColumn]) -> np.ndarray:
    return col.decode() if isinstance(col, DictColumn) else col


class ColumnarFrame:
    """Physical dataframe chunk: named columns, raw or dict-encoded."""

    __slots__ = ("_data", "_index", "_columns")

    def __init__(self, data: dict, index, columns: list):
        self._data = data
        self._index = index
        self._columns = columns

    def __len__(self) -> int:
        return len(self._index)

    @property
    def shape(self) -> tuple:
        return (len(self._index), len(self._columns))

    @property
    def columns(self) -> list:
        return list(self._columns)

    @property
    def index(self):
        return self._index

    @property
    def nbytes(self) -> int:
        total = self._index.nbytes + 64
        for name in self._columns:
            total += self._data[name].nbytes if isinstance(
                self._data[name], DictColumn
            ) else _array_nbytes(self._data[name])
        return total

    @property
    def logical_nbytes(self) -> int:
        """Size of the *decoded* row-space twin (``DataFrame.nbytes``).

        Meta reports this, not the physical size: tiling decisions
        (broadcast-vs-shuffle thresholds, chunk auto-merge) read chunk
        sizes from meta, and the seam's parity contract pins plan
        topology across backends — so the planner must see the same
        numbers the row engine would show it.  Storage/wire accounting
        (``utils.sizeof``) stays physical and keeps the dictionary win.
        """
        total = self._index.nbytes + 64
        for name in self._columns:
            col = self._data[name]
            if isinstance(col, DictColumn):
                total += len(col) * _OBJ_ITEM_BYTES + _OBJ_BASE_BYTES
            else:
                total += _array_nbytes(col)
        return total

    def decode(self) -> DataFrame:
        data = {name: decode_column(self._data[name])
                for name in self._columns}
        return DataFrame._new(data, self._index, list(self._columns))

    @classmethod
    def encode(cls, frame: DataFrame) -> "ColumnarFrame":
        data = {name: encode_column(frame._data[name])
                for name in frame._columns}
        return cls(data, frame.index, list(frame._columns))


class ColumnarSeries:
    """Physical series chunk: one raw or dict-encoded column."""

    __slots__ = ("_values", "_index", "name")

    def __init__(self, values, index, name):
        self._values = values
        self._index = index
        self.name = name

    def __len__(self) -> int:
        return len(self._index)

    @property
    def shape(self) -> tuple:
        return (len(self._index),)

    @property
    def dtype(self):
        return self._values.dtype

    @property
    def nbytes(self) -> int:
        if isinstance(self._values, DictColumn):
            values_nbytes = self._values.nbytes
        else:
            values_nbytes = _array_nbytes(self._values)
        return self._index.nbytes + values_nbytes + 32

    @property
    def logical_nbytes(self) -> int:
        """Decoded row-space size (mirrors ``Series.nbytes``); see
        :attr:`ColumnarFrame.logical_nbytes`."""
        if isinstance(self._values, DictColumn):
            values_nbytes = (len(self._values) * _OBJ_ITEM_BYTES
                             + _OBJ_BASE_BYTES)
        else:
            values_nbytes = _array_nbytes(self._values)
        return self._index.nbytes + values_nbytes

    def decode(self) -> Series:
        return Series(decode_column(self._values), index=self._index,
                      name=self.name)

    @classmethod
    def encode(cls, series: Series) -> "ColumnarSeries":
        return cls(encode_column(series.values), series.index, series.name)


# wire tags: a ColumnarFrame crosses the procpool boundary as plain
# tuples of arrays so the int32 code buffers ride the shared-memory
# segment out-of-band and categories pickle once per chunk.
_WIRE_FRAME = "__columnar_frame__"
_WIRE_SERIES = "__columnar_series__"


def _column_to_wire(col):
    if isinstance(col, DictColumn):
        return ("dict", col.categories, col.codes)
    return ("raw", col)


def _column_from_wire(payload):
    if payload[0] == "dict":
        return DictColumn(payload[1], payload[2])
    return payload[1]


class ColumnarEngine(ChunkEngine):
    """Columnar chunks with dictionary-encoded string columns."""

    name = "columnar"
    supports_compiled_fusion = False

    # -- representation -------------------------------------------------
    def persist(self, value: Any) -> Any:
        if isinstance(value, (ColumnarFrame, ColumnarSeries)):
            return value
        if isinstance(value, DataFrame):
            return ColumnarFrame.encode(value)
        if isinstance(value, Series):
            return ColumnarSeries.encode(value)
        return value

    def compute(self, value: Any) -> Any:
        if isinstance(value, (ColumnarFrame, ColumnarSeries)):
            return value.decode()
        return value

    def to_wire(self, value: Any) -> Any:
        if isinstance(value, ColumnarFrame):
            cols = [(name, _column_to_wire(value._data[name]))
                    for name in value._columns]
            return (_WIRE_FRAME, cols, value._index)
        if isinstance(value, ColumnarSeries):
            return (_WIRE_SERIES, _column_to_wire(value._values),
                    value._index, value.name)
        return value

    def from_wire(self, value: Any) -> Any:
        if isinstance(value, tuple) and value and value[0] == _WIRE_FRAME:
            _, cols, index = value
            data = {name: _column_from_wire(payload)
                    for name, payload in cols}
            return ColumnarFrame(data, index, [name for name, _ in cols])
        if isinstance(value, tuple) and value and value[0] == _WIRE_SERIES:
            _, payload, index, name = value
            return ColumnarSeries(_column_from_wire(payload), index, name)
        return value

    # -- shuffle partition kernels -------------------------------------
    def hash_partition(self, value: Any, key: Any, n_parts: int,
                       vectorized: bool = True) -> np.ndarray:
        col = self._key_column(value, key)
        if isinstance(col, DictColumn):
            # hash decoded values, never codes: elementwise hashes
            # commute with the codes gather, so this is the exact
            # FNV-1a draw of the row engine at dictionary cost.
            if vectorized:
                cat_parts = hash_array(col.categories) % n_parts
            else:
                cat_parts = np.array(
                    [stable_hash(v) % n_parts
                     for v in col.categories.tolist()],
                    dtype=np.int64,
                )
            return cat_parts[col.codes]
        return assign_hash_partitions(col, n_parts, vectorized)

    def range_partition(self, value: Any, key: Any, boundaries: list,
                        vectorized: bool = True) -> np.ndarray:
        col = self._key_column(value, key)
        if isinstance(col, DictColumn):
            cat_parts = assign_range_partitions(col.categories, boundaries,
                                                vectorized)
            return cat_parts[col.codes]
        return assign_range_partitions(col, boundaries, vectorized)

    def split(self, value: Any, assignment: np.ndarray, n_parts: int,
              vectorized: bool = True) -> list:
        if not isinstance(value, ColumnarFrame):
            frame = self.compute(value)
            return [self.persist(part) for part in
                    split_by_assignment(frame, assignment, n_parts,
                                        vectorized)]
        order = np.argsort(assignment, kind="stable")
        sorted_assign = assignment[order]
        bounds = np.searchsorted(sorted_assign, np.arange(n_parts + 1))
        gathered = {name: value._data[name].take(order)
                    if isinstance(value._data[name], DictColumn)
                    else value._data[name][order]
                    for name in value._columns}
        parts: list[ColumnarFrame] = []
        for r in range(n_parts):
            lo, hi = int(bounds[r]), int(bounds[r + 1])
            data = {}
            for name, col in gathered.items():
                if isinstance(col, DictColumn):
                    # each partition is an independent chunk headed to
                    # its own reducer: compact its dictionary to the
                    # categories it actually uses, so storage/wire are
                    # charged what genuinely travels — not one full
                    # dictionary per partition. ``used`` is sorted, so
                    # the compacted categories stay sorted-unique.
                    used, codes = np.unique(col.codes[lo:hi],
                                            return_inverse=True)
                    data[name] = DictColumn(col.categories[used],
                                            codes.astype(np.int32))
                else:
                    data[name] = col[lo:hi]
            index = value._index.take(order[lo:hi])
            parts.append(ColumnarFrame(data, index,
                                       list(value._columns)))
        return parts

    # -- introspection --------------------------------------------------
    def take(self, value: Any, indexer: np.ndarray) -> Any:
        if isinstance(value, ColumnarFrame):
            indexer = np.asarray(indexer)
            data = {name: value._data[name].take(indexer)
                    if isinstance(value._data[name], DictColumn)
                    else value._data[name][indexer]
                    for name in value._columns}
            return ColumnarFrame(data, value._index.take(indexer),
                                 list(value._columns))
        return super().take(value, indexer)

    def columns_of(self, value: Any):
        if isinstance(value, ColumnarFrame):
            return list(value._columns)
        return super().columns_of(value)

    def dtypes_of(self, value: Any):
        if isinstance(value, ColumnarFrame):
            return {name: value._data[name].dtype
                    for name in value._columns}
        if isinstance(value, ColumnarSeries):
            return {value.name: value.dtype}
        return super().dtypes_of(value)

    @staticmethod
    def _key_column(value: Any, key: Any):
        if isinstance(value, ColumnarFrame):
            return value._data[key]
        return value[key].values


COLUMNAR_ENGINE = register_engine(ColumnarEngine())


# meta nbytes are *logical* so size-driven tiling decisions are
# engine-invariant; sizeof stays physical (see logical_nbytes).
def _describe_frame(value: ColumnarFrame, extra: dict) -> dict:
    return dict(shape=value.shape, nbytes=value.logical_nbytes,
                kind="dataframe", columns=list(value._columns), extra=extra)


def _describe_series(value: ColumnarSeries, extra: dict) -> dict:
    return dict(shape=value.shape, nbytes=value.logical_nbytes,
                kind="series", dtype=value.dtype, extra=extra)


register_describer(ColumnarFrame, _describe_frame)
register_describer(ColumnarSeries, _describe_series)
register_sizeof(ColumnarFrame, lambda v: v.nbytes)
register_sizeof(ColumnarSeries, lambda v: v.nbytes)
register_sizeof(DictColumn, lambda v: v.nbytes)
