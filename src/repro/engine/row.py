"""The row engine: ``repro.frame`` chunks, unchanged.

Physical == logical: ``persist`` and ``compute`` are the identity, the
partition kernels are exactly the pre-seam ones from
:mod:`repro.engine.partition`, and the wire format is whatever the
procpool serializer already did.  With ``Config.chunk_engine = "row"``
(the default) every byte counter, fault draw and golden scenario report
is bit-identical to the engine that existed before the seam.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import ChunkEngine, register_engine
from .partition import (
    assign_hash_partitions,
    assign_range_partitions,
    split_by_assignment,
)
from ..frame import DataFrame


class RowEngine(ChunkEngine):
    """Row-oriented chunks backed by ``repro.frame`` containers."""

    name = "row"
    supports_compiled_fusion = True

    def persist(self, value: Any) -> Any:
        return value

    def compute(self, value: Any) -> Any:
        return value

    def df_like(self, data: dict, index=None, columns=None) -> Any:
        return DataFrame(data, index=index, columns=columns)

    def concat(self, values: list) -> Any:
        if len(values) == 1:
            return values[0]
        from ..frame import concat as frame_concat

        return frame_concat(values)

    def hash_partition(self, value: Any, key: Any, n_parts: int,
                       vectorized: bool = True) -> np.ndarray:
        return assign_hash_partitions(value[key].values, n_parts, vectorized)

    def range_partition(self, value: Any, key: Any, boundaries: list,
                        vectorized: bool = True) -> np.ndarray:
        return assign_range_partitions(value[key].values, boundaries,
                                       vectorized)

    def split(self, value: Any, assignment: np.ndarray, n_parts: int,
              vectorized: bool = True) -> list:
        return split_by_assignment(value, assignment, n_parts, vectorized)


ROW_ENGINE = register_engine(RowEngine())
