"""Exception hierarchy for the repro engine.

The benchmark harness classifies failures by exception type to regenerate
Table I (failed queries per engine) and Table II (failure reasons), so the
classes here mirror the paper's failure taxonomy: API compatibility
failures, hangs, and out-of-memory kills.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ApiCompatibilityError(ReproError):
    """An engine does not support a pandas/NumPy API or usage pattern.

    Simulated baseline engines raise this when user code touches an
    operator outside their supported surface (e.g. ``iloc`` on a
    row-only-partitioned dataframe), matching the "API Compatibility"
    failure category of Table II.
    """

    def __init__(self, api: str, engine: str = "", reason: str = ""):
        self.api = api
        self.engine = engine
        self.reason = reason
        detail = f"API {api!r} is not supported"
        if engine:
            detail += f" by engine {engine!r}"
        if reason:
            detail += f": {reason}"
        super().__init__(detail)


class WorkerOutOfMemory(ReproError, MemoryError):
    """A simulated worker exceeded its memory budget.

    Corresponds to the "OOM or Killed" failure category of Table II.
    """

    def __init__(self, worker: str, requested: int, limit: int, used: int):
        self.worker = worker
        self.requested = requested
        self.limit = limit
        self.used = used
        super().__init__(
            f"worker {worker!r} out of memory: requested {requested} bytes "
            f"with {used}/{limit} bytes already in use"
        )


class ExecutionHang(ReproError):
    """The simulated engine made no progress within its step budget.

    Corresponds to the "Hang" failure category of Table II.
    """

    def __init__(self, engine: str, detail: str = ""):
        self.engine = engine
        super().__init__(f"engine {engine!r} hang detected{': ' + detail if detail else ''}")


class StorageKeyError(ReproError, KeyError):
    """A chunk key was not found in any storage tier."""


class FaultInjected(ReproError):
    """A deterministic fault-injection point fired (chaos testing).

    Retryable: the recovery layer re-attempts the subtask with exponential
    backoff charged to the simulated clock.
    """

    def __init__(self, point: str, target: str):
        self.point = point
        self.target = target
        super().__init__(f"injected fault at {point!r} on {target!r}")


class ChunkLostError(ReproError):
    """Input chunks vanished from storage (dropped chunk or killed worker).

    Retryable: lineage recovery recomputes the missing producers and the
    consumer is re-attempted.
    """

    def __init__(self, keys):
        self.keys = list(keys)
        super().__init__(
            f"lost {len(self.keys)} chunk(s): {', '.join(self.keys[:4])}"
            + ("..." if len(self.keys) > 4 else "")
        )


class WorkerProcessCrash(ReproError):
    """A process-pool worker died while computing a subtask.

    Retryable: the subtask's inputs still sit in driver-side storage, so
    the accounting walk simply re-runs the kernels inline (and lineage
    recovery restores anything a larger failure took), exactly like any
    other compute-phase fault. The pool is rebuilt behind the scenes.
    """

    def __init__(self, band: str, detail: str = ""):
        self.band = band
        super().__init__(
            f"worker process died while computing on band {band!r}"
            + (f": {detail}" if detail else "")
        )


class UnrecoverableChunkLoss(ReproError):
    """A lost chunk has no recorded lineage, so it cannot be recomputed."""

    def __init__(self, key: str):
        self.key = key
        super().__init__(f"chunk {key!r} was lost and has no lineage to recompute it")


class RetriesExhausted(ReproError):
    """A subtask kept failing past its retry budget.

    Carries the last underlying failure; raised instead of hanging so the
    benchmark harness can classify the run as failed.
    """

    def __init__(self, subtask_key: str, attempts: int,
                 last_error: BaseException | None = None):
        self.subtask_key = subtask_key
        self.attempts = attempts
        self.last_error = last_error
        detail = f" (last error: {last_error})" if last_error is not None else ""
        super().__init__(
            f"subtask {subtask_key!r} failed {attempts} attempts{detail}"
        )


class DispatcherError(ReproError):
    """The band-runner dispatcher died or was stopped with waiters pending.

    Raised to every ``wait_for`` caller instead of blocking forever when a
    runner thread fails outside a subtask's own compute (pool shutdown,
    completion bookkeeping error).
    """


class DispatcherStall(DispatcherError):
    """The dispatcher made zero progress across consecutive watchdog windows.

    Carries the diagnostic context a stall post-mortem needs: which key the
    accounting walk was blocked on, how many computations were in flight,
    and what was still queued per band. Replaces the old silent re-wait so
    a wedged runner surfaces as a typed failure instead of a hang.
    """

    def __init__(self, key: str, waited: float, inflight: int,
                 queued: dict[str, int]):
        self.key = key
        self.waited = waited
        self.inflight = inflight
        self.queued = dict(queued)
        pending = ", ".join(f"{band}={n}" for band, n in sorted(self.queued.items()))
        super().__init__(
            f"dispatcher stalled waiting for {key!r}: no completions for "
            f"{waited:.1f}s with {inflight} in flight"
            + (f" (queued: {pending})" if pending else "")
        )


class StorageFull(ReproError):
    """A storage tier cannot accept more data and spilling is disabled."""


class TilingError(ReproError):
    """Dynamic tiling could not produce a valid chunk layout."""


class GraphError(ReproError):
    """Malformed computation graph (cycles, dangling edges, ...)."""


class SchedulingError(ReproError):
    """No band satisfies a subtask's placement constraints."""


class ActorError(ReproError):
    """Actor framework failure (unknown actor, dead pool, ...)."""


class ActorNotFound(ActorError):
    """A message was delivered to a uid that is not (or no longer) registered.

    Typed and retryable: ``destroy_actor``/``stop_pool`` racing an in-flight
    ``deliver``, or a killed runner, surface as this instead of an opaque
    lookup failure. The executor treats it like any other transient fault —
    the subtask re-runs inline and lineage recovery restores lost state.
    """

    def __init__(self, address: str, uid: str, detail: str = ""):
        self.address = address
        self.uid = uid
        super().__init__(
            f"no actor {uid!r} at address {address!r}"
            + (f": {detail}" if detail else "")
        )


class RestartStorm(ActorError):
    """An actor died more times than its restart budget allows.

    The supervisor refuses further restarts of the uid; the failure
    propagates to the caller instead of looping forever on a crashing
    service.
    """

    def __init__(self, uid: str, restarts: int, limit: int):
        self.uid = uid
        self.restarts = restarts
        self.limit = limit
        super().__init__(
            f"actor {uid!r} restarted {restarts} times "
            f"(limit {limit}); refusing further restarts"
        )


class SessionError(ReproError):
    """Operations on a missing or closed session."""
