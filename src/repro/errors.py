"""Exception hierarchy for the repro engine.

The benchmark harness classifies failures by exception type to regenerate
Table I (failed queries per engine) and Table II (failure reasons), so the
classes here mirror the paper's failure taxonomy: API compatibility
failures, hangs, and out-of-memory kills.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ApiCompatibilityError(ReproError):
    """An engine does not support a pandas/NumPy API or usage pattern.

    Simulated baseline engines raise this when user code touches an
    operator outside their supported surface (e.g. ``iloc`` on a
    row-only-partitioned dataframe), matching the "API Compatibility"
    failure category of Table II.
    """

    def __init__(self, api: str, engine: str = "", reason: str = ""):
        self.api = api
        self.engine = engine
        self.reason = reason
        detail = f"API {api!r} is not supported"
        if engine:
            detail += f" by engine {engine!r}"
        if reason:
            detail += f": {reason}"
        super().__init__(detail)


class WorkerOutOfMemory(ReproError, MemoryError):
    """A simulated worker exceeded its memory budget.

    Corresponds to the "OOM or Killed" failure category of Table II.
    """

    def __init__(self, worker: str, requested: int, limit: int, used: int):
        self.worker = worker
        self.requested = requested
        self.limit = limit
        self.used = used
        super().__init__(
            f"worker {worker!r} out of memory: requested {requested} bytes "
            f"with {used}/{limit} bytes already in use"
        )


class ExecutionHang(ReproError):
    """The simulated engine made no progress within its step budget.

    Corresponds to the "Hang" failure category of Table II.
    """

    def __init__(self, engine: str, detail: str = ""):
        self.engine = engine
        super().__init__(f"engine {engine!r} hang detected{': ' + detail if detail else ''}")


class StorageKeyError(ReproError, KeyError):
    """A chunk key was not found in any storage tier."""


class StorageFull(ReproError):
    """A storage tier cannot accept more data and spilling is disabled."""


class TilingError(ReproError):
    """Dynamic tiling could not produce a valid chunk layout."""


class GraphError(ReproError):
    """Malformed computation graph (cycles, dangling edges, ...)."""


class SchedulingError(ReproError):
    """No band satisfies a subtask's placement constraints."""


class ActorError(ReproError):
    """Actor framework failure (unknown actor, dead pool, ...)."""


class SessionError(ReproError):
    """Operations on a missing or closed session."""
