"""Tensor data sources: random arrays, constants, ranges, in-memory arrays.

Tensors are statically tileable (shapes are known), so sources chunk with
Algorithm 1 (auto rechunk) over all dimensions at once; shape-constrained
consumers (QR) later re-tile with their own ``dim_to_size`` constraints.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

import numpy as np

from ..core.operator import DataSourceOp, ExecContext, Operator, TileContext
from ..core.rechunk import rechunk_to_splits
from ..graph.entity import ChunkData
from ..utils import cumulative_offsets


def tile_grid(op_factory, shape: Sequence[int], nsplits: tuple,
              dtype) -> list[ChunkData]:
    """Create one chunk per grid cell of ``nsplits``.

    ``op_factory(index, offsets, extents)`` returns the chunk operator.
    """
    per_dim_offsets = [cumulative_offsets(splits) for splits in nsplits]
    grid = [range(len(splits)) for splits in nsplits]
    chunks = []
    for index in itertools.product(*grid):
        extents = tuple(nsplits[d][i] for d, i in enumerate(index))
        offsets = tuple(per_dim_offsets[d][i] for d, i in enumerate(index))
        op = op_factory(index, offsets, extents)
        chunks.append(op.new_chunk([], "tensor", extents, index, dtype=dtype))
    return chunks


class TensorSource(DataSourceOp):
    """Common tiling of every tensor source."""

    def __init__(self, shape: Sequence[int], dtype=np.float64, **params):
        super().__init__(**params)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)

    def _splits(self, ctx: TileContext) -> tuple:
        return rechunk_to_splits(
            self.shape, {}, self.dtype.itemsize, ctx.config.chunk_store_limit
        )

    def tile(self, ctx: TileContext):
        nsplits = self._splits(ctx)
        chunks = tile_grid(self._chunk_op, self.shape, nsplits, self.dtype)
        return [(chunks, nsplits)]

    def _chunk_op(self, index, offsets, extents) -> Operator:
        raise NotImplementedError


class RandomTensor(TensorSource):
    """Uniform [0, 1) random tensor with a per-chunk derived seed, so the
    result is independent of the chunk layout chosen."""

    def __init__(self, shape, seed: Optional[int] = None, dtype=np.float64,
                 distribution: str = "uniform", **params):
        super().__init__(shape, dtype=dtype, **params)
        self.seed = seed
        self.distribution = distribution

    def _chunk_op(self, index, offsets, extents):
        chunk_seed = None
        if self.seed is not None:
            chunk_seed = hash((self.seed,) + tuple(index)) % (2 ** 31)
        return RandomChunk(extents=extents, seed=chunk_seed,
                           dtype=self.dtype, distribution=self.distribution)


class RandomChunk(Operator):
    def __init__(self, extents, seed, dtype, distribution, **params):
        super().__init__(**params)
        self.extents = extents
        self.seed = seed
        self.dtype = dtype
        self.distribution = distribution

    def execute(self, ctx: ExecContext):
        rng = np.random.default_rng(self.seed)
        if self.distribution == "normal":
            return rng.normal(size=self.extents).astype(self.dtype)
        return rng.random(size=self.extents, dtype=np.float64).astype(self.dtype)


class FullTensor(TensorSource):
    """Constant tensors: ones, zeros, full."""

    def __init__(self, shape, fill_value, dtype=np.float64, **params):
        super().__init__(shape, dtype=dtype, **params)
        self.fill_value = fill_value

    def _chunk_op(self, index, offsets, extents):
        return FullChunk(extents=extents, fill_value=self.fill_value,
                         dtype=self.dtype)


class FullChunk(Operator):
    def __init__(self, extents, fill_value, dtype, **params):
        super().__init__(**params)
        self.extents = extents
        self.fill_value = fill_value
        self.dtype = dtype

    def execute(self, ctx: ExecContext):
        return np.full(self.extents, self.fill_value, dtype=self.dtype)


class ARange(TensorSource):
    """1-D ``arange(n)``."""

    def __init__(self, n: int, dtype=np.int64, **params):
        super().__init__((n,), dtype=dtype, **params)

    def _chunk_op(self, index, offsets, extents):
        return ARangeChunk(start=offsets[0], stop=offsets[0] + extents[0],
                           dtype=self.dtype)


class ARangeChunk(Operator):
    def __init__(self, start, stop, dtype, **params):
        super().__init__(**params)
        self.start, self.stop, self.dtype = start, stop, dtype

    def execute(self, ctx: ExecContext):
        return np.arange(self.start, self.stop, dtype=self.dtype)


class FromArray(TensorSource):
    """Distribute an in-memory NumPy array."""

    def __init__(self, array: np.ndarray, **params):
        super().__init__(array.shape, dtype=array.dtype, **params)
        self.array = array

    def _chunk_op(self, index, offsets, extents):
        slices = tuple(
            slice(o, o + e) for o, e in zip(offsets, extents)
        )
        return FromArrayChunk(array=self.array, slices=slices)


class FromArrayChunk(Operator):
    def __init__(self, array, slices, **params):
        super().__init__(**params)
        self.array = array
        self.slices = slices

    def execute(self, ctx: ExecContext):
        return np.ascontiguousarray(self.array[self.slices])
