"""Distributed linear algebra: tall-and-skinny QR and least squares.

``qr`` implements the MapReduce (TSQR) algorithm of Benson, Gleich &
Demmel that both Xorbits and Dask use (Section VI-C): per-block local QR,
a stacked QR over the R factors, and a block-wise Q update. The paper's
point is *not* the algorithm but the chunking: Dask requires the user to
``rechunk`` into tall-and-skinny blocks manually (Listing 1), while
Xorbits derives the layout with Algorithm 1 (``dim_to_size={1: n}``)
automatically — so does this operator.

``lstsq`` solves ordinary least squares via block-summed normal
equations, the linear-regression workload of Fig. 8(c).
"""

from __future__ import annotations

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..core.rechunk import rechunk_to_splits
from ..errors import TilingError
from ..graph.entity import ChunkData, TileableData
from ..utils import batched
from .rechunk import rechunk_chunks


def _tall_skinny_layout(ctx: TileContext, source: TileableData):
    """Auto-rechunk (Algorithm 1): row blocks spanning all columns."""
    n_rows, n_cols = source.shape
    nsplits = rechunk_to_splits(
        (n_rows, n_cols), {1: n_cols},
        np.dtype(source.dtype or np.float64).itemsize,
        ctx.config.chunk_store_limit,
    )
    if source.nsplits == nsplits:
        return list(source.chunks), nsplits
    chunks = rechunk_chunks(source.chunks, source.nsplits, nsplits,
                            source.dtype)
    return chunks, nsplits


class TSQR(Operator):
    """Tall-and-skinny QR decomposition; outputs Q and R."""

    def tile(self, ctx: TileContext):
        source = self.inputs[0]
        if source.ndim != 2:
            raise TilingError("qr requires a 2-D tensor")
        n_rows, n_cols = source.shape
        if n_rows < n_cols:
            raise TilingError("qr requires n_rows >= n_cols (tall-and-skinny)")
        blocks, nsplits = _tall_skinny_layout(ctx, source)
        row_splits = nsplits[0]
        m = len(blocks)
        dtype = np.dtype(np.float64)

        # map: local QR per row block → (Q_i, R_i)
        q_locals, r_locals = [], []
        for i, block in enumerate(blocks):
            op = TSQRMap()
            q_spec = {"kind": "tensor", "shape": (row_splits[i], n_cols),
                      "index": (i, 0), "dtype": dtype}
            r_spec = {"kind": "tensor", "shape": (n_cols, n_cols),
                      "index": (i, 0), "dtype": dtype}
            q_chunk, r_chunk = op.new_chunks([block], [q_spec, r_spec])
            q_locals.append(q_chunk)
            r_locals.append(r_chunk)

        # reduce: QR of the stacked R factors → R plus per-block Q2 updates
        reduce_op = TSQRReduce(n_blocks=m, n_cols=n_cols)
        specs = [{"kind": "tensor", "shape": (n_cols, n_cols),
                  "index": (0, 0), "dtype": dtype}]
        for i in range(m):
            specs.append({"kind": "tensor", "shape": (n_cols, n_cols),
                          "index": (i, 0), "dtype": dtype})
        reduce_outs = reduce_op.new_chunks(r_locals, specs)
        r_final = reduce_outs[0]
        q2_blocks = reduce_outs[1:]

        # update: Q_i = Q_i_local @ Q2_i
        q_chunks = []
        for i in range(m):
            op = TSQRUpdate()
            q_chunks.append(op.new_chunk(
                [q_locals[i], q2_blocks[i]], "tensor",
                (row_splits[i], n_cols), (i, 0), dtype=dtype,
            ))
        return [
            (q_chunks, (row_splits, (n_cols,))),
            ([r_final], ((n_cols,), (n_cols,))),
        ]


class TSQRMap(Operator):
    def execute(self, ctx: ExecContext):
        block = ctx.get(self.inputs[0].key)
        q, r = np.linalg.qr(block)
        return {self.outputs[0].key: q, self.outputs[1].key: r}


class TSQRReduce(Operator):
    def __init__(self, n_blocks: int, n_cols: int, **params):
        super().__init__(**params)
        self.n_blocks = n_blocks
        self.n_cols = n_cols

    def execute(self, ctx: ExecContext):
        stacked = np.vstack([ctx.get(c.key) for c in self.inputs])
        q2, r = np.linalg.qr(stacked)
        out = {self.outputs[0].key: r}
        for i in range(self.n_blocks):
            lo, hi = i * self.n_cols, (i + 1) * self.n_cols
            out[self.outputs[1 + i].key] = np.ascontiguousarray(q2[lo:hi])
        return out


class TSQRUpdate(Operator):
    is_elementwise = True

    def execute(self, ctx: ExecContext):
        q_local = ctx.get(self.inputs[0].key)
        q2 = ctx.get(self.inputs[1].key)
        return q_local @ q2


class LstSq(Operator):
    """OLS fit via block-summed normal equations: β = (XᵀX)⁻¹ Xᵀy."""

    def tile(self, ctx: TileContext):
        x, y = self.inputs
        if x.ndim != 2 or y.ndim != 1:
            raise TilingError("lstsq expects X (2-D) and y (1-D)")
        if x.shape[0] != y.shape[0]:
            raise TilingError("X and y row counts differ")
        n_cols = x.shape[1]
        x_blocks, x_nsplits = _tall_skinny_layout(ctx, x)
        y_chunks = list(y.chunks)
        if y.nsplits[0] != x_nsplits[0]:
            y_chunks = rechunk_chunks(y.chunks, y.nsplits, (x_nsplits[0],),
                                      y.dtype)
        partials = []
        for xb, yb in zip(x_blocks, y_chunks):
            op = NormalEquationsMap()
            partials.append(op.new_chunk([xb, yb], "scalar", (), ()))
        level = partials
        while len(level) > 1:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = NormalEquationsCombine()
                next_level.append(op.new_chunk(list(batch), "scalar", (), ()))
            level = next_level
        solve_op = NormalEquationsSolve()
        beta = solve_op.new_chunk(level, "tensor", (n_cols,), (0,),
                                  dtype=np.float64)
        return [([beta], ((n_cols,),))]


class NormalEquationsMap(Operator):
    def execute(self, ctx: ExecContext):
        x = ctx.get(self.inputs[0].key)
        y = ctx.get(self.inputs[1].key)
        return {"xtx": x.T @ x, "xty": x.T @ y}


class NormalEquationsCombine(Operator):
    def execute(self, ctx: ExecContext):
        parts = [ctx.get(c.key) for c in self.inputs]
        return {
            "xtx": sum(p["xtx"] for p in parts),
            "xty": sum(p["xty"] for p in parts),
        }


class NormalEquationsSolve(Operator):
    def execute(self, ctx: ExecContext):
        parts = [ctx.get(c.key) for c in self.inputs]
        xtx = sum(p["xtx"] for p in parts) if len(parts) > 1 else parts[0]["xtx"]
        xty = sum(p["xty"] for p in parts) if len(parts) > 1 else parts[0]["xty"]
        return np.linalg.solve(xtx, xty)
