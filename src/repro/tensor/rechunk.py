"""Tensor rechunk: reshape the chunk grid of a tensor whose shape is known.

This is the kernel behind *auto rechunk* (Section V-D): shape-constrained
operators (QR, matmul alignment) call :func:`rechunk` with the nsplits
Algorithm 1 chose, instead of making users call ``.rechunk`` manually as
Dask requires (Listing 1 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..graph.entity import ChunkData, TileableData
from ..utils import cumulative_offsets


class Rechunk(Operator):
    """Re-tile a tensor to ``target_nsplits``."""

    def __init__(self, target_nsplits: tuple, **params):
        super().__init__(**params)
        self.target_nsplits = tuple(tuple(s) for s in target_nsplits)

    def tile(self, ctx: TileContext):
        source = self.inputs[0]
        if not source.has_known_shape:
            raise TilingError("rechunk requires a known tensor shape")
        for dim, splits in enumerate(self.target_nsplits):
            if sum(splits) != source.shape[dim]:
                raise TilingError(
                    f"target splits {splits} do not cover dim {dim} of "
                    f"shape {source.shape}"
                )
        chunks = rechunk_chunks(source.chunks, source.nsplits,
                                self.target_nsplits, source.dtype)
        return [(chunks, self.target_nsplits)]


def rechunk_chunks(in_chunks: Sequence[ChunkData], in_nsplits: tuple,
                   out_nsplits: tuple, dtype) -> list[ChunkData]:
    """Build the chunk ops mapping one grid onto another."""
    ndim = len(out_nsplits)
    in_offsets = [cumulative_offsets(s) for s in in_nsplits]
    out_offsets = [cumulative_offsets(s) for s in out_nsplits]
    chunk_by_index = {c.index: c for c in in_chunks}

    out_chunks = []
    for out_index in itertools.product(*[range(len(s)) for s in out_nsplits]):
        lo = tuple(out_offsets[d][i] for d, i in enumerate(out_index))
        hi = tuple(out_offsets[d][i + 1] for d, i in enumerate(out_index))
        # find overlapping input chunks per dimension
        per_dim_hits = []
        for d in range(ndim):
            hits = []
            for j in range(len(in_nsplits[d])):
                a, b = in_offsets[d][j], in_offsets[d][j + 1]
                if a < hi[d] and b > lo[d]:
                    hits.append(j)
            per_dim_hits.append(hits)
        pieces: list[ChunkData] = []
        slices: list[tuple] = []
        grid_shape = tuple(len(h) for h in per_dim_hits)
        for combo in itertools.product(*per_dim_hits):
            src = chunk_by_index[combo]
            local = tuple(
                slice(max(lo[d] - in_offsets[d][combo[d]], 0),
                      min(hi[d], in_offsets[d][combo[d] + 1])
                      - in_offsets[d][combo[d]])
                for d in range(ndim)
            )
            pieces.append(src)
            slices.append(local)
        extents = tuple(hi[d] - lo[d] for d in range(ndim))
        op = RechunkAssemble(slices=slices, grid_shape=grid_shape)
        out_chunks.append(op.new_chunk(
            pieces, "tensor", extents, out_index, dtype=dtype
        ))
    return out_chunks


class RechunkAssemble(Operator):
    """Slice overlapping input blocks and reassemble one output block."""

    def __init__(self, slices, grid_shape, **params):
        super().__init__(**params)
        self.slices = slices
        self.grid_shape = grid_shape

    def execute(self, ctx: ExecContext):
        parts = [
            ctx.get(chunk.key)[local]
            for chunk, local in zip(self.inputs, self.slices)
        ]
        if len(parts) == 1:
            return np.ascontiguousarray(parts[0])
        ndim = len(self.grid_shape)
        if ndim == 1:
            return np.concatenate(parts)
        rows, cols = self.grid_shape
        nested = [
            [parts[r * cols + c] for c in range(cols)] for r in range(rows)
        ]
        return np.block(nested)


def rechunk(tensor_data: TileableData, target_nsplits: tuple) -> TileableData:
    """Tileable-level rechunk constructor."""
    op = Rechunk(target_nsplits=target_nsplits)
    return op.new_tileable([tensor_data], "tensor", tensor_data.shape,
                           dtype=tensor_data.dtype)
