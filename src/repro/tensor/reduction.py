"""Tensor reductions: full and per-axis, with tree combines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..utils import batched

_PARTIAL = {
    "sum": lambda a, axis: {"acc": np.sum(a, axis=axis)},
    "max": lambda a, axis: {"acc": np.max(a, axis=axis)},
    "min": lambda a, axis: {"acc": np.min(a, axis=axis)},
    "mean": lambda a, axis: {
        "sum": np.sum(a, axis=axis),
        "count": (a.size if axis is None else a.shape[axis]),
    },
}


def _merge(parts: list[dict], how: str) -> dict:
    if how == "sum":
        return {"acc": sum(p["acc"] for p in parts)}
    if how == "max":
        return {"acc": np.maximum.reduce([p["acc"] for p in parts])}
    if how == "min":
        return {"acc": np.minimum.reduce([p["acc"] for p in parts])}
    return {"sum": sum(p["sum"] for p in parts),
            "count": sum(p["count"] for p in parts)}


def _finalize(part: dict, how: str):
    if how == "mean":
        return part["sum"] / part["count"]
    return part["acc"]


class TensorReduce(Operator):
    """``sum``/``mean``/``min``/``max`` over all axes or one axis."""

    def __init__(self, how: str, axis: Optional[int] = None, **params):
        super().__init__(**params)
        if how not in _PARTIAL:
            raise ValueError(f"unsupported tensor reduction {how!r}")
        self.how = how
        self.axis = axis

    def tile(self, ctx: TileContext):
        source = self.inputs[0]
        if self.axis is None:
            return self._tile_full(ctx, source)
        return self._tile_axis(ctx, source)

    def _tile_full(self, ctx: TileContext, source):
        level = []
        for chunk in source.chunks:
            op = TensorReduceChunk(how=self.how, axis=None, role="map")
            level.append(op.new_chunk([chunk], "scalar", (), ()))
        while len(level) > 1:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = TensorReduceChunk(how=self.how, axis=None, role="combine")
                next_level.append(op.new_chunk(list(batch), "scalar", (), ()))
            level = next_level
        final = TensorReduceChunk(how=self.how, axis=None, role="reduce")
        out = final.new_chunk(level, "scalar", (), ())
        return [([out], ((),))]

    def _tile_axis(self, ctx: TileContext, source):
        if source.ndim != 2:
            raise ValueError("axis reductions support 2-D tensors")
        axis = self.axis
        keep_dim = 1 - axis
        keep_splits = source.nsplits[keep_dim]
        out_chunks = []
        grid = {(c.index[0], c.index[1]): c for c in source.chunks}
        n_reduce = len(source.nsplits[axis])
        for k in range(len(keep_splits)):
            group = [
                grid[(i, k) if axis == 0 else (k, i)] for i in range(n_reduce)
            ]
            level = []
            for chunk in group:
                op = TensorReduceChunk(how=self.how, axis=axis, role="map")
                level.append(op.new_chunk(
                    [chunk], "tensor", (keep_splits[k],), (k,),
                    dtype=source.dtype,
                ))
            while len(level) > 1:
                next_level = []
                for batch in batched(level, ctx.config.combine_arity):
                    op = TensorReduceChunk(how=self.how, axis=axis,
                                           role="combine")
                    next_level.append(op.new_chunk(
                        list(batch), "tensor", (keep_splits[k],), (k,),
                        dtype=source.dtype,
                    ))
                level = next_level
            final = TensorReduceChunk(how=self.how, axis=axis, role="reduce")
            out_chunks.append(final.new_chunk(
                level, "tensor", (keep_splits[k],), (k,), dtype=source.dtype
            ))
        return [(out_chunks, (tuple(keep_splits),))]


class TensorReduceChunk(Operator):
    def __init__(self, how: str, axis, role: str, **params):
        super().__init__(**params)
        self.how = how
        self.axis = axis
        self.role = role

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        if self.role == "map":
            return _PARTIAL[self.how](values[0], self.axis)
        merged = _merge(values, self.how)
        if self.role == "combine":
            return merged
        return _finalize(merged, self.how)
