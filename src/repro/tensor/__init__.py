"""``repro.tensor`` — the distributed Tensor (``xorbits.numpy`` equivalent)."""

from .core import (
    Tensor,
    arange,
    dot,
    full,
    lstsq,
    ones,
    qr,
    rand,
    randn,
    tensor_from_numpy,
    zeros,
)

__all__ = [
    "Tensor",
    "arange",
    "dot",
    "full",
    "lstsq",
    "ones",
    "qr",
    "rand",
    "randn",
    "tensor_from_numpy",
    "zeros",
]
