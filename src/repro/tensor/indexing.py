"""Tensor row slicing: ``tensor[start:stop]`` over the chunk grid."""

from __future__ import annotations

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..graph.entity import TileableData
from ..utils import cumulative_offsets


class TensorRowSlice(Operator):
    """Select the row range ``[start, stop)`` of a 1-D/2-D tensor."""

    def __init__(self, start: int, stop: int, **params):
        super().__init__(**params)
        self.start = int(start)
        self.stop = int(stop)

    def tile(self, ctx: TileContext):
        source = self.inputs[0]
        if not source.has_known_shape:
            raise TilingError("row slicing requires a known tensor shape")
        start, stop, _ = slice(self.start, self.stop).indices(source.shape[0])
        row_offsets = cumulative_offsets(source.nsplits[0])
        by_index = {c.index: c for c in source.chunks}
        n_col_blocks = len(source.nsplits[1]) if source.ndim == 2 else 1
        out_chunks = []
        out_rows = []
        out_row_pos = 0
        for i, extent in enumerate(source.nsplits[0]):
            lo, hi = row_offsets[i], row_offsets[i + 1]
            take_lo, take_hi = max(start, lo), min(stop, hi)
            if take_lo >= take_hi:
                continue
            local = slice(take_lo - lo, take_hi - lo)
            rows = take_hi - take_lo
            out_rows.append(rows)
            for j in range(n_col_blocks):
                src = by_index[(i, j) if source.ndim == 2 else (i,)]
                op = TensorRowSliceChunk(local=local)
                shape = (rows, src.shape[1]) if source.ndim == 2 else (rows,)
                index = (out_row_pos, j) if source.ndim == 2 else (out_row_pos,)
                out_chunks.append(op.new_chunk(
                    [src], "tensor", shape, index, dtype=source.dtype
                ))
            out_row_pos += 1
        if not out_chunks:
            raise TilingError(
                f"empty slice [{self.start}:{self.stop}) of {source.shape}"
            )
        nsplits = ((tuple(out_rows), source.nsplits[1])
                   if source.ndim == 2 else (tuple(out_rows),))
        return [(out_chunks, nsplits)]


class TensorRowSliceChunk(Operator):
    is_lightweight = True

    def __init__(self, local: slice, **params):
        super().__init__(**params)
        self.local = local

    def execute(self, ctx: ExecContext):
        return np.ascontiguousarray(ctx.get(self.inputs[0].key)[self.local])


def row_slice(data: TileableData, start: int, stop: int) -> TileableData:
    """Tileable-level constructor for a row-range slice."""
    if not data.has_known_shape:
        raise TilingError("row slicing requires a known tensor shape")
    lo, hi, _ = slice(start, stop).indices(data.shape[0])
    rows = max(hi - lo, 0)
    shape = (rows,) + tuple(data.shape[1:])
    op = TensorRowSlice(start=start, stop=stop)
    return op.new_tileable([data], "tensor", shape, dtype=data.dtype)
