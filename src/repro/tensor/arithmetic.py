"""Elementwise tensor operators — the operator-level fusion candidates."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..graph.entity import TileableData
from .rechunk import rechunk_chunks


class TensorElementwise(Operator):
    """Apply a NumPy ufunc-like callable per chunk (zipped over inputs)."""

    is_elementwise = True

    def __init__(self, func: Callable, out_dtype=None, **params):
        super().__init__(**params)
        self.func = func
        self.out_dtype = out_dtype

    def tile(self, ctx: TileContext):
        base = self.inputs[0]
        aligned_chunks = [list(base.chunks)]
        for other in self.inputs[1:]:
            if other.nsplits == base.nsplits:
                aligned_chunks.append(list(other.chunks))
            elif other.has_known_shape and other.shape == base.shape:
                aligned_chunks.append(rechunk_chunks(
                    other.chunks, other.nsplits, base.nsplits, other.dtype
                ))
            else:
                raise TilingError(
                    "elementwise tensor inputs must share a shape"
                )
        out_chunks = []
        by_index = list(zip(*aligned_chunks))
        for chunk_group in by_index:
            op = TensorElementwiseChunk(func=self.func)
            ref = chunk_group[0]
            out_chunks.append(op.new_chunk(
                list(chunk_group), "tensor", ref.shape, ref.index,
                dtype=self.out_dtype or ref.dtype,
            ))
        return [(out_chunks, base.nsplits)]


class TensorElementwiseChunk(Operator):
    is_elementwise = True
    fuse_expr = "call"

    def __init__(self, func: Callable, **params):
        super().__init__(**params)
        self.func = func

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        return self.func(*values)


def build_tensor_elementwise(inputs: Sequence[TileableData], func: Callable,
                             out_dtype=None) -> TileableData:
    op = TensorElementwise(func=func, out_dtype=out_dtype)
    base = inputs[0]
    return op.new_tileable(list(inputs), "tensor", base.shape,
                           dtype=out_dtype or base.dtype)


class TensorMapBlocks(Operator):
    """Apply ``func`` per full-width row block, possibly changing the
    column count (e.g. appending a bias column for regression)."""

    def __init__(self, func: Callable, out_cols: int, out_dtype=None,
                 **params):
        super().__init__(**params)
        self.func = func
        self.out_cols = int(out_cols)
        self.out_dtype = out_dtype

    def tile(self, ctx: TileContext):
        from .rechunk import rechunk_chunks

        source = self.inputs[0]
        if source.ndim != 2:
            raise TilingError("map_blocks requires a 2-D tensor")
        chunks = list(source.chunks)
        nsplits = source.nsplits
        if len(nsplits[1]) != 1:  # ensure full-width row blocks
            target = (nsplits[0], (source.shape[1],))
            chunks = rechunk_chunks(chunks, nsplits, target, source.dtype)
            nsplits = target
        out_chunks = []
        for i, chunk in enumerate(chunks):
            op = TensorMapBlocksChunk(func=self.func)
            out_chunks.append(op.new_chunk(
                [chunk], "tensor", (chunk.shape[0], self.out_cols), (i, 0),
                dtype=self.out_dtype or source.dtype,
            ))
        return [(out_chunks, (nsplits[0], (self.out_cols,)))]


class TensorMapBlocksChunk(Operator):
    def __init__(self, func: Callable, **params):
        super().__init__(**params)
        self.func = func

    def execute(self, ctx: ExecContext):
        return self.func(ctx.get(self.inputs[0].key))


def map_blocks(data: TileableData, func: Callable, out_cols: int,
               out_dtype=None) -> TileableData:
    """Tileable-level constructor for a per-row-block transform."""
    op = TensorMapBlocks(func=func, out_cols=out_cols, out_dtype=out_dtype)
    return op.new_tileable(
        [data], "tensor", (data.shape[0], out_cols),
        dtype=out_dtype or data.dtype,
    )
