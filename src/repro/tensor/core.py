"""User-facing distributed Tensor (the ``xorbits.numpy`` surface)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.session import Session, get_default_session
from ..graph.entity import TileableData
from .arithmetic import build_tensor_elementwise
from .datasource import ARange, FromArray, FullTensor, RandomTensor
from .linalg import LstSq, TSQR
from .matmul import MatMul
from .reduction import TensorReduce


class Tensor:
    """Deferred distributed n-d array with NumPy-like operators."""

    def __init__(self, data: TileableData, session: Session | None = None):
        self.data = data
        self._session = session

    @property
    def session(self) -> Session:
        return self._session if self._session is not None else get_default_session()

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    def execute(self) -> "Tensor":
        self.session.execute(self.data)
        return self

    def fetch(self) -> np.ndarray:
        if not self.session.is_materialized(self.data):
            self.execute()
        return self.session.fetch(self.data)

    def cache(self) -> "Tensor":
        """Mark results for explicit result-cache retention (see
        ``dataframe.core.Remote.cache``). Returns self."""
        self.data.cache_requested = True
        return self

    def __repr__(self) -> str:  # deferred evaluation
        return repr(self.fetch())

    # -- elementwise arithmetic ------------------------------------------------
    def _elementwise(self, func, other: Optional["Tensor"] = None) -> "Tensor":
        inputs = [self.data] + ([other.data] if other is not None else [])
        out = build_tensor_elementwise(inputs, func)
        return Tensor(out, self._session)

    def _binop(self, other, func2, func1):
        if isinstance(other, Tensor):
            return self._elementwise(func2, other)
        return self._elementwise(lambda a: func1(a, other))

    def __add__(self, other):
        return self._binop(other, lambda a, b: a + b, lambda a, o: a + o)

    def __radd__(self, other):
        return self._elementwise(lambda a: other + a)

    def __sub__(self, other):
        return self._binop(other, lambda a, b: a - b, lambda a, o: a - o)

    def __rsub__(self, other):
        return self._elementwise(lambda a: other - a)

    def __mul__(self, other):
        return self._binop(other, lambda a, b: a * b, lambda a, o: a * o)

    def __rmul__(self, other):
        return self._elementwise(lambda a: other * a)

    def __truediv__(self, other):
        return self._binop(other, lambda a, b: a / b, lambda a, o: a / o)

    def __pow__(self, other):
        return self._binop(other, lambda a, b: a ** b, lambda a, o: a ** o)

    def __neg__(self):
        return self._elementwise(lambda a: -a)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        op = MatMul()
        out = op.new_tileable(
            [self.data, other.data], "tensor",
            (self.data.shape[0], other.data.shape[1]),
            dtype=np.result_type(
                self.data.dtype or np.float64, other.data.dtype or np.float64
            ),
        )
        return Tensor(out, self._session)

    # -- reductions ----------------------------------------------------------------
    def _reduce(self, how: str, axis: Optional[int]):
        op = TensorReduce(how=how, axis=axis)
        if axis is None:
            out = op.new_tileable([self.data], "scalar", ())
        else:
            keep = self.data.shape[1 - axis]
            out = op.new_tileable([self.data], "tensor", (keep,),
                                  dtype=self.data.dtype)
        return Tensor(out, self._session)

    def sum(self, axis: Optional[int] = None):
        return self._reduce("sum", axis)

    def mean(self, axis: Optional[int] = None):
        return self._reduce("mean", axis)

    def max(self, axis: Optional[int] = None):
        return self._reduce("max", axis)

    def min(self, axis: Optional[int] = None):
        return self._reduce("min", axis)

    # -- selection / restructuring ------------------------------------------------
    def __getitem__(self, item) -> "Tensor":
        if isinstance(item, slice):
            from .indexing import row_slice

            start = item.start if item.start is not None else 0
            stop = item.stop if item.stop is not None else self.data.shape[0]
            if item.step not in (None, 1):
                raise NotImplementedError("strided tensor slices")
            return Tensor(row_slice(self.data, start, stop), self._session)
        raise TypeError(f"unsupported tensor selection {item!r}")

    def map_blocks(self, func, out_cols: int, out_dtype=None) -> "Tensor":
        """Apply ``func`` per full-width row block (may change columns)."""
        from .arithmetic import map_blocks as _map_blocks

        return Tensor(_map_blocks(self.data, func, out_cols, out_dtype),
                      self._session)

    # -- conversions ------------------------------------------------------------------
    def rechunk(self, nsplits: tuple) -> "Tensor":
        from .rechunk import rechunk as _rechunk

        return Tensor(_rechunk(self.data, nsplits), self._session)

    def to_numpy(self) -> np.ndarray:
        return self.fetch()


# ---------------------------------------------------------------------------
# constructors (the ``repro.numpy`` namespace delegates here)
# ---------------------------------------------------------------------------

def tensor_from_numpy(array: np.ndarray,
                      session: Session | None = None) -> Tensor:
    op = FromArray(np.asarray(array))
    out = op.new_tileable([], "tensor", array.shape, dtype=array.dtype)
    return Tensor(out, session)


def rand(*shape: int, seed: Optional[int] = None,
         session: Session | None = None) -> Tensor:
    op = RandomTensor(shape, seed=seed)
    out = op.new_tileable([], "tensor", shape, dtype=np.float64)
    return Tensor(out, session)


def randn(*shape: int, seed: Optional[int] = None,
          session: Session | None = None) -> Tensor:
    op = RandomTensor(shape, seed=seed, distribution="normal")
    out = op.new_tileable([], "tensor", shape, dtype=np.float64)
    return Tensor(out, session)


def ones(shape, dtype=np.float64, session: Session | None = None) -> Tensor:
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    op = FullTensor(shape, 1, dtype=dtype)
    out = op.new_tileable([], "tensor", shape, dtype=np.dtype(dtype))
    return Tensor(out, session)


def zeros(shape, dtype=np.float64, session: Session | None = None) -> Tensor:
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    op = FullTensor(shape, 0, dtype=dtype)
    out = op.new_tileable([], "tensor", shape, dtype=np.dtype(dtype))
    return Tensor(out, session)


def full(shape, fill_value, dtype=np.float64,
         session: Session | None = None) -> Tensor:
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    op = FullTensor(shape, fill_value, dtype=dtype)
    out = op.new_tileable([], "tensor", shape, dtype=np.dtype(dtype))
    return Tensor(out, session)


def arange(n: int, session: Session | None = None) -> Tensor:
    op = ARange(n)
    out = op.new_tileable([], "tensor", (n,), dtype=np.int64)
    return Tensor(out, session)


def qr(a: Tensor) -> tuple[Tensor, Tensor]:
    """Tall-and-skinny QR; chunk layout chosen by auto rechunk."""
    op = TSQR()
    n_rows, n_cols = a.data.shape
    q_data, r_data = op.new_tileables(
        [a.data],
        [
            {"kind": "tensor", "shape": (n_rows, n_cols), "dtype": np.float64},
            {"kind": "tensor", "shape": (n_cols, n_cols), "dtype": np.float64},
        ],
    )
    return Tensor(q_data, a._session), Tensor(r_data, a._session)


def lstsq(x: Tensor, y: Tensor) -> Tensor:
    """Ordinary least squares: β minimizing ‖Xβ − y‖₂."""
    op = LstSq()
    out = op.new_tileable([x.data, y.data], "tensor", (x.data.shape[1],),
                          dtype=np.float64)
    return Tensor(out, x._session)


def dot(a: Tensor, b: Tensor) -> Tensor:
    return a @ b
