"""Distributed blocked matrix multiplication."""

from __future__ import annotations

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..utils import batched
from .rechunk import rechunk_chunks


class MatMul(Operator):
    """``C = A @ B`` with 2-D block decomposition.

    ``C[i, j] = Σ_k A[i, k] @ B[k, j]``; the inner sum runs through the
    usual combine tree. ``B`` is auto-rechunked so its row splits match
    ``A``'s column splits — no user-facing chunk parameters (the paper's
    compatibility argument).
    """

    def tile(self, ctx: TileContext):
        a, b = self.inputs
        if a.ndim != 2 or b.ndim != 2:
            raise TilingError("matmul supports 2-D tensors")
        if a.shape[1] != b.shape[0]:
            raise TilingError(
                f"shape mismatch for matmul: {a.shape} @ {b.shape}"
            )
        b_chunks = list(b.chunks)
        b_nsplits = b.nsplits
        if b.nsplits[0] != a.nsplits[1]:
            target = (a.nsplits[1], b.nsplits[1])
            b_chunks = rechunk_chunks(b.chunks, b.nsplits, target, b.dtype)
            b_nsplits = target
        a_grid = {c.index: c for c in a.chunks}
        b_grid = {c.index: c for c in b_chunks}
        n_i = len(a.nsplits[0])
        n_k = len(a.nsplits[1])
        n_j = len(b_nsplits[1])
        out_chunks = []
        for i in range(n_i):
            for j in range(n_j):
                partials = []
                for k in range(n_k):
                    op = MatMulBlock()
                    partials.append(op.new_chunk(
                        [a_grid[(i, k)], b_grid[(k, j)]], "tensor",
                        (a.nsplits[0][i], b_nsplits[1][j]), (i, j),
                        dtype=np.result_type(a.dtype, b.dtype),
                    ))
                level = partials
                while len(level) > 1:
                    next_level = []
                    for batch in batched(level, ctx.config.combine_arity):
                        op = BlockSum()
                        next_level.append(op.new_chunk(
                            list(batch), "tensor",
                            (a.nsplits[0][i], b_nsplits[1][j]), (i, j),
                            dtype=np.result_type(a.dtype, b.dtype),
                        ))
                    level = next_level
                out_chunks.append(level[0])
        return [(out_chunks, (a.nsplits[0], b_nsplits[1]))]


class MatMulBlock(Operator):
    def execute(self, ctx: ExecContext):
        left = ctx.get(self.inputs[0].key)
        right = ctx.get(self.inputs[1].key)
        return left @ right


class BlockSum(Operator):
    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        out = values[0]
        for value in values[1:]:
            out = out + value
        return out
