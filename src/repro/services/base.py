"""Base class for actors that front an existing service object."""

from __future__ import annotations

from ..actors import Actor


class ServiceActor(Actor):
    """An actor exposing an allowlisted slice of a wrapped service.

    Message delivery resolves methods with ``getattr``, so delegating
    through ``__getattr__`` gives every allowlisted service method an
    actor-plane entry point without forwarding boilerplate.  Anything
    not in :attr:`service_methods` is unreachable through a ref — the
    allowlist *is* the service's message interface.
    """

    #: method names remotable on this service.
    service_methods: frozenset[str] = frozenset()

    def __init__(self, service):
        super().__init__()
        self._service = service

    def __getattr__(self, name: str):
        if name in type(self).service_methods:
            return getattr(self._service, name)
        raise AttributeError(
            f"{type(self).__name__} exposes no method {name!r}"
        )

    def backend(self):
        """The wrapped service object (tests and diagnostics only)."""
        return self._service
