"""Supervisor/worker service actors (the Xoscar service plane).

The paper's Section III-B architecture runs every engine concern as a
service actor on the supervisor or on a worker:

=====================  ============================================
supervisor actor       wraps
=====================  ============================================
``MetaActor``          :class:`~repro.core.meta.MetaService`
``StorageManagerActor`` :class:`~repro.storage.service.StorageService`
``ShuffleActor``       :class:`~repro.storage.shuffle.ShuffleManager`
``SchedulingActor``    :class:`~repro.services.scheduling.SchedulingService`
``LifecycleActor``     :class:`~repro.services.lifecycle.LifecycleService`
``SessionActor``       one run's executor + tiling engine
=====================  ============================================

=====================  ============================================
worker/band actor      wraps
=====================  ============================================
``StorageActor``       :class:`~repro.storage.worker.WorkerStorage`
``SubtaskRunnerActor`` :class:`~repro.services.runner.SubtaskRunner`
=====================  ============================================

Cross-service calls go through ``ActorRef``s, so the actor system's
``MessageLog`` is a faithful RPC trace of the engine.  Deployment lives
in :mod:`repro.services.deploy`.
"""

from __future__ import annotations

from .base import ServiceActor

#: supervisor-side service actor uids.
META_UID = "service/meta"
STORAGE_UID = "service/storage"
SHUFFLE_UID = "service/shuffle"
SCHEDULING_UID = "service/scheduling"
LIFECYCLE_UID = "service/lifecycle"
CACHE_UID = "service/cache"


def worker_storage_uid(worker: str) -> str:
    """Uid of the per-worker storage actor (lives on the worker's pool)."""
    return f"worker/{worker}/storage"


def runner_uid(band: str) -> str:
    """Uid of the per-band subtask runner actor."""
    return f"runner/{band}"


def session_actor_uid(session_id: str) -> str:
    return f"{session_id}/actor"


__all__ = [
    "ServiceActor",
    "META_UID",
    "STORAGE_UID",
    "SHUFFLE_UID",
    "SCHEDULING_UID",
    "LIFECYCLE_UID",
    "CACHE_UID",
    "worker_storage_uid",
    "runner_uid",
    "session_actor_uid",
]
