"""The scheduling service: placement, admission, and the tenant turnstile.

Combines the :class:`~repro.core.scheduler.Scheduler` (band placement
and load accounting) with the :class:`~repro.core.memory_control`
subsystem (footprint estimator, admission ledger, degraded-worker state,
dispatch gates) behind one flat message interface — what the paper's
supervisor-side scheduling service owns.  The
:class:`GraphExecutor` talks to this service (directly or through a
:class:`SchedulingActor` ref) instead of reaching into scheduler or
pressure internals.

On a shared cluster the service additionally owns the **fair-share
turnstile** (:class:`FairShareQueue`): concurrent sessions serialize
their *stage accounting* through it in weighted stride order, so N
tenant threads interleave at stage granularity — a weight-2 tenant gets
stage turns twice as often as a weight-1 tenant — while each stage's
deterministic accounting walk runs unshared.
"""

from __future__ import annotations

import threading

from ..core.memory_control import MemoryPressure
from ..core.scheduler import Scheduler
from .base import ServiceActor


class FairShareQueue:
    """Weighted fair-share turnstile over shared-plane stage grants.

    Stride scheduling: each tenant carries a *pass* value advanced by
    ``1 / weight`` per granted turn; among waiting tenants the lowest
    pass (ties broken by arrival order) goes next. With ``fair_share``
    off, grants degrade to plain FIFO arrival order.

    The holder may re-enter (``acquire`` is reentrant per tenant with a
    depth count) — fetch-time recovery runs ``execute`` inside an
    already-held turn.
    """

    def __init__(self, fair_share: bool = True):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._fair_share = fair_share
        #: tenant -> (weight, pass value)
        self._tenants: dict[str, list[float]] = {}
        self._global_pass = 0.0
        self._arrivals = 0
        #: tenant -> arrival seq, set while waiting.
        self._waiting: dict[str, int] = {}
        self._holder: str | None = None
        self._depth = 0
        self.turns_granted: dict[str, int] = {}

    def register(self, session: str, weight: float = 1.0) -> None:
        with self._lock:
            weight = max(float(weight), 1e-9)
            # late joiners start at the current pass front, not at zero —
            # otherwise a fresh tenant would monopolize the turnstile
            # until it caught up with everyone's accumulated pass.
            self._tenants[session] = [weight, self._global_pass]

    def unregister(self, session: str) -> None:
        with self._lock:
            self._tenants.pop(session, None)
            self._waiting.pop(session, None)
            self._cond.notify_all()

    def _next_in_line(self) -> str | None:
        if not self._waiting:
            return None
        if not self._fair_share:
            return min(self._waiting, key=self._waiting.__getitem__)
        return min(
            self._waiting,
            key=lambda s: (self._tenants.get(s, [1.0, 0.0])[1],
                           self._waiting[s]),
        )

    def acquire(self, session: str) -> None:
        """Block until it is ``session``'s turn; reentrant for the holder."""
        with self._lock:
            if self._holder == session:
                self._depth += 1
                return
            self._waiting[session] = self._arrivals
            self._arrivals += 1
            self._cond.notify_all()
            while not (self._holder is None
                       and self._next_in_line() == session):
                self._cond.wait()
            del self._waiting[session]
            self._holder = session
            self._depth = 1
            entry = self._tenants.get(session)
            if entry is not None:
                entry[1] += 1.0 / entry[0]
                self._global_pass = max(self._global_pass, entry[1])
            self.turns_granted[session] = (
                self.turns_granted.get(session, 0) + 1)

    def release(self, session: str) -> None:
        with self._lock:
            if self._holder != session:
                return
            self._depth -= 1
            if self._depth <= 0:
                self._holder = None
                self._depth = 0
                self._cond.notify_all()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tenants": {
                    s: {"weight": w, "pass": p}
                    for s, (w, p) in self._tenants.items()
                },
                "waiting": len(self._waiting),
                "holder": self._holder,
                "turns_granted": dict(self.turns_granted),
                "fair_share": self._fair_share,
            }


class SchedulingService:
    """Band placement + band-load accounting + memory admission."""

    def __init__(self, scheduler: Scheduler, pressure: MemoryPressure,
                 fair_share: bool = True):
        self._scheduler = scheduler
        self._pressure = pressure
        self._turnstile = FairShareQueue(fair_share)

    @classmethod
    def create(cls, cluster, config, meta, storage,
               scheduler: Scheduler | None = None) -> "SchedulingService":
        """Assemble the service over ``meta``/``storage`` handles.

        The handles may be plain services or actor refs — the pressure
        subsystem only calls methods on them.
        """
        if scheduler is None:
            scheduler = Scheduler(cluster, config)
        return cls(scheduler, MemoryPressure(config, cluster, meta, storage),
                   fair_share=getattr(config, "fair_share", True))

    # -- placement ---------------------------------------------------------
    def assign(self, subtask_graph, input_nbytes) -> None:
        self._scheduler.assign(subtask_graph, input_nbytes)

    def note_completed(self, subtask) -> None:
        self._scheduler.note_completed(subtask)

    def reassign(self, subtask, band: str) -> None:
        self._scheduler.reassign(subtask, band)

    def record_chunk(self, key: str, band: str) -> None:
        self._scheduler.record_chunk(key, band)

    def forget_chunk(self, key: str) -> None:
        self._scheduler.forget_chunk(key)

    # -- fair-share turnstile ----------------------------------------------
    def register_tenant(self, session: str, weight: float = 1.0) -> None:
        self._turnstile.register(session, weight)

    def unregister_tenant(self, session: str) -> None:
        self._turnstile.unregister(session)
        self._pressure.drop_session(session)

    def acquire_turn(self, session: str) -> None:
        self._turnstile.acquire(session)

    def release_turn(self, session: str) -> None:
        self._turnstile.release(session)

    def fair_share_snapshot(self) -> dict:
        return self._turnstile.snapshot()

    # -- memory admission --------------------------------------------------
    def begin_stage(self, base: float | None = None) -> None:
        self._pressure.admission.begin_stage(base)

    def admit(self, worker: str, request: int, ready_time: float,
              used: int, limit: int, allow_wait: bool = True,
              exclusive: bool = False, session: str = "",
              quota: int | None = None):
        return self._pressure.admission.admit(
            worker, request, ready_time, used, limit,
            allow_wait=allow_wait, exclusive=exclusive,
            session=session, quota=quota,
        )

    def commit_grant(self, decision, end: float) -> None:
        self._pressure.admission.commit(decision, end)

    def estimate(self, subtask) -> int:
        return self._pressure.estimator.estimate(subtask)

    def observe(self, subtask, sizes) -> None:
        self._pressure.estimator.observe(subtask, sizes)

    # -- per-subtask composites --------------------------------------------
    def admit_subtask(self, subtask, worker: str, working_set: int,
                      ready_time: float, used: int, limit: int,
                      allow_wait: bool = True, session: str = "",
                      quota: int | None = None):
        """One message for the executor's whole admission round-trip.

        Folds estimate → degraded-check → admit into a single call;
        returns ``(decision, exclusive)``.  The ledger request is the
        estimated footprint floored by the measured working set, exactly
        as the three separate calls computed it.
        """
        request = max(working_set, self._pressure.estimator.estimate(subtask))
        exclusive = self._pressure.is_degraded(worker, session)
        decision = self._pressure.admission.admit(
            worker, request, ready_time, used, limit,
            allow_wait=allow_wait, exclusive=exclusive,
            session=session, quota=quota,
        )
        return decision, exclusive

    def finish_subtask(self, decision, end: float, subtask, sizes) -> None:
        """One message for the post-subtask scheduling epilogue.

        Commits the admission grant through ``end``, feeds the measured
        sizes to the footprint estimator, and releases the subtask's
        band-load claim — the same three calls, same order, one message.
        """
        self._pressure.admission.commit(decision, end)
        self._pressure.estimator.observe(subtask, sizes)
        self._scheduler.note_completed(subtask)

    # -- pressure state ----------------------------------------------------
    def is_degraded(self, worker: str, session: str = "") -> bool:
        return self._pressure.is_degraded(worker, session)

    def degrade(self, worker: str, session: str = "") -> None:
        self._pressure.degrade(worker, session)

    def freest_worker(self) -> str:
        return self._pressure.freest_worker()

    def dispatch_gate(self, order, session: str = ""):
        return self._pressure.dispatch_gate(order, session)

    # -- introspection -----------------------------------------------------
    def memory_pressure(self) -> MemoryPressure:
        """The pressure subsystem (diagnostics and invariant checks)."""
        return self._pressure

    def scheduler_backend(self) -> Scheduler:
        """The underlying placement scheduler (tests only)."""
        return self._scheduler


class SchedulingActor(ServiceActor):
    """Fronts a :class:`SchedulingService` on the supervisor pool."""

    service_methods = frozenset({
        "assign",
        "note_completed",
        "reassign",
        "record_chunk",
        "forget_chunk",
        "register_tenant",
        "unregister_tenant",
        "acquire_turn",
        "release_turn",
        "fair_share_snapshot",
        "begin_stage",
        "admit",
        "admit_subtask",
        "finish_subtask",
        "commit_grant",
        "estimate",
        "observe",
        "is_degraded",
        "degrade",
        "freest_worker",
        "dispatch_gate",
        "memory_pressure",
        "scheduler_backend",
    })
