"""The scheduling service: placement plus memory-aware admission.

Combines the :class:`~repro.core.scheduler.Scheduler` (band placement
and load accounting) with the :class:`~repro.core.memory_control`
subsystem (footprint estimator, admission ledger, degraded-worker state,
dispatch gates) behind one flat message interface — what the paper's
supervisor-side scheduling service owns.  The
:class:`GraphExecutor` talks to this service (directly or through a
:class:`SchedulingActor` ref) instead of reaching into scheduler or
pressure internals.
"""

from __future__ import annotations

from ..core.memory_control import MemoryPressure
from ..core.scheduler import Scheduler
from .base import ServiceActor


class SchedulingService:
    """Band placement + band-load accounting + memory admission."""

    def __init__(self, scheduler: Scheduler, pressure: MemoryPressure):
        self._scheduler = scheduler
        self._pressure = pressure

    @classmethod
    def create(cls, cluster, config, meta, storage,
               scheduler: Scheduler | None = None) -> "SchedulingService":
        """Assemble the service over ``meta``/``storage`` handles.

        The handles may be plain services or actor refs — the pressure
        subsystem only calls methods on them.
        """
        if scheduler is None:
            scheduler = Scheduler(cluster, config)
        return cls(scheduler, MemoryPressure(config, cluster, meta, storage))

    # -- placement ---------------------------------------------------------
    def assign(self, subtask_graph, input_nbytes) -> None:
        self._scheduler.assign(subtask_graph, input_nbytes)

    def note_completed(self, subtask) -> None:
        self._scheduler.note_completed(subtask)

    def reassign(self, subtask, band: str) -> None:
        self._scheduler.reassign(subtask, band)

    def record_chunk(self, key: str, band: str) -> None:
        self._scheduler.record_chunk(key, band)

    def forget_chunk(self, key: str) -> None:
        self._scheduler.forget_chunk(key)

    # -- memory admission --------------------------------------------------
    def begin_stage(self) -> None:
        self._pressure.admission.begin_stage()

    def admit(self, worker: str, request: int, ready_time: float,
              used: int, limit: int, allow_wait: bool = True,
              exclusive: bool = False):
        return self._pressure.admission.admit(
            worker, request, ready_time, used, limit,
            allow_wait=allow_wait, exclusive=exclusive,
        )

    def commit_grant(self, decision, end: float) -> None:
        self._pressure.admission.commit(decision, end)

    def estimate(self, subtask) -> int:
        return self._pressure.estimator.estimate(subtask)

    def observe(self, subtask, sizes) -> None:
        self._pressure.estimator.observe(subtask, sizes)

    # -- per-subtask composites --------------------------------------------
    def admit_subtask(self, subtask, worker: str, working_set: int,
                      ready_time: float, used: int, limit: int,
                      allow_wait: bool = True):
        """One message for the executor's whole admission round-trip.

        Folds estimate → degraded-check → admit into a single call;
        returns ``(decision, exclusive)``.  The ledger request is the
        estimated footprint floored by the measured working set, exactly
        as the three separate calls computed it.
        """
        request = max(working_set, self._pressure.estimator.estimate(subtask))
        exclusive = self._pressure.is_degraded(worker)
        decision = self._pressure.admission.admit(
            worker, request, ready_time, used, limit,
            allow_wait=allow_wait, exclusive=exclusive,
        )
        return decision, exclusive

    def finish_subtask(self, decision, end: float, subtask, sizes) -> None:
        """One message for the post-subtask scheduling epilogue.

        Commits the admission grant through ``end``, feeds the measured
        sizes to the footprint estimator, and releases the subtask's
        band-load claim — the same three calls, same order, one message.
        """
        self._pressure.admission.commit(decision, end)
        self._pressure.estimator.observe(subtask, sizes)
        self._scheduler.note_completed(subtask)

    # -- pressure state ----------------------------------------------------
    def is_degraded(self, worker: str) -> bool:
        return self._pressure.is_degraded(worker)

    def degrade(self, worker: str) -> None:
        self._pressure.degrade(worker)

    def freest_worker(self) -> str:
        return self._pressure.freest_worker()

    def dispatch_gate(self, order):
        return self._pressure.dispatch_gate(order)

    # -- introspection -----------------------------------------------------
    def memory_pressure(self) -> MemoryPressure:
        """The pressure subsystem (diagnostics and invariant checks)."""
        return self._pressure

    def scheduler_backend(self) -> Scheduler:
        """The underlying placement scheduler (tests only)."""
        return self._scheduler


class SchedulingActor(ServiceActor):
    """Fronts a :class:`SchedulingService` on the supervisor pool."""

    service_methods = frozenset({
        "assign",
        "note_completed",
        "reassign",
        "record_chunk",
        "forget_chunk",
        "begin_stage",
        "admit",
        "admit_subtask",
        "finish_subtask",
        "commit_grant",
        "estimate",
        "observe",
        "is_degraded",
        "degrade",
        "freest_worker",
        "dispatch_gate",
        "memory_pressure",
        "scheduler_backend",
    })
