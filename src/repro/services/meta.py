"""Supervisor-side metadata service actor."""

from __future__ import annotations

from .base import ServiceActor


class MetaActor(ServiceActor):
    """Fronts the :class:`~repro.core.meta.MetaService` chunk-meta store."""

    service_methods = frozenset({
        "set",
        "set_from_value",
        "set_from_values",
        "get",
        "get_many",
        "require",
        "has",
        "update_extra",
        "delete",
        "count",
    })
