"""Per-band subtask runners: the compute phase as a worker-side service.

Each band gets one :class:`SubtaskRunner` (fronted by a
:class:`SubtaskRunnerActor` on the band's worker pool).  A runner only
ever executes kernels against real values — it touches no shared
service state besides accounting-free storage reads — so the executor's
accounting walk stays the single writer of every simulated number, in
all execution modes:

- parallel mode: the band dispatcher calls :meth:`compute` from pool
  threads as dependencies resolve (one logical slot per band); with
  ``config.execution_mode == "process"`` the kernels additionally hop
  to a pool worker process (``repro.core.procpool``) so pure-Python
  kernels run out-of-GIL;
- serial mode: the accounting walk calls :meth:`precompute` for each
  subtask just before accounting it, so kernel execution goes through
  the same runner interface (and shows up in the message trace) while
  the walk consumes the precomputed record exactly like the parallel
  path does.

:func:`run_subtask_kernels` is the one shared kernel loop behind all
three paths — what the serial walk, the band-runner threads and the
pool worker processes execute is literally the same code.
"""

from __future__ import annotations

from typing import Any

from ..core.dispatch import SubtaskComputation
from ..core.operator import ExecContext
from ..core.opfusion import compile_step, plan_subtask
from ..engine.base import compiled_fusion_enabled, engine_of, persist_result
from .base import ServiceActor


def run_subtask_kernels(subtask, inputs: dict[str, Any],
                        config) -> SubtaskComputation:
    """Run one subtask's kernels against ``inputs`` (pure compute).

    No storage/meta/clock/memory effects — those happen later, in the
    accounting phase on the dispatching thread.  Fused steps that the
    compiled-fusion codegen accepts execute as a single generated
    evaluator: only the step's final result is recorded, intermediates
    live and die as locals of the compiled function.
    """
    engine = engine_of(config)
    env: dict[str, Any] = dict(inputs)
    steps = plan_subtask(subtask, enable=config.operator_fusion)
    executed_ops: set[int] = set()
    op_results: dict[int, Any] = {}
    op_extra: dict[int, dict[str, dict]] = {}
    # compiled evaluators run against raw env values, so fusion codegen
    # is gated on the engine (row-only); the gate is the shared
    # compiled_fusion_enabled so every runner and the accounting walk
    # take the same branch for one config.
    use_compiled = compiled_fusion_enabled(config)
    for step in steps:
        compiled = compile_step(step) if use_compiled else None
        if compiled is not None:
            result = compiled.run(env)
            env[compiled.output_key] = result
            final_op = compiled.final_op
            executed_ops.add(id(final_op))
            op_results[id(final_op)] = result
            op_extra[id(final_op)] = {}
            continue
        for chunk in step:
            op = chunk.op
            if op is None or id(op) in executed_ops:
                continue
            executed_ops.add(id(op))
            ctx = ExecContext(env, config)
            # results enter the env in physical (engine-encoded) form:
            # downstream ctx.get decodes, storage/wire/sizeof see the
            # encoded value.
            result = persist_result(engine, op, op.execute(ctx))
            if isinstance(result, dict) and result and all(
                k in {o.key for o in op.outputs} for k in result
            ):
                env.update(result)
            else:
                env[op.outputs[0].key] = result
            op_results[id(op)] = result
            op_extra[id(op)] = {
                key: dict(extra) for key, extra in ctx.extra_meta.items()
            }
    outputs = {
        key: env[key] for key in subtask.output_keys if key in env
    }
    return SubtaskComputation(op_results, op_extra, outputs)


class SubtaskRunner:
    """Kernel execution for one band."""

    def __init__(self, band: str, storage, config, procpool=None):
        self.band = band
        self._storage = storage
        self._config = config
        #: optional :class:`~repro.core.procpool.ProcPoolClient` shared
        #: by every runner of the cluster (process execution mode).
        self._procpool = procpool

    def compute(self, subtask, inputs: dict[str, Any]) -> SubtaskComputation:
        """Run the subtask's kernels against ``inputs``.

        May run on a band-runner pool thread.  In process mode the
        kernels cross into a pool worker process; a dead worker surfaces
        as :class:`~repro.errors.WorkerProcessCrash`, which the
        accounting walk treats like any other retryable compute fault.
        """
        if (self._procpool is not None
                and self._config.execution_mode == "process"):
            return self._procpool.run_subtask(subtask, inputs, self._config)
        return run_subtask_kernels(subtask, inputs, self._config)

    def precompute(self, subtask) -> SubtaskComputation | None:
        """Serial-mode entry: gather inputs and compute, or bail to None.

        Inputs come from one batched accounting-free read; the charged
        ``get`` for the same keys happens in the accounting phase.
        *Any* failure — a missing input the retry machinery will
        recover, or a kernel error — returns ``None`` so the accounting
        walk re-runs the kernels inline and fails (or retries) at
        exactly the point the pre-service engine did.  Serial stages
        stay in-process even in process mode: they exist because the
        graph was too small to amortize dispatch, let alone IPC.
        """
        try:
            inputs = self._storage.peek_values(list(subtask.input_keys))
            return run_subtask_kernels(subtask, inputs, self._config)
        except Exception:
            return None


class SubtaskRunnerActor(ServiceActor):
    """Fronts one band's :class:`SubtaskRunner` on its worker's pool."""

    service_methods = frozenset({"compute", "precompute"})
