"""Per-band subtask runners: the compute phase as a worker-side service.

Each band gets one :class:`SubtaskRunner` (fronted by a
:class:`SubtaskRunnerActor` on the band's worker pool).  A runner only
ever executes kernels against real values — it touches no shared
service state besides accounting-free storage reads — so the executor's
accounting walk stays the single writer of every simulated number, in
both serial and parallel modes:

- parallel mode: the band dispatcher calls :meth:`compute` from pool
  threads as dependencies resolve (one logical slot per band);
- serial mode: the accounting walk calls :meth:`precompute` for each
  subtask just before accounting it, so kernel execution goes through
  the same runner interface (and shows up in the message trace) while
  the walk consumes the precomputed record exactly like the parallel
  path does.
"""

from __future__ import annotations

from typing import Any

from ..core.dispatch import SubtaskComputation
from ..core.operator import ExecContext
from ..core.opfusion import plan_subtask
from .base import ServiceActor


class SubtaskRunner:
    """Kernel execution for one band."""

    def __init__(self, band: str, storage, config):
        self.band = band
        self._storage = storage
        self._config = config

    def compute(self, subtask, inputs: dict[str, Any]) -> SubtaskComputation:
        """Run the subtask's kernels against ``inputs``.

        May run on a band-runner pool thread.  Pure with respect to the
        service plane: all storage/meta/clock/memory effects happen
        later, in the accounting phase on the dispatching thread.
        """
        env: dict[str, Any] = dict(inputs)
        steps = plan_subtask(subtask, enable=self._config.operator_fusion)
        executed_ops: set[int] = set()
        op_results: dict[int, Any] = {}
        op_extra: dict[int, dict[str, dict]] = {}
        for step in steps:
            for chunk in step:
                op = chunk.op
                if op is None or id(op) in executed_ops:
                    continue
                executed_ops.add(id(op))
                ctx = ExecContext(env, self._config)
                result = op.execute(ctx)
                if isinstance(result, dict) and result and all(
                    k in {o.key for o in op.outputs} for k in result
                ):
                    env.update(result)
                else:
                    env[op.outputs[0].key] = result
                op_results[id(op)] = result
                op_extra[id(op)] = {
                    key: dict(extra) for key, extra in ctx.extra_meta.items()
                }
        outputs = {
            key: env[key] for key in subtask.output_keys if key in env
        }
        return SubtaskComputation(op_results, op_extra, outputs)

    def precompute(self, subtask) -> SubtaskComputation | None:
        """Serial-mode entry: gather inputs and compute, or bail to None.

        Inputs come from accounting-free reads; the charged ``get`` for
        the same keys happens in the accounting phase.  *Any* failure —
        a missing input the retry machinery will recover, or a kernel
        error — returns ``None`` so the accounting walk re-runs the
        kernels inline and fails (or retries) at exactly the point the
        pre-service engine did.
        """
        try:
            inputs = {
                key: self._storage.peek_value(key)
                for key in subtask.input_keys
            }
            return self.compute(subtask, inputs)
        except Exception:
            return None


class SubtaskRunnerActor(ServiceActor):
    """Fronts one band's :class:`SubtaskRunner` on its worker's pool."""

    service_methods = frozenset({"compute", "precompute"})
