"""Supervisor-side shuffle index actor."""

from __future__ import annotations

from .base import ServiceActor


class ShuffleActor(ServiceActor):
    """Fronts the :class:`~repro.storage.shuffle.ShuffleManager` index.

    Mapper registration, reducer gathers and index lifecycle all go
    through this actor, so the shuffle data plane's storage reads show
    up as ``service/shuffle -> service/storage`` messages in the trace.
    """

    service_methods = frozenset({
        "register_partition",
        "register_partitions",
        "write_partition",
        "mapper_count",
        "gather",
        "forget_key",
        "forget_keys",
        "cleanup",
        "live_bytes",
        "shuffle_bytes_total",
        "gather_scanned_count",
        "gather_fetch_count",
        "reregistered_count",
        "index_size",
    })
