"""Service deployment: create every engine service as an actor.

One call builds the paper's supervisor/worker service plane on an
existing cluster's actor pools and returns the refs the session client
and executor hold.  All service objects live *inside* their actors;
callers get ``ActorRef``s only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..cluster.cluster import SUPERVISOR_ADDRESS, ClusterState
from ..config import Config
from ..core.meta import MetaService
from ..storage.service import StorageService
from ..storage.shuffle import ShuffleManager
from . import (
    CACHE_UID,
    LIFECYCLE_UID,
    META_UID,
    SCHEDULING_UID,
    SHUFFLE_UID,
    STORAGE_UID,
    runner_uid,
    worker_storage_uid,
)
from .cache import CacheActor, ResultCacheService
from .lifecycle import LifecycleActor, LifecycleService
from .meta import MetaActor
from .runner import SubtaskRunner, SubtaskRunnerActor
from .scheduling import SchedulingActor, SchedulingService
from .shuffle import ShuffleActor
from .storage import StorageActor, StorageManagerActor


@dataclass
class ServiceHandles:
    """Actor refs to one session's deployed services."""

    meta: Any = None
    storage: Any = None
    scheduling: Any = None
    lifecycle: Any = None
    shuffle: Any = None
    cache: Any = None
    #: band name -> ref of the band's subtask runner actor.
    runners: dict[str, Any] = field(default_factory=dict)


def deploy_cluster_services(cluster: ClusterState,
                            config: Config | None = None) -> ServiceHandles:
    """The cluster's service plane, deployed once and memoized.

    The services are cluster-scoped singletons: the first session on a
    cluster stands them up (with that session's config), every later
    session attaches to the same handles.  This is what makes N
    concurrent sessions share one Meta/Storage/Shuffle/Scheduling/
    Cache/Lifecycle plane instead of each owning a private copy.
    """
    with cluster.services_lock:
        if cluster.services is None:
            cluster.services = deploy_services(
                cluster, config if config is not None else cluster.config)
        return cluster.services


def deploy_services(cluster: ClusterState, config: Config) -> ServiceHandles:
    """Stand up the full service plane on ``cluster``'s pools.

    Supervisor pool: meta, storage router, shuffle index, scheduling,
    lifecycle.  Worker pools: one storage actor per worker (owning that
    worker's tiers) and one subtask runner actor per band.
    """
    system = cluster.actor_system

    meta = system.create_actor(
        SUPERVISOR_ADDRESS, MetaActor, MetaService(), uid=META_UID,
    )

    router = StorageService(cluster, config)
    worker_refs = {
        worker.name: system.create_actor(
            worker.name, StorageActor, router.worker_unit(worker.name),
            uid=worker_storage_uid(worker.name),
        )
        for worker in cluster.workers
    }
    router.use_worker_handles(worker_refs)
    storage = system.create_actor(
        SUPERVISOR_ADDRESS, StorageManagerActor, router, uid=STORAGE_UID,
    )

    shuffle = system.create_actor(
        SUPERVISOR_ADDRESS, ShuffleActor, ShuffleManager(storage),
        uid=SHUFFLE_UID,
    )

    scheduling = system.create_actor(
        SUPERVISOR_ADDRESS, SchedulingActor,
        SchedulingService.create(cluster, config, meta, storage),
        uid=SCHEDULING_UID,
    )

    cache = system.create_actor(
        SUPERVISOR_ADDRESS, CacheActor,
        ResultCacheService(storage, config), uid=CACHE_UID,
    )

    lifecycle = system.create_actor(
        SUPERVISOR_ADDRESS, LifecycleActor,
        LifecycleService(storage, shuffle, config, cache=cache),
        uid=LIFECYCLE_UID,
    )

    procpool = (
        cluster.procpool_client() if config.execution_mode == "process"
        else None
    )
    runners = {
        band.name: system.create_actor(
            band.worker, SubtaskRunnerActor,
            SubtaskRunner(band.name, storage, config, procpool=procpool),
            uid=runner_uid(band.name),
        )
        for band in cluster.bands
    }

    handles = ServiceHandles(
        meta=meta, storage=storage, scheduling=scheduling,
        lifecycle=lifecycle, shuffle=shuffle, cache=cache, runners=runners,
    )
    cluster.services = handles
    return handles
