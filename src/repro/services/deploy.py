"""Service deployment: create every engine service as an actor.

One call builds the paper's supervisor/worker service plane on an
existing cluster's actor pools and returns the refs the session client
and executor hold.  All service objects live *inside* their actors;
callers get ``ActorRef``s only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..actors.message import MessageChaos
from ..cluster.cluster import SUPERVISOR_ADDRESS, ClusterState
from ..config import Config
from ..core.meta import MetaService
from ..core.supervision import SupervisionPlane
from ..storage.service import StorageService
from ..storage.shuffle import ShuffleManager
from . import (
    CACHE_UID,
    LIFECYCLE_UID,
    META_UID,
    SCHEDULING_UID,
    SHUFFLE_UID,
    STORAGE_UID,
    runner_uid,
    worker_storage_uid,
)
from .cache import CacheActor, ResultCacheService
from .lifecycle import LifecycleActor, LifecycleService
from .meta import MetaActor
from .runner import SubtaskRunner, SubtaskRunnerActor
from .scheduling import SchedulingActor, SchedulingService
from .shuffle import ShuffleActor
from .storage import StorageActor, StorageManagerActor


@dataclass
class ServiceHandles:
    """Actor refs to one session's deployed services."""

    meta: Any = None
    storage: Any = None
    scheduling: Any = None
    lifecycle: Any = None
    shuffle: Any = None
    cache: Any = None
    #: band name -> ref of the band's subtask runner actor.
    runners: dict[str, Any] = field(default_factory=dict)


def deploy_cluster_services(cluster: ClusterState,
                            config: Config | None = None) -> ServiceHandles:
    """The cluster's service plane, deployed once and memoized.

    The services are cluster-scoped singletons: the first session on a
    cluster stands them up (with that session's config), every later
    session attaches to the same handles.  This is what makes N
    concurrent sessions share one Meta/Storage/Shuffle/Scheduling/
    Cache/Lifecycle plane instead of each owning a private copy.
    """
    with cluster.services_lock:
        if cluster.services is None:
            cluster.services = deploy_services(
                cluster, config if config is not None else cluster.config)
        return cluster.services


def deploy_services(cluster: ClusterState, config: Config) -> ServiceHandles:
    """Stand up the full service plane on ``cluster``'s pools.

    Supervisor pool: meta, storage router, shuffle index, scheduling,
    lifecycle.  Worker pools: one storage actor per worker (owning that
    worker's tiers) and one subtask runner actor per band.
    """
    system = cluster.actor_system

    # the supervision plane comes up first so every actor created below
    # can register its respawn factory. Message chaos is installed on
    # the system too (zero rates = off, the default).
    plane = SupervisionPlane(system, config)
    cluster.supervision = plane
    system.supervisor = plane.supervisor
    system.chaos = MessageChaos(config.message_faults)

    meta_service = MetaService()
    meta = system.create_actor(
        SUPERVISOR_ADDRESS, MetaActor, meta_service, uid=META_UID,
    )
    plane.register_service(SUPERVISOR_ADDRESS, META_UID,
                           lambda: (MetaActor, (meta_service,), {}))

    router = StorageService(cluster, config)
    # plain worker units captured *before* the router swaps in actor
    # refs: a respawned StorageActor re-attaches to the same durable
    # unit, so tiers, pins and spill state survive the actor's death.
    units = {
        worker.name: router.worker_unit(worker.name)
        for worker in cluster.workers
    }
    worker_refs = {}
    for worker in cluster.workers:
        uid = worker_storage_uid(worker.name)
        worker_refs[worker.name] = system.create_actor(
            worker.name, StorageActor, units[worker.name], uid=uid,
        )
        plane.register_service(
            worker.name, uid,
            lambda unit=units[worker.name]: (StorageActor, (unit,), {}))
    router.use_worker_handles(worker_refs)
    storage = system.create_actor(
        SUPERVISOR_ADDRESS, StorageManagerActor, router, uid=STORAGE_UID,
    )
    plane.register_service(SUPERVISOR_ADDRESS, STORAGE_UID,
                           lambda: (StorageManagerActor, (router,), {}))

    shuffle_manager = ShuffleManager(storage)
    shuffle = system.create_actor(
        SUPERVISOR_ADDRESS, ShuffleActor, shuffle_manager, uid=SHUFFLE_UID,
    )
    plane.register_service(SUPERVISOR_ADDRESS, SHUFFLE_UID,
                           lambda: (ShuffleActor, (shuffle_manager,), {}))

    scheduling_service = SchedulingService.create(cluster, config, meta,
                                                  storage)
    scheduling = system.create_actor(
        SUPERVISOR_ADDRESS, SchedulingActor, scheduling_service,
        uid=SCHEDULING_UID,
    )
    plane.register_service(
        SUPERVISOR_ADDRESS, SCHEDULING_UID,
        lambda: (SchedulingActor, (scheduling_service,), {}))

    cache_service = ResultCacheService(storage, config)
    cache = system.create_actor(
        SUPERVISOR_ADDRESS, CacheActor, cache_service, uid=CACHE_UID,
    )
    plane.register_service(SUPERVISOR_ADDRESS, CACHE_UID,
                           lambda: (CacheActor, (cache_service,), {}))

    lifecycle_service = LifecycleService(storage, shuffle, config,
                                         cache=cache)
    lifecycle = system.create_actor(
        SUPERVISOR_ADDRESS, LifecycleActor, lifecycle_service,
        uid=LIFECYCLE_UID,
    )
    plane.register_service(
        SUPERVISOR_ADDRESS, LIFECYCLE_UID,
        lambda: (LifecycleActor, (lifecycle_service,), {}))

    procpool = (
        cluster.procpool_client() if config.execution_mode == "process"
        else None
    )
    runners = {}
    for band in cluster.bands:
        uid = runner_uid(band.name)
        runners[band.name] = system.create_actor(
            band.worker, SubtaskRunnerActor,
            SubtaskRunner(band.name, storage, config, procpool=procpool),
            uid=uid,
        )
        # runners are stateless: the factory builds a *fresh* one — any
        # compute lost with the old actor re-runs through the executor's
        # inline retry, and lost chunks replay via lifecycle lineage.
        plane.register_runner(
            band.name, band.worker, uid,
            lambda name=band.name: (
                SubtaskRunnerActor,
                (SubtaskRunner(name, storage, config, procpool=procpool),),
                {},
            ))

    handles = ServiceHandles(
        meta=meta, storage=storage, scheduling=scheduling,
        lifecycle=lifecycle, shuffle=shuffle, cache=cache, runners=runners,
    )
    cluster.services = handles
    return handles
