"""Storage actors: the supervisor-side router and per-worker stores."""

from __future__ import annotations

from .base import ServiceActor


class StorageActor(ServiceActor):
    """One worker's storage: fronts a
    :class:`~repro.storage.worker.WorkerStorage` unit on the worker's
    own pool, so spill/pin/quota decisions execute worker-local."""

    service_methods = frozenset({
        "put_local",
        "ensure_free_local",
        "force_spill_local",
        "get_local",
        "get_local_many",
        "value_of",
        "level_of",
        "nbytes_of_local",
        "delete_local",
        "pin_local",
        "unpin_local",
        "drop_pins_local",
        "set_pin_count_local",
        "is_pinned_local",
        "pinned_local",
        "clear_pins_local",
        "keys_local",
        "memory_bytes_local",
        "disk_bytes_local",
        "spilled_bytes",
        "failed_admission_spill_bytes",
        "forced_spill_bytes",
    })


class StorageManagerActor(ServiceActor):
    """Supervisor-side router: fronts the cluster-wide
    :class:`~repro.storage.service.StorageService`, which delegates tier
    operations to the per-worker :class:`StorageActor`s."""

    service_methods = frozenset({
        "put",
        "put_many",
        "ensure_free",
        "force_spill",
        "get",
        "get_many",
        "acquire_many",
        "peek",
        "peek_value",
        "peek_values",
        "pin",
        "unpin",
        "is_pinned",
        "pinned_keys",
        "contains",
        "missing_keys",
        "location_of",
        "nbytes_of",
        "delete",
        "delete_many",
        "transferred_bytes",
        "spilled_bytes",
        "failed_admission_spill_bytes",
        "forced_spill_bytes",
        "memory_bytes",
        "disk_bytes",
        "keys_on",
        "all_keys",
        "clear",
        "worker_unit",
    })
