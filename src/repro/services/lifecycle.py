"""The lifecycle service: chunk reference counting and lineage.

Owns what used to be inlined in the executor: the per-stage consumer
refcounts that decide when an intermediate chunk is freed, the
terminal-chunk flags that exempt user-visible results from eager
release, and the :class:`~repro.core.recovery.RecoveryManager` lineage
registry.  Frees go out through the service's own storage/shuffle
handles, so the message trace shows ``service/lifecycle ->
service/storage`` for every refcount-driven delete.

Stage state (consumer counts, retained keys) is scoped per session: on a
shared cluster N tenants run interleaved stages, and tenant A's
``begin_stage`` must not clobber tenant B's live refcounts.  The empty
session ``""`` is the private-cluster scope — single-session callers
never notice the scoping.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.recovery import RecoveryManager
from ..utils import DedupLog
from .base import ServiceActor


class _StageScope:
    """One session's active-stage refcount state."""

    __slots__ = ("consumers", "retain")

    def __init__(self):
        self.consumers: defaultdict[str, int] = defaultdict(int)
        self.retain: set[str] = set()


class LifecycleService:
    """Refcount/forget logic plus the lineage registry."""

    def __init__(self, storage, shuffle=None, config=None, cache=None):
        self._storage = storage
        self._shuffle = shuffle
        self._config = config
        self._cache = cache
        self._recovery = RecoveryManager()
        #: chunk key -> is a tileable-boundary (user-visible) chunk;
        #: persisted across stages like the executor's old field. Keys
        #: are session-prefixed on a shared cluster, so one flat dict is
        #: collision-free.
        self._terminal: dict[str, bool] = {}
        #: session -> that session's active-stage scope.
        self._scopes: dict[str, _StageScope] = {"": _StageScope()}
        #: chunk keys the result cache points at — exempt from
        #: refcount-driven frees until evicted or invalidated.
        self._cache_protected: set[str] = set()
        #: memo of applied ``finish_subtask`` tokens (at-least-once).
        self._dedup = DedupLog()

    def _scope(self, session: str) -> _StageScope:
        scope = self._scopes.get(session)
        if scope is None:
            scope = self._scopes[session] = _StageScope()
        return scope

    def _retained_anywhere(self, key: str) -> bool:
        return any(key in scope.retain for scope in self._scopes.values())

    # -- stage refcounting -------------------------------------------------
    def register_terminals(self, terminal_by_key: dict[str, bool]) -> None:
        self._terminal.update(terminal_by_key)

    def is_terminal(self, key: str) -> bool:
        return self._terminal.get(key, False)

    def begin_stage(self, consumers: dict[str, int], retain,
                    session: str = "") -> None:
        """Install one stage's consumer counts and protected keys."""
        scope = self._scope(session)
        scope.consumers = defaultdict(int, consumers)
        scope.retain = set(retain)

    def release_consumed(self, input_keys, session: str = "") -> list[str]:
        """One subtask consumed ``input_keys``; free what dropped to zero.

        Eager engines (``eager_release=False``) pin user-visible
        intermediate frames (terminal chunks) but still free internal
        stage chunks (map partials, shuffle partitions), like Ray's
        reference counting.  Returns the freed keys.
        """
        eager = bool(self._config.eager_release) if self._config else False
        scope = self._scope(session)
        freed: list[str] = []
        for key in input_keys:
            scope.consumers[key] -= 1
            if scope.consumers[key] <= 0 and key not in scope.retain:
                if key in self._cache_protected:
                    continue
                if eager or not self._terminal.get(key, False):
                    freed.append(key)
        # frees go out batched, but still storage first then shuffle —
        # the LIFECYCLE -> STORAGE / -> SHUFFLE trace edges survive.
        if freed:
            self._storage.delete_many(freed)
            if self._shuffle is not None:
                self._shuffle.forget_keys(freed)
        return freed

    def finish_subtask(self, subtask, session: str = "",
                       dedup_token=None) -> list[str]:
        """One message for a subtask's whole lifecycle epilogue.

        Releases the consumer refcounts its inputs held (freeing what
        dropped to zero) and records its lineage; returns the freed
        keys.

        Idempotent under at-least-once delivery: a redelivered message
        (same ``dedup_token``) returns the memoized freed list without
        decrementing refcounts a second time.
        """
        seen, memo = self._dedup.check(dedup_token)
        if seen:
            return memo
        freed = self.release_consumed(subtask.input_keys, session)
        self._recovery.record(subtask)
        self._dedup.record(dedup_token, freed)
        return freed

    def drop_session(self, session: str) -> None:
        """A tenant closed: discard its stage scope and terminal flags."""
        if not session:
            return
        self._scopes.pop(session, None)
        prefix = f"{session}/"
        for key in [k for k in self._terminal if k.startswith(prefix)]:
            del self._terminal[key]

    # -- result cache ------------------------------------------------------
    def cache_record(self, entries, session_id: str = "",
                     dedup_token=None) -> list[str]:
        """Register executed results with the cache; handle evictions.

        ``entries`` holds ``(ident, chunk_key, nbytes, deps, explicit)``
        tuples. Newly cached chunks become protected from refcount
        frees; chunks the cache evicted for budget lose protection and
        — under eager-release semantics — are deleted outright unless
        an active stage still retains them.

        The dedup token guards this hop *and* is forwarded to
        ``record_many``, so a duplicate on either the client->lifecycle
        or the lifecycle->cache edge applies the recording once.
        """
        if self._cache is None:
            return []
        seen, memo = self._dedup.check(dedup_token)
        if seen:
            return memo
        entries = list(entries)
        evicted = self._cache.record_many(entries, session_id,
                                          dedup_token=dedup_token)
        for _ident, chunk_key, _nbytes, _deps, _explicit in entries:
            self._cache_protected.add(chunk_key)
        result = self._unprotect(evicted)
        self._dedup.record(dedup_token, result)
        return result

    def invalidate_cached(self, chunk_keys, session=None) -> list[str]:
        """Chunk bytes vanished or changed: drop dependent cache entries.

        ``session`` scopes the *transitive* part of the invalidation to
        one tenant's entries (see ``ResultCacheService.invalidate_chunks``)
        — another tenant's still-valid entries survive tenant-local
        chunk loss or ``free()``.  ``None`` keeps the unscoped walk.
        Returns the chunk keys whose entries were dropped (their values,
        where still stored, become ordinary freeable intermediates).
        """
        if self._cache is None:
            return []
        dropped = self._cache.invalidate_chunks(
            list(chunk_keys), scope_session=session)
        return self._unprotect(dropped)

    def _unprotect(self, chunk_keys) -> list[str]:
        # Under eager-release semantics an unprotected chunk would have
        # been freed by refcounting long ago — drop its bytes now
        # (consumers re-materialize via lineage, as with the cache off).
        eager = bool(self._config.eager_release) if self._config else False
        deletable: list[str] = []
        for key in chunk_keys:
            self._cache_protected.discard(key)
            if eager and not self._retained_anywhere(key):
                deletable.append(key)
        if deletable:
            missing = set(self._storage.missing_keys(deletable))
            present = [k for k in deletable if k not in missing]
            if present:
                self._storage.delete_many(present)
        return list(chunk_keys)

    def cache_protected(self) -> set[str]:
        return set(self._cache_protected)

    # -- lineage -----------------------------------------------------------
    def record(self, subtask) -> None:
        self._recovery.record(subtask)

    def producer_of(self, key: str):
        return self._recovery.producer_of(key)

    def plan(self, keys) -> list:
        """Minimal lineage closure whose re-execution restores ``keys``."""
        return self._recovery.plan(keys, self._storage.contains)

    def recovery_manager(self) -> RecoveryManager:
        """The lineage registry itself (tests and tile-context checks)."""
        return self._recovery


class LifecycleActor(ServiceActor):
    """Fronts a :class:`LifecycleService` on the supervisor pool."""

    service_methods = frozenset({
        "register_terminals",
        "is_terminal",
        "begin_stage",
        "release_consumed",
        "finish_subtask",
        "drop_session",
        "cache_record",
        "invalidate_cached",
        "cache_protected",
        "record",
        "producer_of",
        "plan",
        "recovery_manager",
    })
