"""The lifecycle service: chunk reference counting and lineage.

Owns what used to be inlined in the executor: the per-stage consumer
refcounts that decide when an intermediate chunk is freed, the
terminal-chunk flags that exempt user-visible results from eager
release, and the :class:`~repro.core.recovery.RecoveryManager` lineage
registry.  Frees go out through the service's own storage/shuffle
handles, so the message trace shows ``service/lifecycle ->
service/storage`` for every refcount-driven delete.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.recovery import RecoveryManager
from .base import ServiceActor


class LifecycleService:
    """Refcount/forget logic plus the lineage registry."""

    def __init__(self, storage, shuffle=None, config=None):
        self._storage = storage
        self._shuffle = shuffle
        self._config = config
        self._recovery = RecoveryManager()
        #: chunk key -> is a tileable-boundary (user-visible) chunk;
        #: persisted across stages like the executor's old field.
        self._terminal: dict[str, bool] = {}
        #: active stage's remaining-consumer counts and retained keys.
        self._consumers: defaultdict[str, int] = defaultdict(int)
        self._retain: set[str] = set()

    # -- stage refcounting -------------------------------------------------
    def register_terminals(self, terminal_by_key: dict[str, bool]) -> None:
        self._terminal.update(terminal_by_key)

    def is_terminal(self, key: str) -> bool:
        return self._terminal.get(key, False)

    def begin_stage(self, consumers: dict[str, int], retain) -> None:
        """Install one stage's consumer counts and protected keys."""
        self._consumers = defaultdict(int, consumers)
        self._retain = set(retain)

    def release_consumed(self, input_keys) -> list[str]:
        """One subtask consumed ``input_keys``; free what dropped to zero.

        Eager engines (``eager_release=False``) pin user-visible
        intermediate frames (terminal chunks) but still free internal
        stage chunks (map partials, shuffle partitions), like Ray's
        reference counting.  Returns the freed keys.
        """
        eager = bool(self._config.eager_release) if self._config else False
        freed: list[str] = []
        for key in input_keys:
            self._consumers[key] -= 1
            if self._consumers[key] <= 0 and key not in self._retain:
                if eager or not self._terminal.get(key, False):
                    freed.append(key)
        # frees go out batched, but still storage first then shuffle —
        # the LIFECYCLE -> STORAGE / -> SHUFFLE trace edges survive.
        if freed:
            self._storage.delete_many(freed)
            if self._shuffle is not None:
                self._shuffle.forget_keys(freed)
        return freed

    def finish_subtask(self, subtask) -> list[str]:
        """One message for a subtask's whole lifecycle epilogue.

        Releases the consumer refcounts its inputs held (freeing what
        dropped to zero) and records its lineage; returns the freed
        keys.
        """
        freed = self.release_consumed(subtask.input_keys)
        self._recovery.record(subtask)
        return freed

    # -- lineage -----------------------------------------------------------
    def record(self, subtask) -> None:
        self._recovery.record(subtask)

    def producer_of(self, key: str):
        return self._recovery.producer_of(key)

    def plan(self, keys) -> list:
        """Minimal lineage closure whose re-execution restores ``keys``."""
        return self._recovery.plan(keys, self._storage.contains)

    def recovery_manager(self) -> RecoveryManager:
        """The lineage registry itself (tests and tile-context checks)."""
        return self._recovery


class LifecycleActor(ServiceActor):
    """Fronts a :class:`LifecycleService` on the supervisor pool."""

    service_methods = frozenset({
        "register_terminals",
        "is_terminal",
        "begin_stage",
        "release_consumed",
        "finish_subtask",
        "record",
        "producer_of",
        "plan",
        "recovery_manager",
    })
