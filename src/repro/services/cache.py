"""The result cache service: content-addressed reuse of stored chunks.

Maps structural identities (:mod:`repro.graph.identity`) to live stored
chunk values, so a re-run of a subgraph whose identity matches an
earlier run is pruned from the execution graph and its consumers are
rewired to the cached chunks (xorq-style content addressing, ROADMAP
item 2).

The cache never owns bytes — values live in ordinary storage tiers and
participate in spill/pin accounting. What the cache owns is the
*directory* (identity → chunk key + size + ancestor identities) plus an
LRU byte budget of its own: when recorded entries exceed
``config.result_cache_budget`` the least-recently-hit non-explicit
entries are dropped and their now-unprotected chunks become ordinary
freeable intermediates.

Two removal paths with different semantics:

- **eviction** (budget pressure) forgets an entry but leaves entries
  built on top of it valid — their values are already materialized and
  correct;
- **invalidation** (chunk lost, source mutated, tileable freed) drops
  the entry *and every entry whose ancestor set contains it* — their
  recorded values descend from data that no longer exists or changed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..utils import DedupLog
from .base import ServiceActor


@dataclass
class CacheEntry:
    """One cached result: where its value lives and what it depends on."""

    ident: str
    chunk_key: str
    nbytes: int
    deps: frozenset  # ancestor identities (invalidation edges)
    explicit: bool   # from .cache(): never budget-evicted
    session: str


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    bytes_reused: int = 0
    per_session: dict = field(default_factory=dict)


class ResultCacheService:
    """Identity → stored-chunk directory with an LRU byte budget."""

    def __init__(self, storage, config=None):
        self._storage = storage
        self._config = config
        #: identity -> entry, in least-recently-hit-first order.
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: chunk key -> identity (reverse index for invalidation).
        self._by_chunk: dict[str, str] = {}
        #: identity -> ancestor identities for chunks whose values were
        #: *observed* this planning pass but not necessarily cached —
        #: boundary resolution for later passes (dynamic tiling runs
        #: several partial executes per session run).
        self._known: dict[str, tuple[str, frozenset]] = {}
        self._bytes = 0
        self.stats = CacheStats()
        #: memo of applied ``record_many`` tokens (at-least-once).
        self._dedup = DedupLog()

    # -- configuration -----------------------------------------------------
    def _budget(self) -> Optional[int]:
        if self._config is None:
            return None
        budget = getattr(self._config, "result_cache_budget", 0)
        return int(budget) if budget else None

    # -- planning-time lookups ---------------------------------------------
    def known_identities(self, chunk_keys: Iterable[str]) -> dict:
        """Resolve already-identified chunks for a planning pass.

        Returns ``{chunk_key: (identity, ancestor identities)}`` for
        every requested chunk the cache has seen before — the ``known``
        argument of ``compute_chunk_identities``, letting partial
        executes chain identities across tiling yields.
        """
        out = {}
        for key in chunk_keys:
            resolved = self._known.get(key)
            if resolved is not None:
                out[key] = resolved
        return out

    def note_identities(self, triples: Iterable[tuple]) -> None:
        """Remember ``(chunk_key, identity, ancestor idents)`` bindings."""
        for chunk_key, ident, deps in triples:
            self._known[chunk_key] = (ident, frozenset(deps))

    def lookup_many(self, idents: Iterable[str],
                    session: str = "") -> dict[str, tuple[str, int]]:
        """Hit test a batch of identities against live storage.

        Returns ``{identity: (chunk_key, nbytes)}`` for every hit. An
        entry whose chunk no longer sits in storage (freed outside the
        cache's sight) is dropped rather than returned. Hits refresh LRU
        order and count into the stats; misses count too.
        """
        hits: dict[str, tuple[str, int]] = {}
        sess = self.stats.per_session.setdefault(
            session, {"hits": 0, "misses": 0, "bytes_reused": 0})
        for ident in idents:
            entry = self._entries.get(ident)
            if entry is not None and not self._storage.contains(
                    entry.chunk_key):
                self._forget(ident)
                entry = None
            if entry is None:
                self.stats.misses += 1
                sess["misses"] += 1
                continue
            self._entries.move_to_end(ident)
            self.stats.hits += 1
            self.stats.bytes_reused += entry.nbytes
            sess["hits"] += 1
            sess["bytes_reused"] += entry.nbytes
            hits[ident] = (entry.chunk_key, entry.nbytes)
        return hits

    # -- recording ---------------------------------------------------------
    def record_many(self, entries: Iterable[tuple],
                    session: str = "", dedup_token=None) -> list[str]:
        """Insert executed results; returns chunk keys evicted for budget.

        ``entries`` holds ``(ident, chunk_key, nbytes, deps, explicit)``
        tuples. The caller (lifecycle) unpins/frees the returned chunk
        keys — eviction here only updates the directory.

        Idempotent under at-least-once delivery: a redelivered batch
        (same ``dedup_token``) returns the memoized evicted list, so
        duplicates never double-count directory bytes or re-run the LRU.
        """
        seen, memo = self._dedup.check(dedup_token)
        if seen:
            return memo
        evicted: list[str] = []
        for ident, chunk_key, nbytes, deps, explicit in entries:
            old = self._entries.get(ident)
            if old is not None:
                self._forget(ident)
            entry = CacheEntry(ident, chunk_key, int(nbytes),
                               frozenset(deps), bool(explicit), session)
            self._entries[ident] = entry
            self._by_chunk[chunk_key] = ident
            self._known[chunk_key] = (ident, entry.deps)
            self._bytes += entry.nbytes
        budget = self._budget()
        if budget is not None:
            evicted.extend(self._evict_to(budget))
        self._dedup.record(dedup_token, evicted)
        return evicted

    def _evict_to(self, budget: int) -> list[str]:
        evicted: list[str] = []
        if self._bytes <= budget:
            return evicted
        for ident in list(self._entries):
            if self._bytes <= budget:
                break
            entry = self._entries[ident]
            if entry.explicit:
                continue
            evicted.append(entry.chunk_key)
            self._forget(ident)
            self.stats.evictions += 1
        return evicted

    def _forget(self, ident: str) -> None:
        entry = self._entries.pop(ident, None)
        if entry is None:
            return
        self._bytes -= entry.nbytes
        self._by_chunk.pop(entry.chunk_key, None)

    # -- invalidation ------------------------------------------------------
    def invalidate_chunks(self, chunk_keys: Iterable[str],
                          scope_session: Optional[str] = None) -> list[str]:
        """A chunk's bytes are gone or changed: drop dependents too.

        Every entry whose identity *is* one of the lost chunks' — or
        whose ancestor set contains one — is removed. Returns the chunk
        keys of all dropped entries so lifecycle can unprotect them.

        ``scope_session`` limits the *transitive* part of the walk to one
        tenant's entries: an entry pointing directly at a lost chunk is
        always dropped (its bytes are gone), but downstream dependents
        belonging to other tenants keep their entries — their values are
        already materialized under their own chunk keys, so like budget
        eviction this loses reuse, never correctness.  ``None`` drops
        dependents regardless of owner (the private-cluster behaviour).
        """
        lost_keys = set(chunk_keys)
        lost_idents = set()
        for key in lost_keys:
            known = self._known.pop(key, None)
            if known is not None:
                lost_idents.add(known[0])
            ident = self._by_chunk.get(key)
            if ident is not None:
                lost_idents.add(ident)
        if not lost_idents:
            return []
        dropped: list[str] = []
        for ident in list(self._entries):
            entry = self._entries[ident]
            if entry.chunk_key not in lost_keys and scope_session is not None \
                    and entry.session != scope_session:
                continue
            if ident in lost_idents or (entry.deps & lost_idents):
                dropped.append(entry.chunk_key)
                self._forget(ident)
                self.stats.invalidations += 1
        # boundary bindings downstream of the loss are stale too.
        scope_prefix = (f"{scope_session}/"
                        if scope_session else None)
        for key in list(self._known):
            if scope_prefix is not None and not key.startswith(scope_prefix):
                continue
            ident, deps = self._known[key]
            if ident in lost_idents or (deps & lost_idents):
                del self._known[key]
        return dropped

    # -- introspection -----------------------------------------------------
    def cached_chunk_keys(self) -> list[str]:
        return list(self._by_chunk)

    def entry_identities(self) -> list[str]:
        """Sorted identities of all live entries (stability tests)."""
        return sorted(self._entries)

    def stats_snapshot(self) -> dict:
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "invalidations": self.stats.invalidations,
            "evictions": self.stats.evictions,
            "bytes_reused": self.stats.bytes_reused,
            "entries": len(self._entries),
            "bytes_cached": self._bytes,
            "per_session": {k: dict(v)
                            for k, v in self.stats.per_session.items()},
        }

    def clear(self) -> list[str]:
        """Drop every entry; returns the previously protected chunk keys."""
        dropped = list(self._by_chunk)
        self._entries.clear()
        self._by_chunk.clear()
        self._known.clear()
        self._bytes = 0
        return dropped


class CacheActor(ServiceActor):
    """Fronts a :class:`ResultCacheService` on the supervisor pool."""

    service_methods = frozenset({
        "known_identities",
        "note_identities",
        "lookup_many",
        "record_many",
        "invalidate_chunks",
        "cached_chunk_keys",
        "entry_identities",
        "stats_snapshot",
        "clear",
    })
