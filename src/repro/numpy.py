"""``repro.numpy`` — the drop-in NumPy-like namespace (Listing 2).

Mirrors the structure users expect: ``np.random.rand``, ``np.linalg.qr``.
"""

import types

from .tensor import (
    Tensor,
    arange,
    dot,
    full,
    lstsq,
    ones,
    qr,
    rand,
    randn,
    tensor_from_numpy,
    zeros,
)

#: ``np.random`` equivalent
random = types.SimpleNamespace(rand=rand, randn=randn, random=rand)

#: ``np.linalg`` equivalent
linalg = types.SimpleNamespace(qr=qr, lstsq=lstsq)

array = tensor_from_numpy

__all__ = [
    "Tensor",
    "arange",
    "array",
    "dot",
    "full",
    "linalg",
    "lstsq",
    "ones",
    "qr",
    "rand",
    "randn",
    "random",
    "tensor_from_numpy",
    "zeros",
]
