"""Graph entities: tileable data (logical) and chunk data (physical).

Terminology follows Section III-C of the paper:

- a **tileable** is one logical dataset in the user's program (a whole
  distributed DataFrame/Tensor);
- a **chunk** is one partition of a tileable, carrying a *chunk index*
  ``(r, c)`` locating it inside the full dataset (Fig. 4);
- operators are circles, data placeholders squares: here every
  Tileable/Chunk data node points at the operator that produces it.

Shapes may be *unknown* until execution (the paper's non-static
operators); unknown extents are represented as ``None``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..utils import new_key

#: the kinds of data an entity may hold.
KINDS = ("dataframe", "series", "index", "tensor", "scalar")


def shape_is_known(shape: tuple) -> bool:
    return all(extent is not None for extent in shape)


class EntityData:
    """Shared fields of tileable and chunk data nodes."""

    __slots__ = ("key", "op", "kind", "shape", "dtype", "columns", "name",
                 "_hash")

    def __init__(self, kind: str, shape: tuple, op=None,
                 dtype: Any = None, columns: Optional[list] = None,
                 name: Any = None, key: str | None = None):
        if kind not in KINDS:
            raise ValueError(f"unknown entity kind {kind!r}")
        self.kind = kind
        self.shape = tuple(shape)
        self.op = op
        self.dtype = dtype
        self.columns = list(columns) if columns is not None else None
        self.name = name
        self.key = key if key is not None else new_key(self._key_prefix())
        self._hash = hash(self.key)

    def _key_prefix(self) -> str:
        return "e"

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def has_known_shape(self) -> bool:
        return shape_is_known(self.shape)

    @property
    def nrows(self) -> Optional[int]:
        return self.shape[0] if self.shape else 1

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return isinstance(other, EntityData) and other.key == self.key

    def rebind_key(self, key: str) -> None:
        """Point this node at an already-stored value (result-cache hit).

        Changes the node's hash, so any graph containing it must be
        rebuilt afterwards (``tiler.chunk_closure`` over the sinks).
        """
        self.key = key
        self._hash = hash(key)


class ChunkData(EntityData):
    """One partition of a tileable, produced by one operator invocation.

    ``index`` is the distributed index of Fig. 4: the chunk's coordinates
    inside the complete dataset.
    """

    __slots__ = ("index", "terminal")

    def __init__(self, kind: str, shape: tuple, index: tuple, op=None,
                 dtype: Any = None, columns: Optional[list] = None,
                 name: Any = None, key: str | None = None):
        super().__init__(kind, shape, op=op, dtype=dtype, columns=columns,
                         name=name, key=key)
        self.index = tuple(index)
        #: True when this chunk is part of a tileable's visible layout
        #: (a user-level intermediate), as opposed to an internal stage
        #: chunk (map partial, shuffle partition). Eager engines pin
        #: terminal chunks (``config.eager_release = False``).
        self.terminal = False

    def _key_prefix(self) -> str:
        return "c"

    @property
    def inputs(self) -> list["ChunkData"]:
        return list(self.op.inputs) if self.op is not None else []

    def __repr__(self) -> str:
        op_name = type(self.op).__name__ if self.op is not None else "Data"
        return f"Chunk<{op_name}@{self.index} {self.shape} {self.key[:10]}>"


class TileableData(EntityData):
    """One logical dataset node of the tileable graph."""

    __slots__ = ("chunks", "nsplits", "cache_requested")

    def __init__(self, kind: str, shape: tuple, op=None,
                 dtype: Any = None, columns: Optional[list] = None,
                 name: Any = None, key: str | None = None):
        super().__init__(kind, shape, op=op, dtype=dtype, columns=columns,
                         name=name, key=key)
        self.chunks: list[ChunkData] = []
        #: per-dimension chunk extents, e.g. ((4, 4, 2), (3,)); ``None``
        #: entries mark extents unknown before execution.
        self.nsplits: tuple[tuple, ...] = ()
        #: set by ``.cache()``: the result cache must keep this
        #: tileable's chunks even under budget pressure.
        self.cache_requested = False

    def _key_prefix(self) -> str:
        return "t"

    @property
    def is_tiled(self) -> bool:
        return bool(self.chunks)

    @property
    def inputs(self) -> list["TileableData"]:
        return list(self.op.inputs) if self.op is not None else []

    def with_chunks(self, chunks: Sequence[ChunkData],
                    nsplits: tuple[tuple, ...]) -> "TileableData":
        """Attach the chunk layout produced by tiling."""
        self.chunks = list(chunks)
        self.nsplits = tuple(tuple(split) for split in nsplits)
        if shape_is_known(self.shape):
            return self
        # refine the logical shape now that chunk extents are known
        new_shape = []
        for dim, splits in enumerate(self.nsplits):
            if all(s is not None for s in splits):
                new_shape.append(int(sum(splits)))
            else:
                new_shape.append(self.shape[dim] if dim < len(self.shape) else None)
        self.shape = tuple(new_shape)
        return self

    def refresh_from_chunks(self) -> None:
        """Recompute nsplits/shape after chunk shapes were updated."""
        if not self.chunks:
            return
        if self.ndim <= 1:
            splits = tuple(c.shape[0] if c.shape else None for c in self.chunks)
            self.nsplits = (splits,)
            if all(s is not None for s in splits):
                self.shape = (int(sum(splits)),) if self.ndim == 1 else ()
            return
        row_extent: dict[int, Optional[int]] = {}
        col_extent: dict[int, Optional[int]] = {}
        for chunk in self.chunks:
            r = chunk.index[0]
            c = chunk.index[1] if len(chunk.index) > 1 else 0
            row_extent[r] = chunk.shape[0]
            if len(chunk.shape) > 1:
                col_extent[c] = chunk.shape[1]
        rows = tuple(row_extent[r] for r in sorted(row_extent))
        cols = tuple(col_extent[c] for c in sorted(col_extent)) or (self.shape[1],)
        self.nsplits = (rows, cols)
        if all(s is not None for s in rows):
            self.shape = (int(sum(rows)), self.shape[1])

    def __repr__(self) -> str:
        op_name = type(self.op).__name__ if self.op is not None else "Data"
        return (
            f"Tileable<{op_name} {self.kind} {self.shape} "
            f"chunks={len(self.chunks)} {self.key[:10]}>"
        )
