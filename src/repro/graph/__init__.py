"""``repro.graph`` — DAG container and plan entities (tileable/chunk/subtask)."""

from .dag import DAG
from .entity import ChunkData, EntityData, TileableData, shape_is_known
from .subtask import Subtask, build_subtask_graph

__all__ = [
    "DAG",
    "ChunkData",
    "EntityData",
    "Subtask",
    "TileableData",
    "build_subtask_graph",
    "shape_is_known",
]
