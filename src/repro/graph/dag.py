"""A small directed-acyclic-graph container used by all three plan levels
(tileable graph, chunk graph, subtask graph)."""

from __future__ import annotations

from collections import deque
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from ..errors import GraphError

N = TypeVar("N", bound=Hashable)


class DAG(Generic[N]):
    """Directed graph with acyclicity enforced at traversal time."""

    def __init__(self):
        self._succ: dict[N, list[N]] = {}
        self._pred: dict[N, list[N]] = {}

    # -- construction ------------------------------------------------------
    def add_node(self, node: N) -> None:
        if node not in self._succ:
            self._succ[node] = []
            self._pred[node] = []

    def add_edge(self, src: N, dst: N) -> None:
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)

    def remove_node(self, node: N) -> None:
        if node not in self._succ:
            raise GraphError(f"node {node!r} not in graph")
        for succ in self._succ[node]:
            self._pred[succ].remove(node)
        for pred in self._pred[node]:
            self._succ[pred].remove(node)
        del self._succ[node]
        del self._pred[node]

    # -- queries ------------------------------------------------------------
    def __contains__(self, node: N) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[N]:
        return iter(self._succ)

    def nodes(self) -> list[N]:
        return list(self._succ)

    def successors(self, node: N) -> list[N]:
        return list(self._succ[node])

    def predecessors(self, node: N) -> list[N]:
        return list(self._pred[node])

    def in_degree(self, node: N) -> int:
        return len(self._pred[node])

    def out_degree(self, node: N) -> int:
        return len(self._succ[node])

    def sources(self) -> list[N]:
        return [n for n in self._succ if not self._pred[n]]

    def sinks(self) -> list[N]:
        return [n for n in self._succ if not self._succ[n]]

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    # -- traversal -------------------------------------------------------------
    def topological_order(self) -> list[N]:
        """Kahn's algorithm; raises :class:`GraphError` on a cycle."""
        in_deg = {n: len(self._pred[n]) for n in self._succ}
        queue = deque(n for n, d in in_deg.items() if d == 0)
        order: list[N] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for succ in self._succ[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._succ):
            raise GraphError("graph contains a cycle")
        return order

    def reverse_topological_order(self) -> list[N]:
        return list(reversed(self.topological_order()))

    def bfs_layers(self) -> list[list[N]]:
        """Nodes grouped by depth from the sources."""
        depth: dict[N, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            depth[node] = 1 + max((depth[p] for p in preds), default=-1)
        layers: dict[int, list[N]] = {}
        for node, d in depth.items():
            layers.setdefault(d, []).append(node)
        return [layers[d] for d in sorted(layers)]

    def ancestors(self, node: N) -> set[N]:
        seen: set[N] = set()
        stack = list(self._pred[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._pred[current])
        return seen

    def descendants(self, node: N) -> set[N]:
        seen: set[N] = set()
        stack = list(self._succ[node])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._succ[current])
        return seen

    def subgraph(self, nodes: Iterable[N]) -> "DAG[N]":
        keep = set(nodes)
        out: DAG[N] = DAG()
        for node in self._succ:
            if node in keep:
                out.add_node(node)
        for node in keep:
            for succ in self._succ.get(node, []):
                if succ in keep:
                    out.add_edge(node, succ)
        return out

    def copy(self) -> "DAG[N]":
        out: DAG[N] = DAG()
        out._succ = {n: list(s) for n, s in self._succ.items()}
        out._pred = {n: list(p) for n, p in self._pred.items()}
        return out
