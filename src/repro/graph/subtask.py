"""Subtasks: fused groups of chunk operators, the unit of scheduling.

A subtask is what graph-level fusion produces from a chunk graph
(Section V-A): a connected set of same-color chunk nodes executed on one
band with no intermediate storage round-trips.
"""

from __future__ import annotations

from typing import Optional

from ..utils import new_key
from .dag import DAG
from .entity import ChunkData


class Subtask:
    """A fused subgraph of chunks plus its scheduling assignment."""

    __slots__ = (
        "key", "chunks", "input_keys", "output_keys", "band",
        "priority", "virtual_cost", "stage_index", "load_estimate",
        "_hash",
    )

    def __init__(self, chunks: list[ChunkData]):
        if not chunks:
            raise ValueError("a subtask needs at least one chunk")
        self.key = new_key("s")
        self._hash = hash(self.key)
        #: chunks in execution (topological) order.
        self.chunks = chunks
        internal = {c.key for c in chunks}
        #: keys of chunks read from storage (produced by other subtasks).
        self.input_keys: list[str] = []
        seen: set[str] = set()
        for chunk in chunks:
            for dep in chunk.inputs:
                if dep.key not in internal and dep.key not in seen:
                    seen.add(dep.key)
                    self.input_keys.append(dep.key)
        #: keys this subtask must write back to storage: its terminal
        #: chunks (consumers are outside the subtask or it has none).
        self.output_keys: list[str] = []
        #: band name this subtask is assigned to (set by the scheduler).
        self.band: Optional[str] = None
        self.priority: int = 0
        self.virtual_cost: float = 0.0
        #: the scheduler's estimated load contribution, remembered so the
        #: executor can release exactly this amount on completion.
        self.load_estimate: float = 0.0
        #: index of the execution stage that first ran this subtask.
        #: Together with ``priority`` (topological position) it forms the
        #: *structural identity* fault injection and retry accounting key
        #: on — stable across sessions and execution modes, unlike the
        #: process-global ``key``.
        self.stage_index: int = 0

    @property
    def n_ops(self) -> int:
        return sum(1 for c in self.chunks if c.op is not None)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return isinstance(other, Subtask) and other.key == self.key

    def __repr__(self) -> str:
        names = "+".join(
            type(c.op).__name__ if c.op is not None else "Data"
            for c in self.chunks[:4]
        )
        extra = "+..." if len(self.chunks) > 4 else ""
        return f"Subtask<{names}{extra} on {self.band}>"


def build_subtask_graph(chunk_graph: DAG[ChunkData],
                        groups: list[list[ChunkData]]) -> DAG[Subtask]:
    """Assemble the subtask DAG from fusion groups.

    ``groups`` must partition the chunk graph's nodes; edges between
    groups become subtask dependencies. Output keys are chunks consumed
    outside their group or terminal in the chunk graph.
    """
    position = {
        chunk.key: i for i, chunk in enumerate(chunk_graph.topological_order())
    }
    chunk_to_subtask: dict[str, Subtask] = {}
    subtasks: list[Subtask] = []
    for group in groups:
        ordered = sorted(group, key=lambda c: position[c.key])
        subtask = Subtask(ordered)
        subtasks.append(subtask)
        for chunk in group:
            chunk_to_subtask[chunk.key] = subtask

    graph: DAG[Subtask] = DAG()
    for subtask in subtasks:
        graph.add_node(subtask)
    for chunk in chunk_graph.nodes():
        src = chunk_to_subtask[chunk.key]
        for succ in chunk_graph.successors(chunk):
            dst = chunk_to_subtask[succ.key]
            if dst is not src:
                graph.add_edge(src, dst)

    for subtask in subtasks:
        internal = {c.key for c in subtask.chunks}
        outputs = []
        for chunk in subtask.chunks:
            consumers = chunk_graph.successors(chunk)
            if not consumers or any(s.key not in internal for s in consumers):
                outputs.append(chunk.key)
        subtask.output_keys = outputs
    return graph
