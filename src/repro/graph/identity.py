"""Structural identities: the engine's one blake2b hashing surface.

Three consumers share the canonical hashing that used to be spread over
``core/recovery.py`` (fault draws), ``utils.py`` (``tokenize``) and ad
hoc per-feature code:

- **fault injection** draws a seeded uniform from a *structural*
  identity — ``(stage index, topological priority, attempt)`` — via
  :func:`structural_draw`, so one seed fires the same faults in serial,
  thread and process execution mode and across sessions;
- **the result cache** addresses stored chunk values by
  *content-derived* identities: :func:`compute_chunk_identities` hashes
  each chunk's operator chain, canonicalized parameters and source-data
  fingerprints into a key that is stable across sessions (runtime chunk
  keys are canonicalized away) — the same computation always hashes to
  the same identity, and a mutated source hashes to a different one;
- **tests/utilities** use :func:`tokenize` for short deterministic
  digests of plain values.

Identities must never depend on process-global state: runtime keys
(``c-00000123``-style counters), object addresses and unhashable opaque
objects are either canonicalized to placeholders or poison the identity
(``None`` = uncacheable), never silently hashed.
"""

from __future__ import annotations

import hashlib
import re
import types
from typing import Any, Callable, Iterable, Optional

import numpy as np

#: process-global runtime keys produced by ``utils.new_key``:
#: ``<prefix>-<8 digits>``, optionally under a session key namespace
#: (``session-3/c-00000042``). They differ across sessions for the same
#: program, so canonicalization replaces them with their bare prefix —
#: the namespace is stripped too, keeping identities session-stable
#: (cross-tenant cache hits depend on this).
_RUNTIME_KEY_RE = re.compile(r"^(?:[\w.-]+/)*[a-z]+-\d{8}$")

#: default ``repr`` of address-carrying objects — opaque, uncacheable.
_ADDR_RE = re.compile(r" at 0x[0-9a-fA-F]+")

#: sentinel: a value that cannot be canonicalized deterministically.
#: Its presence anywhere in an operator's parameters poisons the chunk's
#: identity (the chunk — and everything downstream — is uncacheable).
OPAQUE = object()


def structural_draw(seed: int, *identity: Any) -> float:
    """Uniform ``[0, 1)`` value derived from ``seed`` and an identity.

    Byte-for-byte the draw the fault injector has always used: the
    payload is the ``:``-joined ``str`` of every part, hashed with an
    8-byte blake2b digest.
    """
    payload = ":".join(str(part) for part in (seed,) + identity)
    digest = hashlib.blake2b(payload.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64


def tokenize(*parts: Any) -> str:
    """Deterministic short hash of the given parts (for cache keys)."""
    hasher = hashlib.blake2b(digest_size=10)
    for part in parts:
        hasher.update(repr(part).encode())
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# value fingerprints: hash the *content* of source data
# ---------------------------------------------------------------------------

def _array_fingerprint(arr: np.ndarray, hasher) -> bool:
    """Feed one ndarray's dtype/shape/content into ``hasher``.

    Returns False when the array holds objects that cannot be hashed
    deterministically.
    """
    hasher.update(str(arr.dtype).encode())
    hasher.update(str(arr.shape).encode())
    if arr.dtype == object:
        for item in arr.ravel():
            if not isinstance(item, (str, bytes, int, float, bool,
                                     np.generic, type(None), tuple)):
                return False
            hasher.update(repr(item).encode())
        return True
    data = np.ascontiguousarray(arr)
    hasher.update(data.tobytes())
    return True


def value_fingerprint(value: Any) -> Optional[str]:
    """Content hash of a source data value, or ``None`` if unhashable.

    Understands NumPy arrays and the ``repro.frame`` containers (duck
    typed on their ``_data``/``_columns``/``_index`` internals so this
    module stays free of upward imports). A fingerprint covers dtype,
    shape, column names, index labels and raw bytes — any in-place
    mutation changes it.
    """
    hasher = hashlib.blake2b(digest_size=16)
    if _feed_value(value, hasher):
        return hasher.hexdigest()
    return None


def _feed_value(value: Any, hasher) -> bool:
    if value is None or isinstance(value, (str, bytes, int, float, bool,
                                           np.generic)):
        hasher.update(repr(value).encode())
        return True
    if isinstance(value, np.ndarray):
        return _array_fingerprint(value, hasher)
    # repro.frame.DataFrame: dict of column arrays + columns + index.
    data = getattr(value, "_data", None)
    if isinstance(data, dict):
        columns = getattr(value, "_columns", None)
        names = (list(columns) if columns is not None
                 else sorted(data, key=repr))
        hasher.update(repr(names).encode())
        for name in names:
            if not _feed_value(data[name], hasher):
                return False
        return _feed_index(getattr(value, "_index", None), hasher)
    # repro.frame.Series: values array + name + index.
    values = getattr(value, "values", None)
    if isinstance(values, np.ndarray):
        hasher.update(repr(getattr(value, "name", None)).encode())
        if not _array_fingerprint(values, hasher):
            return False
        return _feed_index(getattr(value, "_index", None), hasher)
    if isinstance(value, (list, tuple)):
        hasher.update(f"seq:{len(value)}".encode())
        return all(_feed_value(item, hasher) for item in value)
    return False


def _feed_index(index: Any, hasher) -> bool:
    if index is None:
        hasher.update(b"noindex")
        return True
    start = getattr(index, "start", None)
    if start is not None and not hasattr(index, "values"):
        hasher.update(f"range:{start}:{len(index)}".encode())
        return True
    values = getattr(index, "values", None)
    if isinstance(values, np.ndarray):
        return _array_fingerprint(values, hasher)
    hasher.update(repr(index).encode())
    return True


# ---------------------------------------------------------------------------
# parameter canonicalization: strip runtime/process-local state
# ---------------------------------------------------------------------------

def canonical_param(value: Any, _fingerprints: dict | None = None) -> Any:
    """A session-stable token for an operator parameter.

    Returns a nested structure of plain values safe to ``repr``-hash, or
    :data:`OPAQUE` when the parameter cannot be canonicalized (the
    operator is then uncacheable). Handles:

    - runtime keys (``new_key`` counters) → their prefix placeholder;
    - callables → module/qualname/bytecode/consts plus the canonical
      values of their closure cells (two lambdas sharing a qualname but
      closing over different values hash differently);
    - data values (arrays, frames) → content fingerprints;
    - graph entities, actors, open handles → :data:`OPAQUE`.
    """
    if value is None or isinstance(value, (bool, int, float, bytes,
                                           np.generic)):
        return ("lit", repr(value))
    if isinstance(value, str):
        if _RUNTIME_KEY_RE.match(value):
            return ("rtkey", value.rsplit("/", 1)[-1].split("-", 1)[0])
        return ("lit", value)
    if isinstance(value, np.dtype):
        return ("dtype", str(value))
    if isinstance(value, type):
        return ("type", value.__module__, value.__qualname__)
    if isinstance(value, (list, tuple)):
        items = []
        for item in value:
            canon = canonical_param(item, _fingerprints)
            if canon is OPAQUE:
                return OPAQUE
            items.append(canon)
        return ("seq", type(value).__name__, tuple(items))
    if isinstance(value, (set, frozenset)):
        items = []
        for item in value:
            canon = canonical_param(item, _fingerprints)
            if canon is OPAQUE:
                return OPAQUE
            items.append(canon)
        return ("set", tuple(sorted(items, key=repr)))
    if isinstance(value, dict):
        items = []
        for key, item in value.items():
            ck = canonical_param(key, _fingerprints)
            cv = canonical_param(item, _fingerprints)
            if ck is OPAQUE or cv is OPAQUE:
                return OPAQUE
            items.append((ck, cv))
        return ("map", tuple(sorted(items, key=repr)))
    if isinstance(value, np.ndarray):
        return _data_token(value, _fingerprints)
    data = getattr(value, "_data", None)
    if isinstance(data, dict) or isinstance(getattr(value, "values", None),
                                            np.ndarray):
        # repro.frame containers: fingerprint content, never repr.
        return _data_token(value, _fingerprints)
    if isinstance(value, functools_partial_types):
        func = canonical_param(value.func, _fingerprints)
        args = canonical_param(tuple(value.args), _fingerprints)
        kw = canonical_param(dict(value.keywords or {}), _fingerprints)
        if OPAQUE in (func, args, kw):
            return OPAQUE
        return ("partial", func, args, kw)
    if isinstance(value, types.MethodType):
        func = canonical_param(value.__func__, _fingerprints)
        owner = canonical_param(value.__self__, _fingerprints)
        if func is OPAQUE or owner is OPAQUE:
            return OPAQUE
        return ("method", func, owner)
    if callable(value):
        return _callable_token(value, _fingerprints)
    rendered = repr(value)
    if _ADDR_RE.search(rendered):
        return OPAQUE
    return ("repr", type(value).__name__, rendered)


import functools  # noqa: E402  (kept close to its single use)

functools_partial_types = (functools.partial,)


def _data_token(value: Any, fingerprints: dict | None) -> Any:
    """Fingerprint a data value, memoized per planning pass by ``id``.

    The memo is scoped to one identity computation: repeated hashing of
    a multi-chunk source frame costs one pass, while mutation *between*
    runs (a fresh memo) is still detected.
    """
    if fingerprints is not None:
        cached = fingerprints.get(id(value))
        if cached is not None:
            return cached if cached is not OPAQUE else OPAQUE
    fp = value_fingerprint(value)
    token = ("data", fp) if fp is not None else OPAQUE
    if fingerprints is not None:
        fingerprints[id(value)] = token if fp is not None else OPAQUE
    return token


def _code_token(code: types.CodeType,
                fingerprints: dict | None) -> Any:
    consts = []
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            inner = _code_token(const, fingerprints)
            if inner is OPAQUE:
                return OPAQUE
            consts.append(inner)
        else:
            canon = canonical_param(const, fingerprints)
            if canon is OPAQUE:
                return OPAQUE
            consts.append(canon)
    return ("code", code.co_name, code.co_code.hex(), tuple(consts),
            code.co_names, code.co_varnames[:code.co_argcount])


def _callable_token(func: Callable, fingerprints: dict | None) -> Any:
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", getattr(func, "__name__", None))
    code = getattr(func, "__code__", None)
    if code is None:
        # builtins / NumPy ufuncs: module+name is the whole identity.
        if module is None or qualname is None:
            return OPAQUE
        return ("builtin", module, qualname)
    code_tok = _code_token(code, fingerprints)
    if code_tok is OPAQUE:
        return OPAQUE
    cells = []
    for cell in func.__closure__ or ():
        try:
            contents = cell.cell_contents
        except ValueError:  # empty cell
            cells.append(("cell", "empty"))
            continue
        canon = canonical_param(contents, fingerprints)
        if canon is OPAQUE:
            return OPAQUE
        cells.append(canon)
    defaults = canonical_param(tuple(func.__defaults__ or ()), fingerprints)
    if defaults is OPAQUE:
        return OPAQUE
    return ("fn", module, qualname, code_tok, tuple(cells), defaults)


# ---------------------------------------------------------------------------
# chunk identities: the content-addressed cache keys
# ---------------------------------------------------------------------------

#: operator attributes that are graph plumbing, not parameters.
_SKIP_ATTRS = frozenset({"params", "inputs", "outputs", "stage"})


def _op_token(op: Any, fingerprints: dict) -> Any:
    """Canonical token of one operator: class, stage, params, data attrs.

    Data-bearing instance attributes outside ``params`` (e.g. the source
    frame a ``FromFrameSlice`` holds) are captured by walking
    ``vars(op)`` — that is where source-content fingerprints enter the
    identity.
    """
    parts: list[Any] = [
        ("op", type(op).__module__, type(op).__qualname__),
        ("stage", op.stage),
    ]
    attrs = dict(vars(op))
    for name in sorted(attrs):
        if name in _SKIP_ATTRS or name.startswith("_"):
            continue
        canon = canonical_param(attrs[name], fingerprints)
        if canon is OPAQUE:
            return OPAQUE
        parts.append((name, canon))
    canon_params = canonical_param(op.params, fingerprints)
    if canon_params is OPAQUE:
        return OPAQUE
    parts.append(("params", canon_params))
    return tuple(parts)


def compute_chunk_identities(
    chunks_in_order: Iterable[Any],
    known: dict[str, tuple[Optional[str], tuple]] | None = None,
) -> tuple[dict[str, Optional[str]], dict[str, frozenset]]:
    """Content-addressed identity of every chunk, in one topological pass.

    ``chunks_in_order`` must be topologically ordered chunk data nodes
    (producers before consumers). ``known`` resolves boundary chunks —
    materialized sources whose producing inputs are not in the graph —
    to ``(identity, ancestor identities)`` recorded by an earlier pass.

    Returns ``(identities, ancestors)``: runtime chunk key → identity
    hex digest (``None`` = uncacheable) and runtime chunk key → the
    frozenset of all ancestor identities (the cache's invalidation
    edges). A ``None`` identity poisons every downstream chunk.
    """
    known = known or {}
    identities: dict[str, Optional[str]] = {}
    ancestors: dict[str, frozenset] = {}
    fingerprints: dict[int, Any] = {}
    memo_ops: dict[int, Any] = {}
    for chunk in chunks_in_order:
        key = chunk.key
        resolved = known.get(key)
        if resolved is not None and resolved[0] is not None:
            identities[key] = resolved[0]
            ancestors[key] = frozenset(resolved[1])
            continue
        op = chunk.op
        if op is None:
            identities[key] = None
            ancestors[key] = frozenset()
            continue
        dep_idents: list[str] = []
        dep_anc: set[str] = set()
        poisoned = False
        for dep in op.inputs:
            ident = identities.get(dep.key)
            if ident is None:
                dep_resolved = known.get(dep.key)
                if dep_resolved is not None and dep_resolved[0] is not None:
                    ident = dep_resolved[0]
                    identities[dep.key] = ident
                    ancestors[dep.key] = frozenset(dep_resolved[1])
            if ident is None:
                poisoned = True
                break
            dep_idents.append(ident)
            dep_anc.add(ident)
            dep_anc.update(ancestors.get(dep.key, ()))
        if poisoned:
            identities[key] = None
            ancestors[key] = frozenset()
            continue
        op_tok = memo_ops.get(id(op))
        if op_tok is None:
            op_tok = _op_token(op, fingerprints)
            memo_ops[id(op)] = op_tok
        if op_tok is OPAQUE:
            identities[key] = None
            ancestors[key] = frozenset()
            continue
        out_pos = 0
        for i, out in enumerate(op.outputs):
            if out.key == key:
                out_pos = i
                break
        identities[key] = tokenize(
            op_tok, ("index", chunk.index), ("out", out_pos),
            ("deps", tuple(dep_idents)),
        )
        ancestors[key] = frozenset(dep_anc)
    return identities, ancestors
