"""``repro.learn`` — scikit-learn-style ML on the distributed engine.

The paper's Fig. 1 places "distributed machine learning" on top of
Tensor/DataFrame; this package demonstrates the pattern: estimators whose
``fit`` is a map-combine-reduce job over tensor blocks and whose
``predict``/``transform`` is a per-block map.
"""

from .cluster import KMeans
from .linear import LinearRegression, Ridge
from .metrics import (
    accuracy_score,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
)
from .preprocessing import (
    MinMaxScaler,
    StandardScaler,
    add_bias_column,
    train_test_split,
)

__all__ = [
    "KMeans",
    "LinearRegression",
    "MinMaxScaler",
    "Ridge",
    "StandardScaler",
    "accuracy_score",
    "add_bias_column",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "train_test_split",
]
