"""Distributed model-quality metrics (reductions over prediction tensors)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor


def _flatten(t: Tensor) -> Tensor:
    """1-column predictions come back as (n, 1); compare as columns."""
    return t


def _paired(y_true: Tensor, y_pred: Tensor):
    if y_true.data.shape[0] != y_pred.data.shape[0]:
        raise ValueError("y_true and y_pred differ in length")
    true_values = y_true.fetch().ravel()
    pred_values = y_pred.fetch().ravel()
    return true_values, pred_values


def mean_squared_error(y_true: Tensor, y_pred: Tensor) -> float:
    true_values, pred_values = _paired(y_true, y_pred)
    return float(np.mean((true_values - pred_values) ** 2))


def mean_absolute_error(y_true: Tensor, y_pred: Tensor) -> float:
    true_values, pred_values = _paired(y_true, y_pred)
    return float(np.mean(np.abs(true_values - pred_values)))


def r2_score(y_true: Tensor, y_pred: Tensor) -> float:
    true_values, pred_values = _paired(y_true, y_pred)
    ss_res = float(((true_values - pred_values) ** 2).sum())
    ss_tot = float(((true_values - true_values.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0 if ss_res else 1.0
    return 1.0 - ss_res / ss_tot


def accuracy_score(y_true: Tensor, y_pred: Tensor) -> float:
    true_values, pred_values = _paired(y_true, y_pred)
    return float(np.mean(true_values == pred_values))
