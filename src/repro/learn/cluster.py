"""Distributed K-Means (Lloyd's algorithm).

Each iteration is one distributed job: per-block assignment + per-cluster
partial sums (map), a combine tree, and a driver-side centroid update —
the map-combine-reduce shape of everything else in the engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..tensor import Tensor
from ..tensor.linalg import _tall_skinny_layout
from ..utils import batched


def _assign(block: np.ndarray, centers: np.ndarray) -> np.ndarray:
    distances = ((block[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1)


class KMeansStep(Operator):
    """One tileable-level Lloyd iteration: returns per-cluster sums/counts."""

    def __init__(self, centers: np.ndarray, **params):
        super().__init__(**params)
        self.centers = centers

    def tile(self, ctx: TileContext):
        x = self.inputs[0]
        if x.ndim != 2:
            raise TilingError("kmeans requires a 2-D tensor")
        blocks, _ = _tall_skinny_layout(ctx, x)
        level = []
        for block in blocks:
            op = KMeansPartial(centers=self.centers, role="map")
            level.append(op.new_chunk([block], "scalar", (), ()))
        while len(level) > 1:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = KMeansPartial(centers=self.centers, role="combine")
                next_level.append(op.new_chunk(list(batch), "scalar", (), ()))
            level = next_level
        return [(level, ((),))]


class KMeansPartial(Operator):
    def __init__(self, centers: np.ndarray, role: str, **params):
        super().__init__(**params)
        self.centers = centers
        self.role = role

    def execute(self, ctx: ExecContext):
        if self.role == "map":
            block = ctx.get(self.inputs[0].key)
            labels = _assign(block, self.centers)
            k = len(self.centers)
            sums = np.zeros_like(self.centers)
            counts = np.zeros(k, dtype=np.int64)
            inertia = 0.0
            for cluster in range(k):
                members = block[labels == cluster]
                if len(members):
                    sums[cluster] = members.sum(axis=0)
                    counts[cluster] = len(members)
                    inertia += float(
                        ((members - self.centers[cluster]) ** 2).sum()
                    )
            return {"sums": sums, "counts": counts, "inertia": inertia}
        parts = [ctx.get(c.key) for c in self.inputs]
        return {
            "sums": sum(p["sums"] for p in parts),
            "counts": sum(p["counts"] for p in parts),
            "inertia": sum(p["inertia"] for p in parts),
        }


class KMeans:
    """Lloyd's K-Means over a distributed tensor."""

    def __init__(self, n_clusters: int = 8, max_iter: int = 20,
                 tol: float = 1e-4, seed: Optional[int] = 0):
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    def fit(self, x: Tensor) -> "KMeans":
        n, k = x.data.shape
        if n < self.n_clusters:
            raise ValueError("fewer rows than clusters")
        head = x[: min(max(self.n_clusters * 20, 100), n)].fetch()
        rng = np.random.default_rng(self.seed)
        pick = rng.choice(len(head), size=self.n_clusters, replace=False)
        centers = np.asarray(head[pick], dtype=np.float64)

        session = x.session
        for iteration in range(self.max_iter):
            op = KMeansStep(centers=centers)
            out = op.new_tileable([x.data], "scalar", ())
            (stats,) = session.execute(out)
            counts = stats["counts"]
            sums = stats["sums"]
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                if counts[cluster]:
                    new_centers[cluster] = sums[cluster] / counts[cluster]
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            self.inertia_ = stats["inertia"]
            self.n_iter_ = iteration + 1
            if shift <= self.tol:
                break
        self.cluster_centers_ = centers
        return self

    def predict(self, x: Tensor) -> Tensor:
        if self.cluster_centers_ is None:
            raise RuntimeError("model is not fitted")
        centers = self.cluster_centers_
        return x.map_blocks(
            lambda block: _assign(block, centers).reshape(-1, 1).astype(
                np.float64
            ),
            out_cols=1, out_dtype=np.float64,
        )

    def fit_predict(self, x: Tensor) -> Tensor:
        return self.fit(x).predict(x)
