"""Distributed linear models via block-summed normal equations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..tensor import Tensor
from ..tensor.linalg import (
    NormalEquationsCombine,
    NormalEquationsMap,
    _tall_skinny_layout,
)
from ..tensor.rechunk import rechunk_chunks
from ..utils import batched
from .preprocessing import add_bias_column


class RidgeSolve(Operator):
    """Final stage: solve (XᵀX + αI) β = Xᵀy."""

    def __init__(self, alpha: float, **params):
        super().__init__(**params)
        self.alpha = float(alpha)

    def execute(self, ctx: ExecContext):
        parts = [ctx.get(c.key) for c in self.inputs]
        xtx = parts[0]["xtx"]
        xty = parts[0]["xty"]
        for part in parts[1:]:
            xtx = xtx + part["xtx"]
            xty = xty + part["xty"]
        if self.alpha:
            xtx = xtx + self.alpha * np.eye(xtx.shape[0])
        return np.linalg.solve(xtx, xty)


class RegularizedLstSq(Operator):
    """Tileable op: normal equations with an optional ridge penalty."""

    def __init__(self, alpha: float = 0.0, **params):
        super().__init__(**params)
        self.alpha = float(alpha)

    def tile(self, ctx: TileContext):
        x, y = self.inputs
        if x.ndim != 2 or y.ndim != 1:
            raise TilingError("expects X (2-D) and y (1-D)")
        n_cols = x.shape[1]
        x_blocks, x_nsplits = _tall_skinny_layout(ctx, x)
        y_chunks = list(y.chunks)
        if y.nsplits[0] != x_nsplits[0]:
            y_chunks = rechunk_chunks(y.chunks, y.nsplits, (x_nsplits[0],),
                                      y.dtype)
        level = []
        for xb, yb in zip(x_blocks, y_chunks):
            op = NormalEquationsMap()
            level.append(op.new_chunk([xb, yb], "scalar", (), ()))
        while len(level) > ctx.config.combine_arity:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = NormalEquationsCombine()
                next_level.append(op.new_chunk(list(batch), "scalar", (), ()))
            level = next_level
        solve = RidgeSolve(alpha=self.alpha)
        beta = solve.new_chunk(level, "tensor", (n_cols,), (0,),
                               dtype=np.float64)
        return [([beta], ((n_cols,),))]


class LinearRegression:
    """Ordinary least squares with an optional intercept.

    ``fit`` runs entirely distributed: per-block XᵀX / Xᵀy partials, a
    combine tree, and one small solve. ``predict`` is a distributed
    matrix-vector product.
    """

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def _design(self, x: Tensor) -> Tensor:
        return add_bias_column(x) if self.fit_intercept else x

    def fit(self, x: Tensor, y: Tensor) -> "LinearRegression":
        design = self._design(x)
        op = RegularizedLstSq(alpha=self._alpha())
        out = op.new_tileable(
            [design.data, y.data], "tensor", (design.data.shape[1],),
            dtype=np.float64,
        )
        beta = Tensor(out, x._session).fetch()
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        return self

    def _alpha(self) -> float:
        return 0.0

    def predict(self, x: Tensor) -> Tensor:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        coef, intercept = self.coef_, self.intercept_
        out = x.map_blocks(
            lambda block: (block @ coef + intercept).reshape(-1, 1),
            out_cols=1, out_dtype=np.float64,
        )
        return out

    def score(self, x: Tensor, y: Tensor) -> float:
        """Coefficient of determination R² on the given data."""
        from .metrics import r2_score

        return r2_score(y, self.predict(x))


class Ridge(LinearRegression):
    """L2-regularized least squares."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        super().__init__(fit_intercept=fit_intercept)
        self.alpha = float(alpha)

    def _alpha(self) -> float:
        return self.alpha
