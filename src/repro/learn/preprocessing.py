"""Distributed preprocessing: train/test split and feature scaling.

The paper positions Xorbits' Tensor/DataFrame as the substrate for
scaling scikit-learn-style ML (Section III-B, Fig. 1); this module shows
what that looks like: estimators whose ``fit`` runs as distributed
reductions and whose ``transform`` is an elementwise chunk map.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from ..tensor.core import tensor_from_numpy


def train_test_split(x: Tensor, y: Tensor, test_fraction: float = 0.25):
    """Split row-aligned tensors into train/test parts by row ranges.

    Rows are split positionally (``shuffle=False`` semantics): the first
    ``test_fraction`` of rows form the test set. Both outputs are
    row-range slices — chunk views, no driver-side materialization.
    Randomly generated / ingested data is already row-order-neutral;
    otherwise permute before distributing.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = x.data.shape[0]
    if y.data.shape[0] != n:
        raise ValueError("X and y must have equal row counts")
    n_test = min(max(int(round(n * test_fraction)), 1), n - 1)
    return x[n_test:], x[:n_test], y[n_test:], y[:n_test]


class StandardScaler:
    """Column-wise standardization: (x − mean) / std.

    ``fit`` runs two distributed axis-0 reductions; ``transform`` is an
    elementwise map over full-width row blocks.
    """

    def __init__(self):
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x: Tensor) -> "StandardScaler":
        n = x.data.shape[0]
        mean = x.mean(axis=0).fetch()
        sq_mean = (x * x).mean(axis=0).fetch()
        var = np.maximum(sq_mean - mean * mean, 0.0) * n / max(n - 1, 1)
        scale = np.sqrt(var)
        scale[scale == 0.0] = 1.0
        self.mean_ = np.asarray(mean, dtype=np.float64)
        self.scale_ = np.asarray(scale, dtype=np.float64)
        return self

    def transform(self, x: Tensor) -> Tensor:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        mean, scale = self.mean_, self.scale_
        return x.map_blocks(lambda block: (block - mean) / scale,
                            out_cols=x.data.shape[1], out_dtype=np.float64)

    def fit_transform(self, x: Tensor) -> Tensor:
        return self.fit(x).transform(x)


class MinMaxScaler:
    """Column-wise rescaling to [0, 1]."""

    def __init__(self):
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, x: Tensor) -> "MinMaxScaler":
        lo = np.asarray(x.min(axis=0).fetch(), dtype=np.float64)
        hi = np.asarray(x.max(axis=0).fetch(), dtype=np.float64)
        span = hi - lo
        span[span == 0.0] = 1.0
        self.min_ = lo
        self.range_ = span
        return self

    def transform(self, x: Tensor) -> Tensor:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
        lo, span = self.min_, self.range_
        return x.map_blocks(lambda block: (block - lo) / span,
                            out_cols=x.data.shape[1], out_dtype=np.float64)

    def fit_transform(self, x: Tensor) -> Tensor:
        return self.fit(x).transform(x)


def add_bias_column(x: Tensor) -> Tensor:
    """Append a constant 1.0 column (the intercept feature)."""
    k = x.data.shape[1]
    return x.map_blocks(
        lambda block: np.hstack([block, np.ones((block.shape[0], 1))]),
        out_cols=k + 1, out_dtype=np.float64,
    )
