"""Engine configuration.

A single :class:`Config` object travels with every session. It controls the
chunk-size limit used by tiling (Section IV), the feature switches that the
ablation benchmarks flip (dynamic tiling, graph-level fusion, operator-level
fusion, auto merge, column pruning, locality-aware scheduling), the simulated
cluster shape, and the cost model of the discrete-event simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


MiB = 1024 * 1024
GiB = 1024 * MiB


@dataclass
class CostModel:
    """Virtual-time cost model for the discrete-event simulation.

    A subtask executed on a band costs::

        subtask_overhead
        + cpu_bytes / (compute_bandwidth * threads_per_band)
        + remote_input_bytes / network_bandwidth

    All bandwidths are bytes per simulated second. The defaults are loosely
    calibrated to the paper's r6i instances (memory-bound dataframe kernels
    around a few GiB/s per core; 10-25 GbE network).
    """

    compute_bandwidth: float = 2.0 * GiB
    network_bandwidth: float = 1.0 * GiB
    subtask_overhead: float = 0.002
    #: extra virtual seconds charged per graph node during graph
    #: construction/dispatch; makes "too many tiny chunks" measurably bad.
    dispatch_overhead: float = 0.0005
    #: multiplier on bytes for shuffle writes (serialize + hash partition).
    shuffle_write_factor: float = 1.5
    #: disk tier is this many times slower than memory.
    disk_penalty: float = 8.0


@dataclass
class FaultSpec:
    """Deterministic fault-injection plan (chaos testing, recovery bench).

    All rates are per-draw probabilities in ``[0, 1]``. Draws are seeded
    hashes of *structural* identities — (stage index, topological
    position, attempt) — never of runtime keys or call order, so for one
    seed the same faults fire in serial and parallel execution mode
    (bit-identical ``SimReport``) and across separate sessions running
    the same workload.
    """

    seed: int = 0
    #: probability that a subtask attempt fails before doing any work.
    compute_fault_rate: float = 0.0
    #: probability that a stored output chunk is lost right after its
    #: producing subtask completes (models async storage loss).
    chunk_loss_rate: float = 0.0
    #: probability that the worker that just ran a subtask crashes,
    #: losing every recomputable chunk it stores.
    worker_kill_rate: float = 0.0
    #: per-subtask budget of re-attempts before RetriesExhausted.
    max_retries: int = 3
    #: first retry waits this many virtual seconds ...
    backoff_base: float = 0.05
    #: ... growing by this factor per subsequent retry.
    backoff_factor: float = 2.0
    #: virtual seconds a killed worker's bands are unavailable while the
    #: process restarts.
    worker_restart_time: float = 0.25
    #: probability that a worker's memory budget is transiently squeezed
    #: (multiplied by ``memory_squeeze_factor``) for the duration of one
    #: subtask's admission/execution — models a neighbour process eating
    #: RAM. Drawn on the same structural identity as the other faults.
    memory_squeeze_rate: float = 0.0
    #: the squeezed budget is ``factor * limit`` while the fault is active.
    memory_squeeze_factor: float = 0.5

    @property
    def any_rate(self) -> bool:
        return (self.compute_fault_rate > 0.0 or self.chunk_loss_rate > 0.0
                or self.worker_kill_rate > 0.0
                or self.memory_squeeze_rate > 0.0)


@dataclass
class MessageFaultSpec:
    """Deterministic message-level chaos for the actor plane.

    Rates are per-message probabilities in ``[0, 1]`` applied to mutating
    service RPCs that carry a dedup token (``storage.put_many``,
    ``shuffle.register_partitions``, ``lifecycle.finish_subtask``,
    ``cache.record_many``). Draws hash the token — minted on the
    deterministic accounting walk — through ``structural_draw``, never the
    delivery order, so for one seed the same messages are dropped, delayed
    and duplicated in serial, thread and process execution mode.

    The delivery layer is at-least-once and the endpoints are idempotent:
    a dropped message is retransmitted, a duplicated one is suppressed by
    the endpoint's dedup log, so effective state transitions happen exactly
    once and ``SimReport`` stays bit-identical to the fault-free run.
    """

    seed: int = 0
    #: probability that a message's first transmission is dropped (the
    #: at-least-once layer retransmits it).
    drop_rate: float = 0.0
    #: probability that a message is delivered late (recorded for the
    #: chaos report; synchronous RPC semantics are preserved).
    delay_rate: float = 0.0
    #: probability that a message is delivered twice (the endpoint's
    #: dedup token suppresses the second application).
    duplicate_rate: float = 0.0

    @property
    def any_rate(self) -> bool:
        return (self.drop_rate > 0.0 or self.delay_rate > 0.0
                or self.duplicate_rate > 0.0)


@dataclass
class ClusterSpec:
    """Shape of the simulated cluster."""

    n_workers: int = 4
    bands_per_worker: int = 2
    threads_per_band: int = 16
    memory_limit: int = 4 * GiB  # per worker

    @property
    def n_bands(self) -> int:
        return self.n_workers * self.bands_per_worker


@dataclass
class Config:
    """All tunables of the engine, with paper-faithful defaults."""

    # --- tiling -----------------------------------------------------------
    #: upper bound on the byte size of a chunk (the paper's predefined
    #: "chunk size limit" used by auto merge and auto rechunk).
    chunk_store_limit: int = 64 * MiB
    #: how many head chunks dynamic tiling executes to collect metadata.
    sample_chunks: int = 2
    #: aggregated-size threshold (bytes) under which tree-reduce is chosen
    #: over shuffle-reduce (Section IV-C, "Auto Reduce Selection").
    tree_reduce_threshold: int = 32 * MiB
    #: fan-in of one combine stage node (tree-reduce arity).
    combine_arity: int = 4

    # --- feature switches (ablations flip these) ---------------------------
    dynamic_tiling: bool = True
    graph_fusion: bool = True
    operator_fusion: bool = True
    column_pruning: bool = True
    auto_merge: bool = True
    combine_stage: bool = True
    locality_scheduling: bool = True
    spill_to_disk: bool = True
    #: run independent subtasks' kernels concurrently on a thread pool
    #: with one logical slot per band (NumPy kernels release the GIL).
    #: Virtual-time accounting stays deterministic: SimReport numbers are
    #: identical in serial and parallel mode (see DESIGN.md §Execution
    #: engine). The serial topological walk remains as fallback.
    parallel_execution: bool = True
    #: below this many subtasks the thread-pool band runner falls back to
    #: the serial walk — dispatcher overhead would exceed any overlap win.
    parallel_min_subtasks: int = 8
    #: minimum host CPU count for the band runner: on fewer cores kernels
    #: cannot actually overlap, so serial is never slower.
    parallel_min_cores: int = 2
    #: how parallel-stage kernels run: "thread" keeps them on the shared
    #: band-runner thread pool (NumPy/BLAS kernels overlap, pure-Python
    #: ones serialize on the GIL); "process" routes the compute phase of
    #: each subtask through the per-cluster worker process pool
    #: (``repro.core.procpool``) so pure-Python/pandas kernels genuinely
    #: overlap. Accounting stays on the dispatching thread either way —
    #: SimReport numbers are bit-identical across all three modes.
    execution_mode: str = "thread"
    #: size of the shared band-runner thread pool (0 = host cpu count).
    #: Threads are reused across sessions; tests shrink this to keep the
    #: serial-heavy suite from pinning idle threads.
    band_runner_threads: int = 0
    #: worker processes in the per-cluster process pool (0 = cpu count).
    procpool_workers: int = 0
    #: chunk payloads at or above this many bytes cross the process
    #: boundary through one shared-memory segment (pickle protocol-5
    #: out-of-band buffers, zero-copy on receive); smaller payloads ship
    #: as inline pickle bytes — the copy is cheaper than an shm segment.
    procpool_inline_threshold: int = 64 * 1024
    #: start method for pool workers. "spawn" is the only mode safe to
    #: combine with the band-runner threads that submit work.
    procpool_start_method: str = "spawn"
    #: compile eligible fused elementwise/filter chains into a single
    #: generated evaluator (one call per step, intermediates in locals —
    #: the numexpr-style single pass of Section V-A). Off falls back to
    #: interpreting the fused step one operator at a time.
    compiled_fusion: bool = True
    #: physical chunk representation (``repro.engine`` registry key):
    #: "row" keeps chunks as ``repro.frame`` containers (bit-identical
    #: to the pre-seam engine and the golden scenarios); "columnar"
    #: stores per-column contiguous arrays with dictionary-encoded
    #: string columns — value-identical results, fewer shuffle bytes on
    #: low-cardinality string keys, byte counters reported per-engine.
    chunk_engine: str = "row"
    #: array-at-a-time partition kernels for the shuffle data plane
    #: (hash/range partition ids + single-sweep chunk splitting). Off
    #: selects the scalar per-row reference path, which produces
    #: bit-identical partitions — this switch only trades wall-clock.
    vectorized_shuffle: bool = True
    #: pre-aggregate each mapper's partition input before it hits storage
    #: (groupby shuffle-reduce only): shuffle bytes then shrink with key
    #: cardinality instead of row count.
    mapper_side_combine: bool = True
    #: release chunks once their last consumer ran (reference counting).
    #: Eager engines (Modin-like) materialize and pin every intermediate
    #: result instead — the accumulation that kills their workers at scale.
    eager_release: bool = True
    #: memory-pressure backpressure: before a subtask starts, its
    #: estimated footprint must be granted by the per-worker
    #: ``MemoryAdmission`` ledger; when concurrent working sets would
    #: exceed the worker budget the subtask *waits* in virtual time
    #: (``admission_wait_time``) instead of dispatching into an OOM.
    #: Off reproduces the seed engine's dispatch-and-pray behaviour.
    admission_control: bool = True
    #: OOM recovery ladder: on WorkerOutOfMemory escalate through
    #: force-spill → reschedule to the freest worker → degrade the worker
    #: to serial execution → memory-aware re-tiling. Off makes OOM fatal
    #: (the seed behaviour).
    oom_recovery: bool = True
    #: how many times a session may halve ``chunk_store_limit`` and
    #: re-tile after the executor's OOM ladder is exhausted.
    pressure_retile_limit: int = 3

    # --- result cache -------------------------------------------------------
    #: content-addressed result cache: subtasks whose structural identity
    #: (operator chain + parameters + source fingerprints) already has a
    #: live stored result are pruned from the execution graph and their
    #: consumers rewired to the cached chunks. Off by default — the
    #: golden scenarios pin the uncached engine bit-for-bit.
    result_cache: bool = False
    #: with the cache on, record *every* terminal chunk (automatic
    #: cross-run reuse); off records only tileables that called
    #: ``.cache()`` explicitly. Lookups always run while the cache is on.
    result_cache_auto: bool = True
    #: byte budget for auto-cached results; the least-recently-hit
    #: entries are dropped (and their chunks freed) when recording past
    #: it. Explicit ``.cache()`` entries never count as eviction victims.
    result_cache_budget: int = 256 * MiB

    # --- multi-tenant serving -----------------------------------------------
    #: weighted fair-share dispatch weight of this session on a shared
    #: cluster: a weight-2 tenant gets stage turns twice as often as a
    #: weight-1 tenant (stride scheduling over stage grants). Ignored by
    #: sessions that own their cluster.
    tenant_weight: float = 1.0
    #: fraction of each worker's memory budget this session's admission
    #: grants may hold concurrently on a shared cluster (``0`` = no
    #: per-tenant cap, only the worker-wide budget applies). A tenant at
    #: its quota waits in virtual time without stalling other tenants'
    #: admitted subtasks.
    tenant_memory_quota: float = 0.0
    #: serve concurrent sessions in weighted fair-share order (stride
    #: scheduling at stage granularity). Off degrades to FIFO arrival
    #: order on the shared scheduling turnstile.
    fair_share: bool = True

    # --- actor-plane supervision & chaos ------------------------------------
    #: deterministic message-level chaos on the service actor plane (all
    #: rates default to zero = off; goldens are untouched).
    message_faults: MessageFaultSpec = field(default_factory=MessageFaultSpec)
    #: virtual seconds between expected runner heartbeats; the health
    #: monitor declares a runner dead after ``heartbeat_miss_limit``
    #: missed beats. ``0`` disables liveness tracking.
    heartbeat_interval: float = 1.0
    heartbeat_miss_limit: int = 3
    #: per-uid restart budget: the supervisor refuses to restart one actor
    #: more than this many times (restart-storm limiting).
    restart_limit: int = 5
    #: speculative straggler re-execution: when a parallel-stage subtask
    #: overruns its EWMA-derived deadline, dispatch a duplicate and commit
    #: whichever finishes first on the accounting walk. Off by default —
    #: it trades duplicate CPU for tail latency and only touches
    #: wall-clock, never SimReport numbers.
    speculation: bool = False
    #: a subtask's deadline is ``multiplier * ewma(observed durations)``,
    #: floored at ``speculation_min_seconds`` of wall-clock.
    speculation_multiplier: float = 4.0
    speculation_min_seconds: float = 0.2
    #: wall-clock seconds per dispatcher watchdog window: the accounting
    #: walk re-checks liveness at this period while blocked on a subtask
    #: and raises ``DispatcherStall`` after two consecutive windows with
    #: zero completions.
    dispatch_watchdog_timeout: float = 60.0

    # --- cluster & costs ----------------------------------------------------
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    cost_model: CostModel = field(default_factory=CostModel)
    #: deterministic fault injection (all rates default to zero = off).
    faults: FaultSpec = field(default_factory=FaultSpec)

    #: working-set multiplier: executing a subtask needs roughly
    #: ``peak_factor * (input_bytes + output_bytes)`` free memory.
    peak_factor: float = 1.5

    #: hang detection: abort after this many simulated scheduler steps
    #: without completing a subtask.
    max_idle_steps: int = 10_000

    def copy(self, **overrides) -> "Config":
        """Return a deep copy with ``overrides`` applied.

        Nested dataclass fields (``cluster``, ``cost_model``) accept either a
        replacement instance or are copied as-is.
        """
        new = dataclasses.replace(
            self,
            cluster=dataclasses.replace(self.cluster),
            cost_model=dataclasses.replace(self.cost_model),
            faults=dataclasses.replace(self.faults),
            message_faults=dataclasses.replace(self.message_faults),
        )
        for key, value in overrides.items():
            if not hasattr(new, key):
                raise AttributeError(f"unknown config field {key!r}")
            setattr(new, key, value)
        return new


def default_config() -> Config:
    """A fresh :class:`Config` with default values."""
    return Config()


def calibrate_cost_model(config: Config, data_bytes: int,
                         seconds_per_pass: float = 8.0) -> Config:
    """Scale the virtual bandwidths to the dataset being processed.

    The repository runs the paper's workloads at ~1000x smaller data, so
    with real-world bandwidths compute time would vanish under fixed
    per-subtask overheads and every engine would look alike. Calibration
    preserves the paper's *regime*: one full pass over the dataset on a
    single band costs ``seconds_per_pass`` virtual seconds, and the
    network moves data ~16x slower than a band computes over it (the
    r6i-instance ratio). Skew, locality, and fusion effects then have the
    same relative weight they had on the real cluster.
    """
    if data_bytes <= 0:
        raise ValueError("data_bytes must be positive")
    # bandwidth is defined per *thread* against a fixed reference band
    # (16 threads), so single-threaded profiles (pandas) remain slower by
    # exactly their thread deficit.
    reference_threads = 16
    band_bandwidth = data_bytes / seconds_per_pass
    config.cost_model.compute_bandwidth = max(
        band_bandwidth / reference_threads, 1.0
    )
    config.cost_model.network_bandwidth = max(band_bandwidth / 16.0, 1.0)
    return config
