"""Remote distributed-filesystem backend — StorageLevel.REMOTE.

Stands in for Alluxio/Vineyard-style remote tiers: shared by every worker,
so a ``get`` from any worker finds the data but always pays a transfer.
"""

from __future__ import annotations

from .base import StorageBackend, StorageLevel


class RemoteBackend(StorageBackend):
    """Cluster-wide remote store, shared across workers."""

    level = StorageLevel.REMOTE
