"""Storage abstractions: levels and the backend interface.

The paper's storage service (Section V-C) hides *where* a chunk lives
behind ``put``/``get`` with a unique key. Backends form a memory hierarchy
(memory, disk, remote filesystem); the service spills across levels.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import IntEnum
from typing import Any


class StorageLevel(IntEnum):
    """Tiers of the memory hierarchy, fastest first."""

    MEMORY = 1
    DISK = 2
    REMOTE = 3


@dataclass
class StoredItem:
    """A value plus its bookkeeping."""

    key: str
    value: Any
    nbytes: int
    level: StorageLevel
    worker: str


@dataclass
class AccessInfo:
    """What a ``get`` cost: bytes moved across the network and the
    slowdown factor of the tier the data was read from."""

    value: Any
    nbytes: int
    transferred_bytes: int = 0
    tier_penalty: float = 1.0
    source_worker: str = ""


class StorageBackend(abc.ABC):
    """One tier's key-value store."""

    level: StorageLevel

    def __init__(self):
        self._items: dict[str, StoredItem] = {}

    def put(self, item: StoredItem) -> None:
        self._items[item.key] = item

    def get(self, key: str) -> StoredItem:
        return self._items[key]

    def delete(self, key: str) -> StoredItem:
        return self._items.pop(key)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def keys(self) -> list[str]:
        return list(self._items)

    def total_bytes(self) -> int:
        return sum(item.nbytes for item in self._items.values())

    def __len__(self) -> int:
        return len(self._items)
