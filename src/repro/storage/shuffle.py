"""Shuffle support on top of the storage service.

Mappers write one partition per reducer into storage under structured
keys; reducers gather all partitions addressed to them. Transfers between
workers are aggregated per (source, destination) pair, modelling the
paper's "aggregating all the shuffling data together to reduce data
transfer overheads" optimization.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..utils import sizeof
from .base import StorageLevel
from .service import StorageService


def shuffle_key(shuffle_id: str, mapper: int, reducer: int) -> str:
    return f"shuffle:{shuffle_id}:{mapper}:{reducer}"


class ShuffleManager:
    """Tracks one session's shuffle datasets."""

    def __init__(self, storage: StorageService):
        self.storage = storage
        #: shuffle_id -> {(mapper, reducer) -> (key, worker, nbytes)}
        self._partitions: dict[str, dict[tuple[int, int], tuple[str, str, int]]] = (
            defaultdict(dict)
        )
        self.total_shuffle_bytes = 0

    def write_partition(self, shuffle_id: str, mapper: int, reducer: int,
                        data: Any, worker: str) -> int:
        """A mapper stores the slice of its output addressed to ``reducer``."""
        key = shuffle_key(shuffle_id, mapper, reducer)
        nbytes = self.storage.put(key, data, worker, level=StorageLevel.MEMORY)
        self._partitions[shuffle_id][(mapper, reducer)] = (key, worker, nbytes)
        self.total_shuffle_bytes += nbytes
        return nbytes

    def mapper_count(self, shuffle_id: str) -> int:
        if shuffle_id not in self._partitions:
            return 0
        return len({m for m, _ in self._partitions[shuffle_id]})

    def gather(self, shuffle_id: str, reducer: int,
               requesting_worker: str) -> tuple[list[Any], int, float]:
        """Collect every partition addressed to ``reducer``.

        Returns ``(values, transferred_bytes, tier_penalty_seconds_factor)``.
        Transfers from the same source worker are aggregated: the per-pair
        fixed overhead is paid once, captured by returning the number of
        distinct source workers alongside raw bytes.
        """
        parts = self._partitions.get(shuffle_id)
        if parts is None:
            return [], 0, 0.0
        values: list[Any] = []
        by_source: dict[str, int] = defaultdict(int)
        max_penalty = 1.0
        for (mapper, r), (key, worker, nbytes) in sorted(parts.items()):
            if r != reducer:
                continue
            info = self.storage.get(key, requesting_worker)
            values.append(info.value)
            if info.transferred_bytes:
                by_source[info.source_worker] += info.transferred_bytes
            max_penalty = max(max_penalty, info.tier_penalty)
        transferred = sum(by_source.values())
        return values, transferred, max_penalty

    def cleanup(self, shuffle_id: str) -> None:
        """Delete every partition of a finished shuffle."""
        parts = self._partitions.pop(shuffle_id, None)
        if not parts:
            return
        for key, _, __ in parts.values():
            self.storage.delete(key)

    def live_bytes(self, shuffle_id: str) -> int:
        parts = self._partitions.get(shuffle_id, {})
        return sum(nbytes for _, __, nbytes in parts.values())
