"""Shuffle support on top of the storage service.

Mappers write one partition per reducer into storage under structured
keys; reducers gather all partitions addressed to them. Transfers between
workers are aggregated per (source, destination) pair, modelling the
paper's "aggregating all the shuffling data together to reduce data
transfer overheads" optimization.

Partitions are indexed by ``(shuffle_id, reducer)``: a reducer's gather
touches exactly its own mapper list — O(M) for M mappers — instead of
scanning every ``(mapper, reducer)`` entry of the dataset, and the
storage reads for one gather happen as a single batched
:meth:`StorageService.get_many` call.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..utils import DedupLog
from .base import StorageLevel
from .service import StorageService


def shuffle_key(shuffle_id: str, mapper: int, reducer: int) -> str:
    return f"shuffle:{shuffle_id}:{mapper}:{reducer}"


class ShuffleManager:
    """Tracks one session's shuffle datasets, indexed by reducer."""

    def __init__(self, storage: StorageService):
        self.storage = storage
        #: shuffle_id -> reducer -> [(mapper, key, worker, nbytes), ...]
        self._by_reducer: dict[str, dict[int, list[tuple[int, str, str, int]]]] = {}
        #: shuffle_id -> set of mapper ids that registered a partition.
        self._mappers: dict[str, set[int]] = {}
        #: storage key -> (shuffle_id, reducer), for O(1) forget on free.
        self._key_index: dict[str, tuple[str, int]] = {}
        self.total_shuffle_bytes = 0
        #: diagnostics: partition entries examined across all gathers.
        #: Reducer indexing keeps this at sum(M) instead of sum(M x R).
        self.gather_scanned = 0
        #: diagnostics: storage reads issued by gathers (== scanned).
        self.gather_fetches = 0
        #: diagnostics: partitions registered again under a key that was
        #: already indexed — i.e. mapper re-execution during fault
        #: recovery replacing a stale entry.
        self.reregistered_partitions = 0
        #: memo of applied ``register_partitions`` tokens.
        self._dedup = DedupLog()

    # -- mapper side ------------------------------------------------------
    def register_partition(self, shuffle_id: str, mapper: int, reducer: int,
                           key: str, worker: str, nbytes: int) -> None:
        """Index an already-stored chunk as one shuffle partition.

        The executor calls this for every shuffle-map output chunk it
        stores; re-registering a key (chunk re-execution) replaces the
        stale entry.
        """
        if key in self._key_index:
            self.reregistered_partitions += 1
            self.forget_key(key)
        parts = self._by_reducer.setdefault(shuffle_id, {}).setdefault(
            reducer, []
        )
        parts.append((mapper, key, worker, nbytes))
        self._mappers.setdefault(shuffle_id, set()).add(mapper)
        self._key_index[key] = (shuffle_id, reducer)
        self.total_shuffle_bytes += nbytes

    def register_partitions(self, entries, dedup_token: Any = None) -> None:
        """Batched :meth:`register_partition`.

        ``entries`` is ``(shuffle_id, mapper, reducer, key, worker,
        nbytes)`` tuples — a subtask's shuffle-map outputs index in one
        message.

        Idempotent under at-least-once delivery: a redelivered batch
        (same ``dedup_token``) is a no-op, so duplicates never inflate
        ``total_shuffle_bytes`` or the re-registration counter.
        """
        seen, _ = self._dedup.check(dedup_token)
        if seen:
            return
        for shuffle_id, mapper, reducer, key, worker, nbytes in entries:
            self.register_partition(
                shuffle_id, mapper, reducer, key, worker, nbytes
            )
        self._dedup.record(dedup_token, None)

    def write_partition(self, shuffle_id: str, mapper: int, reducer: int,
                        data: Any, worker: str) -> int:
        """A mapper stores the slice of its output addressed to ``reducer``."""
        key = shuffle_key(shuffle_id, mapper, reducer)
        nbytes = self.storage.put(key, data, worker, level=StorageLevel.MEMORY)
        self.register_partition(shuffle_id, mapper, reducer, key, worker, nbytes)
        return nbytes

    def mapper_count(self, shuffle_id: str) -> int:
        return len(self._mappers.get(shuffle_id, ()))

    # -- reducer side -----------------------------------------------------
    def gather(self, shuffle_id: str, reducer: int,
               requesting_worker: str) -> tuple[list[Any], int, float]:
        """Collect every partition addressed to ``reducer``, mapper order.

        Returns ``(values, transferred_bytes, tier_penalty_factor)``.
        Transfers from the same source worker are aggregated: the per-pair
        fixed overhead is paid once, captured by returning the number of
        distinct source workers alongside raw bytes.
        """
        if shuffle_id not in self._by_reducer:
            return [], 0, 0.0
        parts = sorted(self._by_reducer[shuffle_id].get(reducer, ()))
        self.gather_scanned += len(parts)
        if not parts:
            return [], 0, 1.0
        infos = self.storage.get_many(
            [key for _, key, __, ___ in parts], requesting_worker
        )
        self.gather_fetches += len(infos)
        values: list[Any] = []
        by_source: dict[str, int] = defaultdict(int)
        max_penalty = 1.0
        for info in infos:
            values.append(info.value)
            if info.transferred_bytes:
                by_source[info.source_worker] += info.transferred_bytes
            max_penalty = max(max_penalty, info.tier_penalty)
        transferred = sum(by_source.values())
        return values, transferred, max_penalty

    # -- lifecycle --------------------------------------------------------
    def forget_key(self, key: str) -> None:
        """Drop one partition from the index (its chunk was freed)."""
        location = self._key_index.pop(key, None)
        if location is None:
            return
        shuffle_id, reducer = location
        reducers = self._by_reducer.get(shuffle_id)
        if reducers is None:
            return
        parts = reducers.get(reducer)
        if parts:
            reducers[reducer] = [p for p in parts if p[1] != key]

    def forget_keys(self, keys) -> None:
        """Batched :meth:`forget_key` (refcount frees arrive in bulk)."""
        for key in keys:
            self.forget_key(key)

    def cleanup(self, shuffle_id: str) -> None:
        """Delete every partition of a finished shuffle."""
        reducers = self._by_reducer.pop(shuffle_id, None)
        self._mappers.pop(shuffle_id, None)
        if not reducers:
            return
        for parts in reducers.values():
            for _, key, __, ___ in parts:
                self._key_index.pop(key, None)
                self.storage.delete(key)

    # -- counters (methods, so actor refs can read them) -------------------
    def shuffle_bytes_total(self) -> int:
        return self.total_shuffle_bytes

    def gather_scanned_count(self) -> int:
        return self.gather_scanned

    def gather_fetch_count(self) -> int:
        return self.gather_fetches

    def reregistered_count(self) -> int:
        return self.reregistered_partitions

    def index_size(self) -> int:
        """Partitions currently indexed (0 after a clean run)."""
        return len(self._key_index)

    def live_bytes(self, shuffle_id: str) -> int:
        reducers = self._by_reducer.get(shuffle_id, {})
        return sum(
            nbytes
            for parts in reducers.values()
            for _, __, ___, nbytes in parts
        )
