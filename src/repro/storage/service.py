"""The storage service: a supervisor-side router over per-worker stores.

Responsibilities (Section V-C):

- hold every intermediate chunk produced by subtask execution;
- charge each worker's memory budget, spilling least-recently-used chunks
  to disk when allowed (``config.spill_to_disk``) or raising
  :class:`WorkerOutOfMemory` when not;
- answer ``get`` from any worker, reporting how many bytes crossed the
  network and which tier served the read, so the simulation can charge
  transfer and disk penalties;
- track data location by key so shuffles and locality-aware scheduling
  know where chunks live.

The service plane splits this into two layers.  Each worker's tiers,
LRU ring, pins and spill counters live in a
:class:`~repro.storage.worker.WorkerStorage` unit — fronted by a
per-worker ``StorageActor`` in the actor deployment.  This class is the
supervisor-side *router*: it owns only the key -> owner-worker index,
the remote tier, the transfer ledger, and pin routing; every tier
operation is delegated to the owning worker's unit through its message
interface.  Units are duck-typed — a plain :class:`WorkerStorage` or an
``ActorRef`` to a ``StorageActor`` both work, since the router only ever
calls methods on them.
"""

from __future__ import annotations

import threading
from typing import Any

from ..cluster.cluster import ClusterState
from ..config import Config
from ..errors import StorageKeyError
from ..utils import DedupLog, sizeof
from .base import AccessInfo, StorageLevel, StoredItem
from .remote import RemoteBackend
from .worker import WorkerStorage

#: owner marker for chunks living in the remote (object-store) tier.
REMOTE_OWNER = ""


class StorageService:
    """Cluster-wide chunk routing over worker-local tiered stores."""

    def __init__(self, cluster: ClusterState, config: Config | None = None):
        self.cluster = cluster
        self.config = config if config is not None else cluster.config
        #: guards every location/route mutation and makes each public
        #: operation atomic: the accounting walk owns all *charged*
        #: accesses, but the parallel band runner's compute phase peeks
        #: values concurrently (and a spill may move the peeked item
        #: between tiers mid-read).  Worker units are only ever invoked
        #: under this lock, so they need no locking of their own.
        self._lock = threading.RLock()
        #: worker name -> worker storage handle (plain unit or actor ref).
        self._workers: dict[str, Any] = {
            worker.name: WorkerStorage(worker.name, cluster.memory[worker.name],
                                       self.config)
            for worker in cluster.workers
        }
        self._remote = RemoteBackend()
        #: key -> owner worker name (:data:`REMOTE_OWNER` for remote).
        #: Tier level is worker-local state; ask the owner when needed.
        self._locations: dict[str, str] = {}
        #: key -> pin route stack: one entry per outstanding pin, naming
        #: the worker the pin was routed to (None when the key was not
        #: stored anywhere at pin time).  Pins are counted, so nested
        #: pins (a chunk read by two in-flight subtasks) survive the
        #: first unpin; and they survive delete/re-put — the route stack
        #: is migrated to the new owner so unpin always balances.
        self._pin_routes: dict[str, list[str | None]] = {}
        self._transferred_bytes = 0
        #: memo of applied ``put_many`` tokens (at-least-once delivery).
        self._dedup = DedupLog()

    def use_worker_handles(self, handles: dict[str, Any]) -> None:
        """Swap worker units for actor refs (the service deployment).

        ``handles`` maps worker name -> handle fronting that worker's
        existing :class:`WorkerStorage` state.
        """
        with self._lock:
            unknown = set(handles) - set(self._workers)
            if unknown:
                raise KeyError(f"unknown workers: {sorted(unknown)}")
            self._workers.update(handles)

    def worker_unit(self, worker: str) -> Any:
        """The storage handle owning ``worker``'s tiers."""
        return self._workers[worker]

    # -- writes -----------------------------------------------------------
    def put(self, key: str, value: Any, worker: str,
            level: StorageLevel = StorageLevel.MEMORY,
            nbytes: int | None = None) -> int:
        """Store ``value`` under ``key`` on ``worker``; returns its size.

        A put to MEMORY that does not fit triggers LRU spill-to-disk when
        enabled, otherwise the worker's OOM error propagates. Callers
        that already sized the value pass ``nbytes`` to skip the
        recursive ``sizeof``.
        """
        with self._lock:
            if key in self._locations:
                self.delete(key)
            if nbytes is None:
                nbytes = sizeof(value)
            if level == StorageLevel.REMOTE:
                self._remote.put(StoredItem(key, value, nbytes, level,
                                            REMOTE_OWNER))
                self._locations[key] = REMOTE_OWNER
                self._migrate_pins(key, None)
                return nbytes
            self._workers[worker].put_local(key, value, nbytes, level)
            self._locations[key] = worker
            self._migrate_pins(key, worker)
            return nbytes

    def ensure_free(self, worker: str, nbytes: int) -> None:
        """Spill until ``nbytes`` can be allocated on ``worker``.

        Raises :class:`WorkerOutOfMemory` when spilling cannot make room.
        """
        with self._lock:
            self._workers[worker].ensure_free_local(nbytes)

    def force_spill(self, worker: str) -> int:
        """Evict every unpinned memory-resident chunk of ``worker`` to disk.

        The OOM recovery ladder's first rung: empties the worker's memory
        tier (minus in-flight pins) so the failing subtask can retry in
        place. Returns the bytes moved; the worker charges them to its
        forced-spill counter, not the LRU spill metric.
        """
        with self._lock:
            return self._workers[worker].force_spill_local()

    # -- reads ------------------------------------------------------------
    def get(self, key: str, requesting_worker: str) -> AccessInfo:
        """Fetch a chunk from wherever it lives.

        The returned :class:`AccessInfo` carries the bytes transferred over
        the network (zero for a local read) and the tier penalty (the cost
        model's ``disk_penalty`` for a spilled chunk).
        """
        with self._lock:
            return self._get_locked(key, requesting_worker)

    def get_many(self, keys, requesting_worker: str) -> list[AccessInfo]:
        """Batched :meth:`get`: one lock acquisition for a whole fetch set.

        Subtask input gathering and shuffle reducers read many keys at
        once; fetching them under a single critical section skips the
        per-key lock round-trips without changing any charged number.
        """
        with self._lock:
            return self._get_many_locked(list(keys), requesting_worker)

    def _get_many_locked(self, keys: list[str],
                         requesting_worker: str) -> list[AccessInfo]:
        """Grouped fetch: consecutive same-owner keys become one unit call.

        Runs are *consecutive* on purpose: per-key charging order, the
        owner's LRU touch order, and the exact position a missing key
        raises at all match the per-key loop this replaces — only the
        number of worker-unit messages changes.
        """
        infos: list[AccessInfo] = []
        penalty = self.config.cost_model.disk_penalty
        i, n = 0, len(keys)
        while i < n:
            owner = self._locations.get(keys[i])
            if owner is None or owner == REMOTE_OWNER:
                infos.append(self._get_locked(keys[i], requesting_worker))
                i += 1
                continue
            j = i + 1
            while j < n and self._locations.get(keys[j]) == owner:
                j += 1
            run = keys[i:j]
            for key, (value, nbytes, level) in zip(
                run, self._workers[owner].get_local_many(run)
            ):
                transferred = nbytes if owner != requesting_worker else 0
                self._transferred_bytes += transferred
                infos.append(AccessInfo(
                    value, nbytes, transferred_bytes=transferred,
                    tier_penalty=(penalty if level == StorageLevel.DISK
                                  else 1.0),
                    source_worker=owner,
                ))
            i = j
        return infos

    def acquire_many(self, keys, requesting_worker: str) -> list[AccessInfo]:
        """Pin + fetch a subtask's whole input set in one critical section.

        Pins land first — before any fetch can raise — so the caller's
        unconditional ``finally: unpin(keys)`` always balances, exactly
        as the separate pin-then-get calls it replaces did.
        """
        with self._lock:
            self.pin(keys)
            return self._get_many_locked(list(keys), requesting_worker)

    def _get_locked(self, key: str, requesting_worker: str,
                    touch_lru: bool = True) -> AccessInfo:
        owner = self._locations.get(key)
        if owner is None:
            raise StorageKeyError(key)
        if owner == REMOTE_OWNER:
            item = self._remote.get(key)
            self._transferred_bytes += item.nbytes
            return AccessInfo(item.value, item.nbytes,
                              transferred_bytes=item.nbytes,
                              tier_penalty=self.config.cost_model.disk_penalty,
                              source_worker="<remote>")
        value, nbytes, level = self._workers[owner].get_local(key, touch_lru)
        transferred = nbytes if owner != requesting_worker else 0
        self._transferred_bytes += transferred
        if level == StorageLevel.DISK:
            return AccessInfo(value, nbytes, transferred_bytes=transferred,
                              tier_penalty=self.config.cost_model.disk_penalty,
                              source_worker=owner)
        return AccessInfo(value, nbytes, transferred_bytes=transferred,
                          source_worker=owner)

    def peek(self, key: str) -> Any:
        """Driver-side fetch: charged as a transfer from the owner worker.

        Read-only on the LRU: observing a chunk (``__repr__``,
        ``TileContext.peek``) must not change which chunk gets spilled
        next, or spill victim selection would depend on observation.
        """
        with self._lock:
            return self._get_locked(
                key, requesting_worker="<driver>", touch_lru=False
            ).value

    def peek_value(self, key: str) -> Any:
        """Accounting-free read: no transfer charge, no LRU touch.

        The parallel band runner's compute phase uses this — the charged
        ``get`` for the same key happens later, on the accounting thread,
        in deterministic order.
        """
        with self._lock:
            return self._peek_value_locked(key)

    def _peek_value_locked(self, key: str) -> Any:
        owner = self._locations.get(key)
        if owner is None:
            raise StorageKeyError(key)
        if owner == REMOTE_OWNER:
            return self._remote.get(key).value
        return self._workers[owner].value_of(key)

    def peek_values(self, keys) -> dict[str, Any]:
        """Batched :meth:`peek_value`: one message for a whole input set.

        The band runners' compute phase gathers every stage-external
        input through this — accounting-free, LRU-untouched.
        """
        with self._lock:
            return {key: self._peek_value_locked(key) for key in keys}

    # -- pinning ------------------------------------------------------------
    def pin(self, keys) -> None:
        """Protect ``keys`` from LRU spill while a subtask reads them.

        Each pin is routed to the key's current owner worker, which keeps
        the chunk out of its spill victim set; the route is remembered so
        the matching unpin reaches the same worker.
        """
        with self._lock:
            by_worker: dict[str, list[str]] = {}
            for key in keys:
                owner = self._locations.get(key)
                worker = owner if owner else None
                if worker is not None:
                    by_worker.setdefault(worker, []).append(key)
                self._pin_routes.setdefault(key, []).append(worker)
            # pins are counters, so one grouped message per owner worker
            # is state-identical to the per-key calls it replaces.
            for worker, worker_keys in by_worker.items():
                self._workers[worker].pin_local(worker_keys)

    def unpin(self, keys) -> None:
        """Release one pin level on each of ``keys``."""
        with self._lock:
            by_worker: dict[str, list[str]] = {}
            for key in keys:
                routes = self._pin_routes.get(key)
                if not routes:
                    continue
                worker = routes.pop()
                if not routes:
                    del self._pin_routes[key]
                if worker is not None:
                    by_worker.setdefault(worker, []).append(key)
            for worker, worker_keys in by_worker.items():
                self._workers[worker].unpin_local(worker_keys)

    def _migrate_pins(self, key: str, new_worker: str | None) -> None:
        """Re-route ``key``'s outstanding pins after a (re-)put.

        A pinned chunk can be deleted and recreated on a different worker
        (recovery recompute, overwrite); the global pin contract says it
        stays protected wherever it lands, so move the worker-local pin
        counts to the new owner and rewrite the route stack.
        """
        routes = self._pin_routes.get(key)
        if not routes:
            return
        for old in set(routes):
            if old is not None and old != new_worker:
                self._workers[old].drop_pins_local(key)
        if new_worker is not None:
            self._workers[new_worker].set_pin_count_local(key, len(routes))
        self._pin_routes[key] = [new_worker] * len(routes)

    def is_pinned(self, key: str) -> bool:
        with self._lock:
            return bool(self._pin_routes.get(key))

    def pinned_keys(self) -> list[str]:
        """Keys currently pin-protected (empty between subtasks)."""
        with self._lock:
            return [key for key, routes in self._pin_routes.items() if routes]

    # -- bookkeeping --------------------------------------------------------
    def contains(self, key: str) -> bool:
        return key in self._locations

    def missing_keys(self, keys) -> list[str]:
        """The subset of ``keys`` not stored anywhere, in input order.

        One message where the pending-scan / fault pre-check loops used
        to send one ``contains`` per key.
        """
        with self._lock:
            return [key for key in keys if key not in self._locations]

    def put_many(self, entries, worker: str,
                 dedup_token: Any = None) -> list[int]:
        """Batched :meth:`put`: ``entries`` is ``(key, value, nbytes)``.

        One message stores a subtask's whole output set; each entry goes
        through the same put path (delete-if-exists, spill-or-raise, pin
        migration) in order, so worker state after the batch is exactly
        what the per-key puts would leave.

        Idempotent under at-least-once delivery: a redelivered message
        (same ``dedup_token``) returns the memoized sizes without
        touching the tiers again.
        """
        with self._lock:
            seen, memo = self._dedup.check(dedup_token)
            if seen:
                return memo
            sizes = [
                self.put(key, value, worker, nbytes=nbytes)
                for key, value, nbytes in entries
            ]
            self._dedup.record(dedup_token, sizes)
            return sizes

    def delete_many(self, keys) -> None:
        """Batched :meth:`delete` (refcount frees arrive in bulk)."""
        with self._lock:
            for key in keys:
                self.delete(key)

    def location_of(self, key: str) -> tuple[str, StorageLevel]:
        with self._lock:
            owner = self._locations.get(key)
            if owner is None:
                raise StorageKeyError(key)
            if owner == REMOTE_OWNER:
                return (REMOTE_OWNER, StorageLevel.REMOTE)
            return (owner, self._workers[owner].level_of(key))

    def nbytes_of(self, key: str) -> int:
        with self._lock:
            owner = self._locations.get(key)
            if owner is None:
                raise StorageKeyError(key)
            if owner == REMOTE_OWNER:
                return self._remote.get(key).nbytes
            return self._workers[owner].nbytes_of_local(key)

    def delete(self, key: str) -> None:
        with self._lock:
            owner = self._locations.pop(key, None)
            if owner is None:
                return
            if owner == REMOTE_OWNER:
                try:
                    self._remote.delete(key)
                except KeyError:
                    pass
                return
            self._workers[owner].delete_local(key)

    # -- counters -----------------------------------------------------------
    def transferred_bytes(self) -> int:
        """Bytes that crossed the network (router-charged)."""
        with self._lock:
            return self._transferred_bytes

    def spilled_bytes(self) -> int:
        """LRU spill bytes that bought an admission, across workers."""
        with self._lock:
            return sum(unit.spilled_bytes() for unit in self._workers.values())

    def failed_admission_spill_bytes(self) -> int:
        """Bytes spilled by admissions that still ended out-of-memory."""
        with self._lock:
            return sum(unit.failed_admission_spill_bytes()
                       for unit in self._workers.values())

    def forced_spill_bytes(self) -> int:
        """Bytes evicted by the OOM ladder's force-spill rung."""
        with self._lock:
            return sum(unit.forced_spill_bytes()
                       for unit in self._workers.values())

    def memory_bytes(self, worker: str) -> int:
        return self._workers[worker].memory_bytes_local()

    def disk_bytes(self, worker: str) -> int:
        return self._workers[worker].disk_bytes_local()

    def keys_on(self, worker: str) -> list[str]:
        return self._workers[worker].keys_local()

    def all_keys(self) -> list[str]:
        """Every stored key across workers and tiers (re-tile snapshots)."""
        with self._lock:
            return list(self._locations)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._locations):
                self.delete(key)
            self._pin_routes.clear()
            for unit in self._workers.values():
                unit.clear_pins_local()
