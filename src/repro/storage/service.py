"""The storage service: tiered per-worker stores behind put/get by key.

Responsibilities (Section V-C):

- hold every intermediate chunk produced by subtask execution;
- charge each worker's memory budget, spilling least-recently-used chunks
  to disk when allowed (``config.spill_to_disk``) or raising
  :class:`WorkerOutOfMemory` when not;
- answer ``get`` from any worker, reporting how many bytes crossed the
  network and which tier served the read, so the simulation can charge
  transfer and disk penalties;
- track data location by key so shuffles and locality-aware scheduling
  know where chunks live.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from ..cluster.cluster import ClusterState
from ..config import Config
from ..errors import StorageKeyError, WorkerOutOfMemory
from ..utils import sizeof
from .base import AccessInfo, StorageBackend, StorageLevel, StoredItem
from .disk import DiskBackend
from .memory import MemoryBackend
from .remote import RemoteBackend


class StorageService:
    """Cluster-wide chunk storage with per-worker memory accounting."""

    def __init__(self, cluster: ClusterState, config: Config | None = None):
        self.cluster = cluster
        self.config = config if config is not None else cluster.config
        #: guards every location/LRU/backend mutation: the accounting
        #: walk owns all *charged* accesses, but the parallel band
        #: runner's compute phase peeks values concurrently (and a spill
        #: may move the peeked item between tiers mid-read).
        self._lock = threading.RLock()
        self._memory: dict[str, MemoryBackend] = {}
        self._disk: dict[str, DiskBackend] = {}
        self._lru: dict[str, OrderedDict[str, None]] = {}
        for worker in cluster.workers:
            self._memory[worker.name] = MemoryBackend()
            self._disk[worker.name] = DiskBackend()
            self._lru[worker.name] = OrderedDict()
        self._remote = RemoteBackend()
        #: key -> (worker_name, StorageLevel); remote uses worker_name "".
        self._locations: dict[str, tuple[str, StorageLevel]] = {}
        #: key -> pin count. Pinned chunks are never spill victims: the
        #: executor pins a subtask's inputs for the whole accounting span
        #: so admission/spill for one band cannot evict what another band
        #: (or the subtask itself) is currently reading.
        self._pins: dict[str, int] = {}
        self.total_spilled_bytes = 0
        #: bytes spilled by admissions that still ended in
        #: WorkerOutOfMemory — kept out of ``total_spilled_bytes`` so the
        #: spill metric reflects only spills that bought an admission.
        self.failed_admission_spill_bytes = 0
        #: bytes evicted by the OOM ladder's force-spill rung (kept out of
        #: ``total_spilled_bytes``: these are recovery actions, not LRU
        #: admissions).
        self.forced_spill_bytes = 0
        self.total_transferred_bytes = 0

    # -- writes -----------------------------------------------------------
    def put(self, key: str, value: Any, worker: str,
            level: StorageLevel = StorageLevel.MEMORY,
            nbytes: int | None = None) -> int:
        """Store ``value`` under ``key`` on ``worker``; returns its size.

        A put to MEMORY that does not fit triggers LRU spill-to-disk when
        enabled, otherwise the worker's OOM error propagates. Callers
        that already sized the value pass ``nbytes`` to skip the
        recursive ``sizeof``.
        """
        with self._lock:
            if key in self._locations:
                self.delete(key)
            if nbytes is None:
                nbytes = sizeof(value)
            if level == StorageLevel.REMOTE:
                self._remote.put(StoredItem(key, value, nbytes, level, ""))
                self._locations[key] = ("", StorageLevel.REMOTE)
                return nbytes
            if level == StorageLevel.DISK:
                self._disk[worker].put(
                    StoredItem(key, value, nbytes, level, worker)
                )
                self._locations[key] = (worker, StorageLevel.DISK)
                return nbytes
            tracker = self.cluster.memory[worker]
            if not tracker.can_fit(nbytes):
                if self.config.spill_to_disk:
                    self._spill_until_fits(worker, nbytes)
                # retry; raises WorkerOutOfMemory if still too large
            tracker.allocate(nbytes)
            self._memory[worker].put(
                StoredItem(key, value, nbytes, level, worker)
            )
            self._lru[worker][key] = None
            self._locations[key] = (worker, StorageLevel.MEMORY)
            return nbytes

    def ensure_free(self, worker: str, nbytes: int) -> None:
        """Spill until ``nbytes`` can be allocated on ``worker``.

        Raises :class:`WorkerOutOfMemory` when spilling cannot make room.
        """
        with self._lock:
            self._spill_until_fits(worker, nbytes)

    def _spill_until_fits(self, worker: str, nbytes: int) -> None:
        """Move least-recently-used *unpinned* chunks of ``worker`` to disk.

        Pinned chunks (inputs of an in-flight subtask) are never victims.
        If the budget still cannot fit after spilling every candidate,
        the partial spill is charged to ``failed_admission_spill_bytes``
        instead of ``total_spilled_bytes`` and
        :class:`WorkerOutOfMemory` propagates — a failed admission must
        not inflate the successful-spill metric.
        """
        tracker = self.cluster.memory[worker]
        lru = self._lru[worker]
        spilled_now = 0
        for victim_key in list(lru):
            if tracker.can_fit(nbytes):
                break
            if self._pins.get(victim_key):
                continue
            del lru[victim_key]
            item = self._memory[worker].delete(victim_key)
            tracker.release(item.nbytes)
            item.level = StorageLevel.DISK
            self._disk[worker].put(item)
            self._locations[victim_key] = (worker, StorageLevel.DISK)
            spilled_now += item.nbytes
        if tracker.can_fit(nbytes):
            self.total_spilled_bytes += spilled_now
        else:
            self.failed_admission_spill_bytes += spilled_now
            raise WorkerOutOfMemory(worker, nbytes, tracker.limit, tracker.used)

    def force_spill(self, worker: str) -> int:
        """Evict every unpinned memory-resident chunk of ``worker`` to disk.

        The OOM recovery ladder's first rung: empties the worker's memory
        tier (minus in-flight pins) so the failing subtask can retry in
        place. Returns the bytes moved; they are charged to
        ``forced_spill_bytes``, not the LRU spill metric.
        """
        with self._lock:
            if not self.config.spill_to_disk:
                return 0
            tracker = self.cluster.memory[worker]
            lru = self._lru[worker]
            spilled = 0
            for victim_key in list(lru):
                if self._pins.get(victim_key):
                    continue
                del lru[victim_key]
                item = self._memory[worker].delete(victim_key)
                tracker.release(item.nbytes)
                item.level = StorageLevel.DISK
                self._disk[worker].put(item)
                self._locations[victim_key] = (worker, StorageLevel.DISK)
                spilled += item.nbytes
            self.forced_spill_bytes += spilled
            return spilled

    # -- reads ------------------------------------------------------------
    def get(self, key: str, requesting_worker: str) -> AccessInfo:
        """Fetch a chunk from wherever it lives.

        The returned :class:`AccessInfo` carries the bytes transferred over
        the network (zero for a local read) and the tier penalty (the cost
        model's ``disk_penalty`` for a spilled chunk).
        """
        with self._lock:
            return self._get_locked(key, requesting_worker)

    def get_many(self, keys, requesting_worker: str) -> list[AccessInfo]:
        """Batched :meth:`get`: one lock acquisition for a whole fetch set.

        Subtask input gathering and shuffle reducers read many keys at
        once; fetching them under a single critical section skips the
        per-key lock round-trips without changing any charged number.
        """
        with self._lock:
            return [self._get_locked(key, requesting_worker) for key in keys]

    def _get_locked(self, key: str, requesting_worker: str,
                    touch_lru: bool = True) -> AccessInfo:
        location = self._locations.get(key)
        if location is None:
            raise StorageKeyError(key)
        worker, level = location
        if level == StorageLevel.REMOTE:
            item = self._remote.get(key)
            self.total_transferred_bytes += item.nbytes
            return AccessInfo(item.value, item.nbytes,
                              transferred_bytes=item.nbytes,
                              tier_penalty=self.config.cost_model.disk_penalty,
                              source_worker="<remote>")
        if level == StorageLevel.DISK:
            item = self._disk[worker].get(key)
            transferred = item.nbytes if worker != requesting_worker else 0
            self.total_transferred_bytes += transferred
            return AccessInfo(item.value, item.nbytes,
                              transferred_bytes=transferred,
                              tier_penalty=self.config.cost_model.disk_penalty,
                              source_worker=worker)
        item = self._memory[worker].get(key)
        if touch_lru:
            self._lru[worker].move_to_end(key)
        transferred = item.nbytes if worker != requesting_worker else 0
        self.total_transferred_bytes += transferred
        return AccessInfo(item.value, item.nbytes,
                          transferred_bytes=transferred,
                          source_worker=worker)

    def peek(self, key: str) -> Any:
        """Read a value without charging transfers (driver-side fetches).

        Read-only on the LRU: observing a chunk (``__repr__``,
        ``TileContext.peek``) must not change which chunk gets spilled
        next, or spill victim selection would depend on observation.
        """
        with self._lock:
            return self._get_locked(
                key, requesting_worker="<driver>", touch_lru=False
            ).value

    def peek_value(self, key: str) -> Any:
        """Accounting-free read: no transfer charge, no LRU touch.

        The parallel band runner's compute phase uses this — the charged
        ``get`` for the same key happens later, on the accounting thread,
        in deterministic order.
        """
        with self._lock:
            location = self._locations.get(key)
            if location is None:
                raise StorageKeyError(key)
            worker, level = location
            return self._backend_for(worker, level).get(key).value

    # -- pinning ------------------------------------------------------------
    def pin(self, keys) -> None:
        """Protect ``keys`` from LRU spill while a subtask reads them.

        Counted, so nested pins (a chunk read by two in-flight subtasks)
        survive the first unpin.
        """
        with self._lock:
            for key in keys:
                self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, keys) -> None:
        """Release one pin level on each of ``keys``."""
        with self._lock:
            for key in keys:
                count = self._pins.get(key)
                if count is None:
                    continue
                if count <= 1:
                    del self._pins[key]
                else:
                    self._pins[key] = count - 1

    def is_pinned(self, key: str) -> bool:
        with self._lock:
            return bool(self._pins.get(key))

    def pinned_keys(self) -> list[str]:
        """Keys currently pin-protected (empty between subtasks)."""
        with self._lock:
            return [key for key, count in self._pins.items() if count > 0]

    # -- bookkeeping --------------------------------------------------------
    def contains(self, key: str) -> bool:
        return key in self._locations

    def location_of(self, key: str) -> tuple[str, StorageLevel]:
        with self._lock:
            if key not in self._locations:
                raise StorageKeyError(key)
            return self._locations[key]

    def nbytes_of(self, key: str) -> int:
        with self._lock:
            worker, level = self.location_of(key)
            backend = self._backend_for(worker, level)
            return backend.get(key).nbytes

    def delete(self, key: str) -> None:
        with self._lock:
            location = self._locations.pop(key, None)
            if location is None:
                return
            worker, level = location
            backend = self._backend_for(worker, level)
            item = backend.delete(key)
            if level == StorageLevel.MEMORY:
                self.cluster.memory[worker].release(item.nbytes)
                self._lru[worker].pop(key, None)

    def _backend_for(self, worker: str, level: StorageLevel) -> StorageBackend:
        if level == StorageLevel.REMOTE:
            return self._remote
        if level == StorageLevel.DISK:
            return self._disk[worker]
        return self._memory[worker]

    def memory_bytes(self, worker: str) -> int:
        return self._memory[worker].total_bytes()

    def disk_bytes(self, worker: str) -> int:
        return self._disk[worker].total_bytes()

    def keys_on(self, worker: str) -> list[str]:
        return self._memory[worker].keys() + self._disk[worker].keys()

    def all_keys(self) -> list[str]:
        """Every stored key across workers and tiers (re-tile snapshots)."""
        with self._lock:
            return list(self._locations)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._locations):
                self.delete(key)
            self._pins.clear()
