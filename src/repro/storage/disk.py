"""Disk (spill) storage backend — StorageLevel.DISK."""

from __future__ import annotations

from .base import StorageBackend, StorageLevel


class DiskBackend(StorageBackend):
    """Per-worker disk store used as the spill target.

    Reads are charged the cost model's ``disk_penalty`` by the storage
    service. Capacity is unbounded here (cluster disks are far larger
    than memory at the paper's scales).
    """

    level = StorageLevel.DISK
