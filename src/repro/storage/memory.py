"""In-memory (shared-memory) storage backend — StorageLevel.MEMORY."""

from __future__ import annotations

from .base import StorageBackend, StorageLevel


class MemoryBackend(StorageBackend):
    """Per-worker main-memory store.

    Capacity enforcement lives in the worker's
    :class:`~repro.cluster.resource.MemoryTracker`, not here: the backend
    mirrors shared memory, which fails at allocation time.
    """

    level = StorageLevel.MEMORY
