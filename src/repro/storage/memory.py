"""In-memory (shared-memory) storage backend — StorageLevel.MEMORY."""

from __future__ import annotations

import threading

from .base import StorageBackend, StorageLevel, StoredItem


class MemoryBackend(StorageBackend):
    """Per-worker main-memory store.

    Capacity enforcement lives in the worker's
    :class:`~repro.cluster.resource.MemoryTracker`, not here: the backend
    mirrors shared memory, which fails at allocation time.

    The store is internally locked: the accounting walk mutates it while
    the parallel band runner's compute phase may be peeking values of
    earlier stages through the storage service.
    """

    level = StorageLevel.MEMORY

    def __init__(self):
        super().__init__()
        self._items_lock = threading.RLock()

    def put(self, item: StoredItem) -> None:
        with self._items_lock:
            self._items[item.key] = item

    def get(self, key: str) -> StoredItem:
        with self._items_lock:
            return self._items[key]

    def delete(self, key: str) -> StoredItem:
        with self._items_lock:
            return self._items.pop(key)

    def keys(self) -> list[str]:
        with self._items_lock:
            return list(self._items)

    def total_bytes(self) -> int:
        with self._items_lock:
            return sum(item.nbytes for item in self._items.values())
