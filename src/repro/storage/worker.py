"""Worker-local storage: one worker's memory/disk tiers and spill policy.

The cluster-wide :class:`~repro.storage.service.StorageService` used to
hold every worker's backends, LRU rings and pin counts in global maps.
The service plane partitions that keyspace by owner worker: each
:class:`WorkerStorage` owns exactly one worker's tiers, makes its own
spill/pin/quota decisions against its own :class:`MemoryTracker`, and is
fronted by a per-worker ``StorageActor`` in the actor deployment.  The
supervisor-side router only keeps the key -> owner index and the remote
tier.

Every method here is part of the worker storage *message interface*:
callers (the router) never reach into the backends directly, and no
method returns internal mutable state.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..errors import StorageKeyError, WorkerOutOfMemory
from .base import StorageBackend, StorageLevel, StoredItem
from .disk import DiskBackend
from .memory import MemoryBackend


class WorkerStorage:
    """One worker's tiered chunk store with local memory accounting."""

    def __init__(self, worker: str, tracker, config):
        self.worker = worker
        #: the worker's :class:`MemoryTracker` (shared with the cluster
        #: state so the simulation's peak accounting sees every byte).
        self.tracker = tracker
        self.config = config
        self._memory = MemoryBackend()
        self._disk = DiskBackend()
        self._lru: OrderedDict[str, None] = OrderedDict()
        #: key -> pin count; pinned chunks are never spill victims.
        #: Pins may outlive the chunk's residency (the router balances
        #: pin/unpin regardless of deletes in between), matching the old
        #: global pin table.
        self._pins: dict[str, int] = {}
        self._spilled_bytes = 0
        self._failed_admission_spill_bytes = 0
        self._forced_spill_bytes = 0

    # -- writes -----------------------------------------------------------
    def put_local(self, key: str, value: Any, nbytes: int,
                  level: StorageLevel = StorageLevel.MEMORY) -> int:
        """Store one chunk on this worker; spill-or-raise on a full tier."""
        if level == StorageLevel.DISK:
            self._disk.put(StoredItem(key, value, nbytes, level, self.worker))
            return nbytes
        if not self.tracker.can_fit(nbytes):
            if self.config.spill_to_disk:
                self._spill_until_fits(nbytes)
            # retry; raises WorkerOutOfMemory if still too large
        self.tracker.allocate(nbytes)
        self._memory.put(
            StoredItem(key, value, nbytes, StorageLevel.MEMORY, self.worker)
        )
        self._lru[key] = None
        return nbytes

    def ensure_free_local(self, nbytes: int) -> None:
        """Spill until ``nbytes`` can be allocated here (or raise)."""
        self._spill_until_fits(nbytes)

    def _spill_until_fits(self, nbytes: int) -> None:
        """Move least-recently-used *unpinned* chunks to disk.

        If the budget still cannot fit after spilling every candidate,
        the partial spill is charged to the failed-admission counter
        instead of the successful-spill one and
        :class:`WorkerOutOfMemory` propagates.
        """
        spilled_now = 0
        for victim_key in list(self._lru):
            if self.tracker.can_fit(nbytes):
                break
            if self._pins.get(victim_key):
                continue
            del self._lru[victim_key]
            item = self._memory.delete(victim_key)
            self.tracker.release(item.nbytes)
            item.level = StorageLevel.DISK
            self._disk.put(item)
            spilled_now += item.nbytes
        if self.tracker.can_fit(nbytes):
            self._spilled_bytes += spilled_now
        else:
            self._failed_admission_spill_bytes += spilled_now
            raise WorkerOutOfMemory(self.worker, nbytes, self.tracker.limit,
                                    self.tracker.used)

    def force_spill_local(self) -> int:
        """Evict every unpinned memory-resident chunk to disk.

        The OOM recovery ladder's first rung; returns the bytes moved
        (charged to the forced-spill counter, not the LRU one).
        """
        if not self.config.spill_to_disk:
            return 0
        spilled = 0
        for victim_key in list(self._lru):
            if self._pins.get(victim_key):
                continue
            del self._lru[victim_key]
            item = self._memory.delete(victim_key)
            self.tracker.release(item.nbytes)
            item.level = StorageLevel.DISK
            self._disk.put(item)
            spilled += item.nbytes
        self._forced_spill_bytes += spilled
        return spilled

    # -- reads ------------------------------------------------------------
    def get_local(self, key: str,
                  touch_lru: bool = True) -> tuple[Any, int, StorageLevel]:
        """Fetch ``(value, nbytes, level)``; the router charges transfers."""
        item = self._memory.get(key) if key in self._lru else None
        if item is not None:
            if touch_lru:
                self._lru.move_to_end(key)
            return item.value, item.nbytes, StorageLevel.MEMORY
        try:
            item = self._disk.get(key)
        except KeyError:
            raise StorageKeyError(key) from None
        return item.value, item.nbytes, StorageLevel.DISK

    def get_local_many(self, keys) -> list[tuple[Any, int, StorageLevel]]:
        """Batched :meth:`get_local`: one message per owner-run of keys.

        LRU touches happen in key order, matching the per-key calls the
        router's grouped ``get_many`` replaces.
        """
        return [self.get_local(key) for key in keys]

    def value_of(self, key: str) -> Any:
        """Accounting-free read: no LRU touch, no transfer charge."""
        return self.get_local(key, touch_lru=False)[0]

    def level_of(self, key: str) -> StorageLevel:
        if key in self._lru:
            return StorageLevel.MEMORY
        if key in set(self._disk.keys()):
            return StorageLevel.DISK
        raise StorageKeyError(key)

    def nbytes_of_local(self, key: str) -> int:
        return self.get_local(key, touch_lru=False)[1]

    # -- deletes ----------------------------------------------------------
    def delete_local(self, key: str) -> None:
        if key in self._lru:
            item = self._memory.delete(key)
            self.tracker.release(item.nbytes)
            self._lru.pop(key, None)
            return
        try:
            self._disk.delete(key)
        except KeyError:
            pass

    # -- pinning ----------------------------------------------------------
    def pin_local(self, keys) -> None:
        for key in keys:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin_local(self, keys) -> None:
        for key in keys:
            count = self._pins.get(key)
            if count is None:
                continue
            if count <= 1:
                del self._pins[key]
            else:
                self._pins[key] = count - 1

    def drop_pins_local(self, key: str) -> int:
        """Remove every pin level on ``key`` (pin migration); returns count."""
        return self._pins.pop(key, 0)

    def set_pin_count_local(self, key: str, count: int) -> None:
        """Set ``key``'s pin count outright (pin migration on re-put)."""
        if count <= 0:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count

    def is_pinned_local(self, key: str) -> bool:
        return bool(self._pins.get(key))

    def pinned_local(self) -> list[str]:
        return [key for key, count in self._pins.items() if count > 0]

    def clear_pins_local(self) -> None:
        self._pins.clear()

    # -- bookkeeping ------------------------------------------------------
    def keys_local(self) -> list[str]:
        return self._memory.keys() + self._disk.keys()

    def memory_bytes_local(self) -> int:
        return self._memory.total_bytes()

    def disk_bytes_local(self) -> int:
        return self._disk.total_bytes()

    def spilled_bytes(self) -> int:
        return self._spilled_bytes

    def failed_admission_spill_bytes(self) -> int:
        return self._failed_admission_spill_bytes

    def forced_spill_bytes(self) -> int:
        return self._forced_spill_bytes

    def _backend_for(self, level: StorageLevel) -> StorageBackend:
        return self._disk if level == StorageLevel.DISK else self._memory
