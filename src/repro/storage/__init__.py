"""``repro.storage`` — tiered storage service for intermediate chunks."""

from .base import AccessInfo, StorageBackend, StorageLevel, StoredItem
from .disk import DiskBackend
from .memory import MemoryBackend
from .remote import RemoteBackend
from .service import StorageService
from .shuffle import ShuffleManager, shuffle_key

__all__ = [
    "AccessInfo",
    "DiskBackend",
    "MemoryBackend",
    "RemoteBackend",
    "ShuffleManager",
    "StorageBackend",
    "StorageLevel",
    "StorageService",
    "StoredItem",
    "shuffle_key",
]
