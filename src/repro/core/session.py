"""Sessions: the thin client over one session's deployed service plane.

``Session`` owns only actor refs: every engine service — meta, storage,
shuffle, scheduling, lifecycle, the per-band subtask runners — is an
actor created by :func:`repro.services.deploy_cluster_services` on the
supervisor/worker pools, and a supervisor-side :class:`SessionActor`
coordinates each run (tiling, execution, the memory-aware re-tile loop,
fetch assembly).  User-facing ``repr`` of a distributed DataFrame/Tensor
triggers ``execute`` behind the scenes ("deferred evaluation", Section
IV-C): lazy until looked at.

Multi-tenant serving: a session either *owns* its cluster (the classic
one-user shape — it builds a :class:`ClusterState` and tears it down on
close) or *attaches* to a shared one (``Session(cfg, cluster=shared)``).
On a shared cluster the service plane is a set of cluster-scoped
singletons deployed once; each session adds only its own
:class:`SessionActor`, executes under a session key namespace (runtime
chunk/shuffle keys become ``session-N/c-00000042`` so tenants can never
collide in storage or shuffle accounting), serializes stage accounting
through the scheduling service's weighted fair-share turnstile, and
scopes its faults, OOM degradation, lifecycle refcounts and cache
invalidation to itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..actors import Actor
from ..cluster.cluster import SUPERVISOR_ADDRESS, ClusterState
from ..config import Config, default_config
from ..engine.base import engine_of
from ..engine.local import DataFrame, Series, concat
from ..errors import ActorError, SessionError, WorkerOutOfMemory
from ..graph.dag import DAG
from ..graph.entity import TileableData
from ..services import session_actor_uid
from ..services.deploy import ServiceHandles, deploy_cluster_services
from ..utils import key_namespace
from .executor import GraphExecutor
from .pruning import prune_columns
from .tiler import TilingEngine, build_tileable_graph


@dataclass
class RunReport:
    """Metrics of one ``Session.execute`` call (virtual time)."""

    makespan: float = 0.0
    transferred_bytes: int = 0
    shuffle_bytes: int = 0
    combine_dropped_rows: int = 0
    spilled_bytes: int = 0
    n_subtasks: int = 0
    n_graph_nodes: int = 0
    dynamic_yields: int = 0
    #: fault recovery (zero in fault-free runs): failed attempts retried,
    #: lineage re-executions, bytes restored, simulated backoff waited.
    retries: int = 0
    recomputed_subtasks: int = 0
    recovery_bytes: int = 0
    backoff_time: float = 0.0
    #: memory pressure (zero in unconstrained runs): OOM-ladder retries,
    #: virtual seconds of admission backpressure, subtasks run on
    #: degraded (serialized) workers, memory-aware re-tiling passes,
    #: bytes force-spilled by the ladder.
    oom_retries: int = 0
    admission_wait_time: float = 0.0
    degraded_subtasks: int = 0
    pressure_splits: int = 0
    forced_spill_bytes: int = 0
    #: result cache (zero with ``result_cache`` off): chunks pruned from
    #: the execution graph by a hit, and the stored bytes they reused.
    cache_hit_chunks: int = 0
    cache_reused_bytes: int = 0
    #: straggler mitigation (zero with ``speculation`` off): duplicate
    #: dispatches fired past a subtask's EWMA deadline.
    speculative_subtasks: int = 0
    peak_memory: dict[str, int] = field(default_factory=dict)


class SessionActor(Actor):
    """Supervisor-side coordinator for one session's runs.

    Owns the run machinery the session client must not hold directly:
    the :class:`GraphExecutor` (wired to the deployed service refs), the
    :class:`TilingEngine`, the last run's report and the execution
    record.  Every ``Session.execute`` becomes one ``execute_tileables``
    message to this actor, whose nested service calls (scheduling,
    storage, lifecycle, runners) are attributed to it in the message
    trace.
    """

    def __init__(self, session_id: str, cluster: ClusterState,
                 config: Config, services: ServiceHandles,
                 owns_cluster: bool = True):
        super().__init__()
        self.session_id = session_id
        self.cluster = cluster
        self.config = config
        self.services = services
        self.owns_cluster = owns_cluster
        self.executor = GraphExecutor(
            cluster, services.storage, services.meta, config,
            scheduler=services.scheduling, shuffle=services.shuffle,
            lifecycle=services.lifecycle, cache=services.cache,
            runners=dict(services.runners),
        )
        self.executor.session_id = session_id
        if not owns_cluster:
            # shared plane: per-session frontier/turnstile execution and
            # a per-session fault injector — one tenant's seeded chaos
            # draws (and losses) never touch a neighbour.
            from .recovery import FaultInjector

            self.executor.multi_tenant = True
            self.executor.faults = FaultInjector(config.faults)
        self.tiler = TilingEngine(self.executor, services.meta, config)
        self.executed_tileables: list[str] = []
        self.last_report = RunReport()

    # -- bookkeeping ---------------------------------------------------
    def record_execution(self, tileable_key: str) -> None:
        self.executed_tileables.append(tileable_key)

    def execution_count(self) -> int:
        return len(self.executed_tileables)

    def get_executor(self) -> GraphExecutor:
        return self.executor

    def get_tiler(self) -> TilingEngine:
        return self.tiler

    def get_faults(self):
        """This session's fault injector (the cluster's when owned)."""
        return self.executor._injector()

    def get_last_report(self) -> RunReport:
        return self.last_report

    # -- run coordination ----------------------------------------------
    def execute_tileables(self, tileables: Sequence[TileableData],
                          parallel: bool | None = None) -> list[Any]:
        if self.owns_cluster:
            return self._execute_tileables(tileables, parallel)
        # session key namespace: every runtime key minted while tiling
        # and executing (chunk keys, shuffle ids, subtask keys) carries
        # this session's prefix, so tenants sharing storage/shuffle/LRU
        # state cannot collide. Structural identities strip the prefix,
        # keeping the shared result cache session-stable.
        with key_namespace(f"{self.session_id}/"):
            return self._execute_tileables(tileables, parallel)

    def _execute_tileables(self, tileables: Sequence[TileableData],
                           parallel: bool | None = None) -> list[Any]:
        storage = self.services.storage
        t0 = (self.cluster.clock.makespan if self.owns_cluster
              else self.executor.frontier)
        transfer0 = storage.transferred_bytes()
        spill0 = storage.spilled_bytes()
        yields0 = self.tiler.yield_count
        subtasks0 = self.executor.report.n_subtasks
        nodes0 = self.executor.report.n_graph_nodes
        shuffle0 = self.executor.report.total_shuffle_bytes
        combine0 = self.executor.report.combine_dropped_rows
        retries0 = self.executor.report.retries
        recomputed0 = self.executor.report.recomputed_subtasks
        recovered0 = self.executor.report.recovery_bytes
        backoff0 = self.executor.report.backoff_time
        oom0 = self.executor.report.oom_retries
        admission0 = self.executor.report.admission_wait_time
        degraded0 = self.executor.report.degraded_subtasks
        splits0 = self.executor.report.pressure_splits
        forced0 = self.executor.report.forced_spill_bytes
        cache_hits0 = self.executor.report.cache_hit_chunks
        cache_bytes0 = self.executor.report.cache_reused_bytes
        speculative0 = self.executor.speculative_subtasks

        previous_mode = self.executor.parallel_mode
        if parallel is not None:
            self.executor.parallel_mode = parallel
        saved_chunk_limit = self.config.chunk_store_limit
        try:
            # memory-aware re-tiling (the OOM ladder's last rung): when
            # the executor's in-place recovery is exhausted, halve the
            # chunk limit and re-enter dynamic tiling — smaller chunks
            # mean smaller working sets, the paper's Section IV machinery
            # pointed at robustness instead of performance.
            retile_attempts = 0
            pretiled: set[str] = set()
            stored_before: set[str] = set()
            while True:
                graph = build_tileable_graph(list(tileables))
                if retile_attempts == 0:
                    pretiled = {
                        node.key for node in graph.nodes() if node.is_tiled
                    }
                    stored_before = set(storage.all_keys())
                    if self.config.column_pruning:
                        prune_columns(graph, list(tileables))
                try:
                    chunk_graph = self.tiler.tile(graph, list(tileables))
                    retain = {
                        chunk.key for t in tileables for chunk in t.chunks
                    }
                    self.executor.explicit_cache_keys.update(
                        chunk.key for t in tileables
                        if getattr(t, "cache_requested", False)
                        for chunk in t.chunks
                    )
                    self.executor.execute(chunk_graph, retain_keys=retain)
                    break
                except WorkerOutOfMemory:
                    retile_attempts += 1
                    if (not self.config.oom_recovery
                            or retile_attempts
                            > self.config.pressure_retile_limit):
                        raise
                    self.executor.report.pressure_splits += 1
                    self._reset_for_retile(graph, pretiled, stored_before)
                    self.config.chunk_store_limit = max(
                        1, self.config.chunk_store_limit // 2
                    )
        finally:
            self.config.chunk_store_limit = saved_chunk_limit
            self.executor.parallel_mode = previous_mode

        # fetch before building the report: fetch-time recovery of lost
        # terminal chunks must land in this run's recovery accounting.
        values = [self.fetch_tileable(t) for t in tileables]

        makespan = (self.cluster.clock.makespan - t0 if self.owns_cluster
                    else self.executor.frontier - t0)
        self.last_report = RunReport(
            makespan=makespan,
            transferred_bytes=storage.transferred_bytes() - transfer0,
            shuffle_bytes=self.executor.report.total_shuffle_bytes - shuffle0,
            combine_dropped_rows=(
                self.executor.report.combine_dropped_rows - combine0
            ),
            spilled_bytes=storage.spilled_bytes() - spill0,
            n_subtasks=self.executor.report.n_subtasks - subtasks0,
            n_graph_nodes=self.executor.report.n_graph_nodes - nodes0,
            dynamic_yields=self.tiler.yield_count - yields0,
            retries=self.executor.report.retries - retries0,
            recomputed_subtasks=(
                self.executor.report.recomputed_subtasks - recomputed0
            ),
            recovery_bytes=self.executor.report.recovery_bytes - recovered0,
            backoff_time=self.executor.report.backoff_time - backoff0,
            oom_retries=self.executor.report.oom_retries - oom0,
            admission_wait_time=(
                self.executor.report.admission_wait_time - admission0
            ),
            degraded_subtasks=(
                self.executor.report.degraded_subtasks - degraded0
            ),
            pressure_splits=self.executor.report.pressure_splits - splits0,
            forced_spill_bytes=(
                self.executor.report.forced_spill_bytes - forced0
            ),
            cache_hit_chunks=(
                self.executor.report.cache_hit_chunks - cache_hits0
            ),
            cache_reused_bytes=(
                self.executor.report.cache_reused_bytes - cache_bytes0
            ),
            speculative_subtasks=(
                self.executor.speculative_subtasks - speculative0
            ),
            peak_memory=self.cluster.peak_memory(),
        )
        for tileable in tileables:
            self.record_execution(tileable.key)
        return values

    # ------------------------------------------------------------------
    def _reset_for_retile(self, graph: DAG, pretiled: set[str],
                          stored_before: set[str]) -> None:
        """Undo one failed execute attempt so tiling can start over.

        Every tileable this call tiled is untiled again (chunks cleared),
        and every chunk this attempt stored is dropped from storage,
        shuffle registry and scheduler placement. Tileables that were
        already tiled before the call (prior executes) keep their chunks
        and their stored data — re-tiling must not invalidate them.  On
        a shared cluster only this session's keys qualify: chunks other
        tenants stored while this attempt ran are not "new" to it.
        """
        for node in graph.nodes():
            if node.key in pretiled or not node.is_tiled:
                continue
            node.chunks = []
            node.nsplits = ()
        storage = self.services.storage
        prefix = None if self.owns_cluster else f"{self.session_id}/"
        dropped = [
            key for key in storage.all_keys()
            if key not in stored_before
            and (prefix is None or key.startswith(prefix))
        ]
        self.executor.acquire_turn()
        try:
            if dropped and self.config.result_cache:
                # re-tiling regenerates these chunks under new keys — any
                # cache entry recorded on them (or on top of them) is
                # stale.
                scope = None if self.owns_cluster else self.session_id
                self.services.lifecycle.invalidate_cached(
                    dropped, session=scope)
            for key in dropped:
                storage.delete(key)
                self.services.shuffle.forget_key(key)
                self.services.scheduling.forget_chunk(key)
        finally:
            self.executor.release_turn()

    # ------------------------------------------------------------------
    def fetch_tileable(self, tileable: TileableData) -> Any:
        """Assemble a materialized tileable's chunks into one value."""
        if not tileable.is_tiled:
            raise SessionError(
                f"tileable {tileable.key} is not tiled; call execute() first"
            )
        # fetch-time recovery: a fault may have taken terminal chunks
        # after their producing stage completed.
        self.executor.ensure_available(
            [chunk.key for chunk in tileable.chunks]
        )
        # storage holds physical chunk values; assembly (and the user)
        # work on logical frames, so decode through the session's engine.
        engine = engine_of(self.config)
        values = {
            chunk.index: engine.compute(self.services.storage.peek(chunk.key))
            for chunk in tileable.chunks
        }
        return assemble(tileable.kind, values)

    def is_materialized(self, tileable: TileableData) -> bool:
        return tileable.is_tiled and not self.services.storage.missing_keys(
            [chunk.key for chunk in tileable.chunks]
        )

    def free_tileable(self, tileable: TileableData) -> None:
        """Drop a tileable's cached chunk data (it can be recomputed)."""
        keys = [chunk.key for chunk in tileable.chunks]
        self.executor.acquire_turn()
        try:
            if keys and self.config.result_cache:
                scope = None if self.owns_cluster else self.session_id
                self.services.lifecycle.invalidate_cached(
                    keys, session=scope)
            for key in keys:
                self.services.storage.delete(key)
        finally:
            self.executor.release_turn()

    def reset_metrics(self) -> None:
        """Fresh virtual clocks and counters (used between benchmark runs)."""
        if self.owns_cluster:
            self.cluster.reset_clock()
        self.executor.chunk_ready_at.clear()
        self.executor.frontier = 0.0

    def teardown_shared(self) -> None:
        """Detach from a shared cluster without touching neighbours.

        Deletes this session's stored chunks — except ones the shared
        result cache points at, which stay behind as warm cross-tenant
        state — and drops its scoped service state (lifecycle scope,
        degraded-worker set, fair-share registration).
        """
        prefix = f"{self.session_id}/"
        protected = set(self.services.lifecycle.cache_protected())
        own = [
            key for key in self.services.storage.all_keys()
            if key.startswith(prefix) and key not in protected
        ]
        for key in own:
            self.services.storage.delete(key)
            self.services.shuffle.forget_key(key)
            self.services.scheduling.forget_chunk(key)
        self.services.lifecycle.drop_session(self.session_id)
        self.services.scheduling.unregister_tenant(self.session_id)


class Session:
    """One user session on a (simulated) cluster — a thin client.

    Holds the cluster plus *actor refs only*: ``storage``, ``meta``,
    ``scheduler``, ``shuffle`` and ``lifecycle`` are
    :class:`~repro.actors.ActorRef` handles to the deployed service
    plane, and all run coordination lives in the supervisor-side
    :class:`SessionActor` behind ``_actor_ref``.

    ``cluster=`` attaches the session to an existing shared cluster
    instead of building a private one; ``tenant_weight`` and
    ``tenant_memory_quota`` override the config's fair-share knobs for
    this tenant.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, config: Config | None = None,
                 cluster: ClusterState | None = None, *,
                 tenant_weight: float | None = None,
                 tenant_memory_quota: float | None = None):
        self._owns_cluster = cluster is None
        if self._owns_cluster:
            self.config = config if config is not None else default_config()
            self.cluster = ClusterState(self.config)
        else:
            # attaching tenants get a private config copy: the re-tile
            # loop mutates chunk_store_limit and the tenant knobs are
            # per-session, but the cluster shape stays the plane's.
            base = config if config is not None else cluster.config
            self.config = base.copy()
            self.cluster = cluster
        overrides = {}
        if tenant_weight is not None:
            overrides["tenant_weight"] = float(tenant_weight)
        if tenant_memory_quota is not None:
            overrides["tenant_memory_quota"] = float(tenant_memory_quota)
        if overrides:
            self.config = self.config.copy(**overrides)
        services = deploy_cluster_services(
            self.cluster, self.config if self._owns_cluster else None)
        self.storage = services.storage
        self.meta = services.meta
        self.scheduler = services.scheduling
        self.shuffle = services.shuffle
        self.lifecycle = services.lifecycle
        self.cache = services.cache
        # atomic id allocation: sessions are created from many threads
        # on a shared cluster, and `session-{N}` ids must never collide
        # (they namespace every runtime key).
        with Session._counter_lock:
            Session._counter += 1
            count = Session._counter
        self.session_id = f"session-{count}"
        if not self._owns_cluster:
            self.scheduler.register_tenant(
                self.session_id,
                float(getattr(self.config, "tenant_weight", 1.0)))
        self._actor_ref = self.cluster.actor_system.create_actor(
            SUPERVISOR_ADDRESS, SessionActor, self.session_id, self.cluster,
            self.config, services, owns_cluster=self._owns_cluster,
            uid=session_actor_uid(self.session_id),
        )
        self.closed = False
        #: close/execute coordination: close() waits for in-flight runs
        #: instead of destroying the session actor under them.
        self._closing = False
        self._active_calls = 0
        self._state_cond = threading.Condition(threading.Lock())

    @property
    def owns_cluster(self) -> bool:
        return self._owns_cluster

    # -- in-flight call tracking ----------------------------------------
    def _begin_call(self, what: str) -> None:
        with self._state_cond:
            if self.closed or self._closing:
                raise SessionError(
                    f"session {self.session_id} is closed"
                    if self.closed else
                    f"session {self.session_id} is closing; {what} rejected"
                )
            self._active_calls += 1

    def _end_call(self) -> None:
        with self._state_cond:
            self._active_calls -= 1
            self._state_cond.notify_all()

    # -- coordinator state (read through the session actor) -------------
    @property
    def executor(self) -> GraphExecutor:
        return self._actor_ref.get_executor()

    @property
    def tiler(self) -> TilingEngine:
        return self._actor_ref.get_tiler()

    @property
    def faults(self):
        """This session's fault injector (scoped on shared clusters)."""
        return self._actor_ref.get_faults()

    @property
    def last_report(self) -> RunReport:
        return self._actor_ref.get_last_report()

    # ------------------------------------------------------------------
    def execute(self, *tileables: TileableData,
                parallel: bool | None = None) -> list[Any]:
        """Materialize the given tileables; returns their full values.

        ``parallel`` overrides ``config.parallel_execution`` for this
        call — including the dynamic-tiling yield executions, which run
        under the same mode so tiling stages synchronize identically
        (every stage's execute returns only after its accounting walk
        drained the band runner).
        """
        if not tileables:
            raise ValueError("nothing to execute")
        self._begin_call("execute")
        try:
            return self._actor_ref.execute_tileables(
                list(tileables), parallel=parallel,
            )
        finally:
            self._end_call()

    def fetch(self, tileable: TileableData) -> Any:
        """Assemble a materialized tileable's chunks into one value."""
        self._begin_call("fetch")
        try:
            return self._actor_ref.fetch_tileable(tileable)
        finally:
            self._end_call()

    def is_materialized(self, tileable: TileableData) -> bool:
        return self._actor_ref.is_materialized(tileable)

    def free(self, tileable: TileableData) -> None:
        """Drop a tileable's cached chunk data (it can be recomputed)."""
        self._begin_call("free")
        try:
            self._actor_ref.free_tileable(tileable)
        finally:
            self._end_call()

    def reset_metrics(self) -> None:
        """Fresh virtual clocks and counters (used between benchmark runs)."""
        self._actor_ref.reset_metrics()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the session down — after any in-flight run finishes.

        Waits for active ``execute``/``fetch``/``free`` calls on other
        threads instead of destroying the session actor mid-run; callers
        arriving once closing has begun get a typed
        :class:`SessionError` rather than a dispatcher crash.  Idempotent
        — a second ``close`` (or ``__del__`` after an explicit close) is
        a no-op, and a partially torn-down actor plane never makes close
        raise.  A shared cluster is left running: only this session's
        scoped state and stored chunks (minus shared cache entries) go.
        """
        with self._state_cond:
            if self.closed:
                return
            self._closing = True
            while self._active_calls > 0:
                self._state_cond.wait()
            if self.closed:
                return
            self.closed = True
        system = self.cluster.actor_system
        if self._owns_cluster:
            try:
                self.storage.clear()
            except ActorError:
                pass  # pools already stopped by an outside shutdown
        else:
            try:
                self._actor_ref.teardown_shared()
            except ActorError:
                pass
        try:
            system.destroy_actor(
                SUPERVISOR_ADDRESS, session_actor_uid(self.session_id),
            )
        except ActorError:
            pass
        if self._owns_cluster:
            self.cluster.shutdown()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            # interpreter teardown: pools/modules may be half-gone.
            pass

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def assemble(kind: str, values: dict[tuple, Any]) -> Any:
    """Glue chunk values back into one pandas-like / NumPy object.

    ``values`` maps chunk index (the distributed index of Fig. 4) to the
    chunk's value.
    """
    if not values:
        raise ValueError("no chunks to assemble")
    if kind == "scalar":
        (value,) = values.values()
        return value
    if kind in ("series", "index"):
        ordered = [values[idx] for idx in sorted(values)]
        if all(isinstance(v, Series) for v in ordered):
            return concat(ordered) if len(ordered) > 1 else ordered[0]
        return np.concatenate([np.atleast_1d(np.asarray(v)) for v in ordered])
    if kind == "dataframe":
        rows = sorted({idx[0] for idx in values})
        cols = sorted({idx[1] if len(idx) > 1 else 0 for idx in values})
        row_frames = []
        for r in rows:
            pieces = [values[(r, c)] for c in cols if (r, c) in values]
            if not pieces and (r,) in values:
                pieces = [values[(r,)]]
            row_frames.append(
                concat(pieces, axis=1) if len(pieces) > 1 else pieces[0]
            )
        return concat(row_frames) if len(row_frames) > 1 else row_frames[0]
    if kind == "tensor":
        ndim = len(next(iter(values)))
        if ndim == 0:
            (value,) = values.values()
            return np.asarray(value)
        if ndim == 1:
            ordered = [np.atleast_1d(values[idx]) for idx in sorted(values)]
            return np.concatenate(ordered)
        rows = sorted({idx[0] for idx in values})
        cols = sorted({idx[1] for idx in values})
        block = [
            [np.atleast_2d(values[(r, c)]) for c in cols if (r, c) in values]
            for r in rows
        ]
        return np.block(block)
    raise ValueError(f"cannot assemble kind {kind!r}")


# ---------------------------------------------------------------------------
# default-session management (what ``repro.init`` installs)
# ---------------------------------------------------------------------------

_default_session: Session | None = None
#: guards the module-global default session against concurrent
#: ``init``/``get``/``stop`` — double-init from two threads must never
#: leak a live actor plane or hand different callers different sessions.
_default_session_lock = threading.Lock()


def init_session(config: Config | None = None, **config_overrides) -> Session:
    """Create and install the process-wide default session.

    Deterministic under repetition and concurrency: the previous default
    (if any) is closed before the replacement is installed, and the
    close-then-replace pair is atomic with respect to other callers.
    """
    global _default_session
    with _default_session_lock:
        if _default_session is not None:
            _default_session.close()
            _default_session = None
        cfg = config if config is not None else default_config()
        if config_overrides:
            cfg = cfg.copy(**config_overrides)
        _default_session = Session(cfg)
        return _default_session


def get_default_session() -> Session:
    global _default_session
    with _default_session_lock:
        if _default_session is None:
            _default_session = Session(default_config())
        return _default_session


def stop_session() -> None:
    global _default_session
    with _default_session_lock:
        if _default_session is not None:
            _default_session.close()
            _default_session = None
