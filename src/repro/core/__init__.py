"""``repro.core`` — the paper's contribution: operators, dynamic tiling,
graph fusion, column pruning, scheduling, auto rechunk, sessions."""

from .executor import GraphExecutor
from .fusion import color_chunk_graph, fusion_groups, singleton_groups
from .meta import ChunkMeta, MetaService, meta_from_value
from .operator import (
    DataSourceOp,
    ExecContext,
    FetchOp,
    Operator,
    TileContext,
    run_tile,
)
from .opfusion import plan_subtask, step_io_keys
from .pruning import prune_columns
from .rechunk import auto_rechunk, balanced_splits, rechunk_to_splits
from .scheduler import Scheduler
from .session import (
    RunReport,
    Session,
    assemble,
    get_default_session,
    init_session,
    stop_session,
)
from .tiler import TilingEngine, build_tileable_graph, chunk_closure

__all__ = [
    "ChunkMeta",
    "DataSourceOp",
    "ExecContext",
    "FetchOp",
    "GraphExecutor",
    "MetaService",
    "Operator",
    "RunReport",
    "Scheduler",
    "Session",
    "TileContext",
    "TilingEngine",
    "assemble",
    "auto_rechunk",
    "balanced_splits",
    "build_tileable_graph",
    "chunk_closure",
    "color_chunk_graph",
    "fusion_groups",
    "get_default_session",
    "init_session",
    "meta_from_value",
    "plan_subtask",
    "prune_columns",
    "rechunk_to_splits",
    "run_tile",
    "singleton_groups",
    "step_io_keys",
    "stop_session",
]
