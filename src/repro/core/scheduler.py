"""Subtask scheduling: breadth-first initial placement + locality-aware
successor placement (Section V-B)."""

from __future__ import annotations

from collections import defaultdict

from ..cluster.cluster import ClusterState
from ..config import Config
from ..errors import SchedulingError
from ..graph.dag import DAG
from ..graph.subtask import Subtask


class Scheduler:
    """Assigns every subtask of a graph to a band.

    - *Breadth-first*: initial subtasks (no predecessors in the graph) are
      spread band-by-band in worker-major order, filling one worker's
      bands before moving to the next, so co-resident sources stay close.
    - *Locality-aware*: a successor subtask goes to the band holding the
      most input bytes (predecessor outputs plus chunks already resident
      in storage), breaking ties toward the least-loaded band.

    ``chunk_band`` records where every produced chunk lives; it persists
    across the partial executions of one session run so later stages see
    earlier placements.
    """

    def __init__(self, cluster: ClusterState, config: Config,
                 chunk_band: dict[str, str] | None = None):
        self.cluster = cluster
        self.config = config
        self.chunk_band: dict[str, str] = chunk_band if chunk_band is not None else {}
        self._band_load: dict[str, float] = {b.name: 0.0 for b in cluster.bands}
        self._rr_cursor = 0
        #: presumed size of a chunk with no recorded metadata yet: a fresh
        #: full chunk. Without this, small *known* inputs (e.g. a broadcast
        #: table) would dominate locality and funnel work onto one band.
        self._default_nbytes = max(config.chunk_store_limit, 1)

    def assign(self, graph: DAG[Subtask],
               input_nbytes: dict[str, int] | None = None) -> None:
        """Set ``subtask.band`` and ``subtask.priority`` for every node.

        ``priority`` is the subtask's topological position: the parallel
        band runner uses it to drain each band's ready queue in the same
        order the serial walk would reach the work, keeping dispatch
        deterministic.
        """
        input_nbytes = input_nbytes or {}
        bands = [band.name for band in self.cluster.bands]
        if not bands:
            raise SchedulingError("cluster has no bands")
        for position, subtask in enumerate(graph.topological_order()):
            subtask.priority = position
            preds = graph.predecessors(subtask)
            has_located_input = any(
                key in self.chunk_band for key in subtask.input_keys
            )
            if not preds and not has_located_input:
                band = self._next_breadth_first(bands)
            elif self.config.locality_scheduling:
                band = self._most_local_band(subtask, input_nbytes, bands)
            else:
                band = self._least_loaded(bands)
            subtask.band = band
            estimated = sum(
                input_nbytes.get(key, self._default_nbytes)
                for key in subtask.input_keys
            ) + 1
            subtask.load_estimate = estimated
            self._band_load[band] += estimated
            for key in subtask.output_keys:
                self.chunk_band[key] = band

    def _next_breadth_first(self, bands: list[str]) -> str:
        band = bands[self._rr_cursor % len(bands)]
        self._rr_cursor += 1
        return band

    def _most_local_band(self, subtask: Subtask,
                         input_nbytes: dict[str, int],
                         bands: list[str]) -> str:
        local_bytes: dict[str, int] = defaultdict(int)
        for key in subtask.input_keys:
            band = self.chunk_band.get(key)
            if band is not None:
                local_bytes[band] += input_nbytes.get(key, self._default_nbytes)
        if not local_bytes:
            return self._least_loaded(bands)
        best_bytes = max(local_bytes.values())
        candidates = [b for b, n in local_bytes.items() if n == best_bytes]
        chosen = min(candidates, key=lambda b: self._band_load[b])
        # balance valve: locality must not pile everything on one band —
        # when the locality choice is far more loaded than the idlest
        # band, moving the data is cheaper than waiting for the band.
        least = self._least_loaded(bands)
        if self._band_load[chosen] > 2.0 * self._band_load[least] + best_bytes:
            return least
        return chosen

    def _least_loaded(self, bands: list[str]) -> str:
        return min(bands, key=lambda b: self._band_load[b])

    def note_completed(self, subtask: Subtask) -> None:
        """Release a finished subtask's estimated load from its band.

        Without this, ``_band_load`` only ever accumulates across the
        partial executions of a session, so ``_least_loaded`` and the
        locality balance valve skew toward whichever bands happened to
        run the first stage. The executor calls this once per completed
        first-run subtask, on the deterministic accounting walk.
        """
        band = subtask.band
        if band is None or band not in self._band_load:
            return
        self._band_load[band] = max(
            0.0, self._band_load[band] - subtask.load_estimate
        )

    def reassign(self, subtask: Subtask, band: str) -> None:
        """Move a subtask (and its future outputs) to another band.

        Used by the OOM ladder's reschedule rung: the estimated load
        follows the subtask, and output placements are re-recorded so
        locality follows the data to its new home.
        """
        old = subtask.band
        if old is not None and old in self._band_load:
            self._band_load[old] = max(
                0.0, self._band_load[old] - subtask.load_estimate
            )
        subtask.band = band
        self._band_load[band] = (
            self._band_load.get(band, 0.0) + subtask.load_estimate
        )
        for key in subtask.output_keys:
            self.chunk_band[key] = band

    def record_chunk(self, key: str, band: str) -> None:
        self.chunk_band[key] = band

    def forget_chunk(self, key: str) -> None:
        """Drop a lost chunk's placement so locality never chases dead data.

        Called when fault injection drops a chunk or kills a worker;
        recovery re-records the placement when the chunk is recomputed.
        """
        self.chunk_band.pop(key, None)
