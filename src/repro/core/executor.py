"""The graph executor: fuse → schedule → simulate → compute.

Takes a chunk graph, produces subtasks via graph-level fusion, assigns
them to bands, then walks the subtask DAG: for each subtask it fetches
inputs from the storage service (charging transfers), runs the chunk
operators with the single-node backends, writes outputs back (charging
memory, possibly spilling), records metadata in the meta service, and
advances the per-band virtual clocks.

Real values are computed in-process; *time* is simulated — see
``repro.cluster.simulation``.

With ``config.parallel_execution`` on, kernel execution is split off
into an event-driven compute phase that runs independent subtasks
concurrently on the band-runner thread pool (``repro.core.dispatch``),
while this module's accounting walk stays in deterministic topological
order and consumes the precomputed results — so the simulated numbers
are identical in both modes and only wall-clock time changes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from ..cluster.cluster import ClusterState
from ..cluster.simulation import SimReport
from ..config import Config
from ..errors import (
    ActorNotFound,
    ChunkLostError,
    ExecutionHang,
    FaultInjected,
    RetriesExhausted,
    StorageKeyError,
    WorkerOutOfMemory,
    WorkerProcessCrash,
)
from ..engine.base import compiled_fusion_enabled, engine_of, persist_result
from ..graph.dag import DAG
from ..graph.entity import ChunkData
from ..graph.identity import compute_chunk_identities
from ..graph.subtask import Subtask, build_subtask_graph
from ..services.cache import ResultCacheService
from ..services.lifecycle import LifecycleService
from ..services.runner import SubtaskRunner
from ..services.scheduling import SchedulingService
from ..utils import sizeof
from .dispatch import BandDispatcher, SubtaskComputation, should_use_parallel
from .fusion import fusion_groups, singleton_groups
from .memory_control import worker_of_band
from .operator import COMBINE_DROPPED_KEY, ExecContext
from .opfusion import compile_step, plan_subtask, step_io_keys
from .scheduler import Scheduler
from .supervision import SpeculationController

#: failures the retry loop re-attempts; anything else (kernel bugs, OOM
#: with spill disabled) propagates unchanged.  A process-pool worker
#: dying mid-kernel is retryable too: the accounting walk simply re-runs
#: the (pure, deterministic) kernels inline — same lineage-recovery path
#: as a lost chunk, and no simulated number observes the crash.  A dead
#: runner actor (killed between messages, destroy racing a delivery) is
#: the same shape: its in-flight subtask re-runs inline and the
#: supervisor respawns the actor on the next delivery.
_RETRYABLE = (FaultInjected, ChunkLostError, StorageKeyError,
              WorkerProcessCrash, ActorNotFound)


def _lost_keys(exc: BaseException) -> list[str]:
    """The chunk keys a retryable failure says are gone (may be empty)."""
    if isinstance(exc, ChunkLostError):
        return list(exc.keys)
    if isinstance(exc, StorageKeyError) and exc.args:
        return [exc.args[0]]
    return []


class GraphExecutor:
    """Executes chunk graphs against one cluster + storage + meta state."""

    def __init__(self, cluster: ClusterState, storage: Any,
                 meta: Any, config: Config,
                 scheduler: Any = None,
                 shuffle: Any = None,
                 lifecycle: Any = None,
                 cache: Any = None,
                 runners: dict[str, Any] | None = None):
        """``storage``/``meta``/``scheduler``/``shuffle``/``lifecycle``
        are *service handles*: plain service objects (legacy direct
        construction) or actor refs (the deployed service plane) — the
        executor only calls methods on them, so both work identically.
        """
        self.cluster = cluster
        self.storage = storage
        self.meta = meta
        self.config = config
        #: optional shuffle index: shuffle-map output chunks register here
        #: as ``(shuffle_id, reducer)`` partitions when stored.
        self.shuffle = shuffle
        #: the scheduling service: placement, band load, memory admission.
        #: A bare placement ``Scheduler`` (legacy callers) is wrapped into
        #: a full service with its own pressure subsystem.
        if scheduler is None or isinstance(scheduler, Scheduler):
            self.scheduling = SchedulingService.create(
                cluster, config, meta, storage, scheduler=scheduler,
            )
        else:
            self.scheduling = scheduler
        #: the result cache: structural identity -> stored chunk key.
        self.cache = (
            cache if cache is not None
            else ResultCacheService(storage, config)
        )
        #: the lifecycle service: chunk refcounts, terminal flags, lineage.
        self.lifecycle = (
            lifecycle if lifecycle is not None
            else LifecycleService(storage, shuffle, config, cache=self.cache)
        )
        #: band name -> subtask runner handle (the compute phase). Legacy
        #: constructions get plain in-process runners.
        self.runners = runners if runners is not None else {
            band.name: SubtaskRunner(band.name, storage, config)
            for band in cluster.bands
        }
        #: completion virtual time of every produced chunk key.
        self.chunk_ready_at: dict[str, float] = {}
        #: failed-attempt counters keyed by the structural identity
        #: ``(stage_index, priority)`` — never reset, so serial and
        #: parallel runs of the same workload draw identical faults.
        self._attempts: dict[tuple[int, int], int] = {}
        self._stage_index = -1
        self.report = SimReport()
        self._executed_subtasks = 0
        #: sampling annotations produced during execute(), consumed when
        #: the annotated chunk's meta is recorded.
        self._pending_extra: dict[str, dict] = {}
        #: tri-state override of ``config.parallel_execution`` for every
        #: stage this executor runs (None = follow the config). Sessions
        #: set it so dynamic-tiling yield executions use the same mode as
        #: the final pass.
        self.parallel_mode: bool | None = None
        #: session id stamped on cache records (set by the session actor).
        self.session_id = ""
        #: True when this executor shares its cluster with other
        #: sessions (set by the session actor on a shared plane).
        #: Switches the stage base time to the per-session frontier,
        #: serializes stage accounting through the scheduling turnstile,
        #: and scopes admission/degrade/lifecycle/fault state by session.
        self.multi_tenant = False
        #: this session's virtual-time frontier: the max completion time
        #: of its own subtasks. On a shared cluster it replaces the
        #: global ``clock.now`` as the stage base, so one tenant's stage
        #: barrier never delays another tenant's independent subtasks —
        #: stages interleave into band idle time.
        self.frontier = 0.0
        #: per-session fault injector override (shared clusters scope
        #: chaos per tenant); ``None`` falls through to the cluster's.
        self.faults = None
        #: runtime chunk keys whose tileables called ``.cache()``: their
        #: cache entries are explicit (never budget-evicted).
        self.explicit_cache_keys: set[str] = set()
        #: this run's identity/ancestor maps (runtime chunk key -> ...),
        #: filled by the cache pass, consumed at record time.
        self._chunk_idents: dict[str, str | None] = {}
        self._chunk_deps: dict[str, frozenset] = {}
        #: records accumulated during a stage, flushed to lifecycle once.
        self._pending_cache_records: dict[str, tuple] = {}
        #: monotonic sequence for dedup tokens on mutating service
        #: messages. Minted on the accounting walk only, so the token
        #: stream — and therefore every message-chaos draw keyed on it —
        #: is identical across serial/thread/process execution. A retry
        #: or recovery re-run mints a *fresh* token: only genuine
        #: duplicate deliveries of one call are ever suppressed.
        self._msg_seq = 0
        #: speculative straggler re-execution (parallel stages only).
        self.speculation = (
            SpeculationController(config.speculation_multiplier,
                                  config.speculation_min_seconds)
            if getattr(config, "speculation", False) else None
        )
        #: duplicate dispatches fired across this executor's stages.
        self.speculative_subtasks = 0

    # -- multi-tenant helpers -------------------------------------------
    def _injector(self):
        """The fault injector in scope: per-session on a shared cluster."""
        return self.faults if self.faults is not None else self.cluster.faults

    def _supervision(self):
        """The cluster's supervision plane (``None`` on legacy setups)."""
        return getattr(self.cluster, "supervision", None)

    def _mint_token(self) -> tuple[str, int]:
        """A fresh dedup token for one mutating service message.

        ``(session, seq)`` with the sequence advanced on the accounting
        walk: structurally identical runs mint identical token streams
        in every execution mode, and concurrent tenants' streams never
        collide (the session id namespaces them).
        """
        self._msg_seq += 1
        return (self.session_id or "s0", self._msg_seq)

    def _tenant(self) -> str:
        """Session scope passed to shared services ('' on private clusters,
        so single-session behaviour is untouched)."""
        return self.session_id if self.multi_tenant else ""

    def _quota_for(self, tracker) -> int | None:
        """This tenant's per-worker admission byte cap, or ``None``."""
        if not self.multi_tenant:
            return None
        frac = float(getattr(self.config, "tenant_memory_quota", 0.0) or 0.0)
        if frac <= 0.0:
            return None
        return max(1, int(frac * tracker.limit))

    def acquire_turn(self) -> None:
        """Enter the shared-plane stage turnstile (no-op on private
        clusters); reentrant for the holding session."""
        if self.multi_tenant:
            self.scheduling.acquire_turn(self.session_id)

    def release_turn(self) -> None:
        if self.multi_tenant:
            self.scheduling.release_turn(self.session_id)

    # -- service introspection (diagnostics / tests) --------------------
    @property
    def pressure(self):
        """The scheduling service's memory-pressure subsystem."""
        return self.scheduling.memory_pressure()

    @property
    def recovery(self):
        """The lifecycle service's lineage registry."""
        return self.lifecycle.recovery_manager()

    @property
    def scheduler(self):
        """The scheduling service handle (flat placement interface)."""
        return self.scheduling

    # ------------------------------------------------------------------
    def execute(self, chunk_graph: DAG[ChunkData],
                retain_keys: set[str] | None = None,
                parallel: bool | None = None) -> SimReport:
        """Run every not-yet-materialized chunk of ``chunk_graph``.

        ``retain_keys`` are protected from the reference-count cleanup
        (results the session or a later tiling stage will read).
        ``parallel`` overrides the execution mode for this stage; by
        default :attr:`parallel_mode`, then ``config.parallel_execution``
        decide.
        """
        self.acquire_turn()
        try:
            return self._execute_stage(chunk_graph, retain_keys, parallel)
        finally:
            self.release_turn()

    def _execute_stage(self, chunk_graph: DAG[ChunkData],
                       retain_keys: set[str] | None = None,
                       parallel: bool | None = None) -> SimReport:
        retain = set(retain_keys or ())
        cache_hits = cache_bytes = 0
        if self._cache_enabled():
            chunk_graph, cache_hits, cache_bytes = self._apply_cache(
                chunk_graph)
        self.lifecycle.register_terminals({
            node.key: getattr(node, "terminal", False)
            for node in chunk_graph.nodes()
        })
        order_nodes = chunk_graph.topological_order()
        not_stored = set(self.storage.missing_keys(
            [node.key for node in order_nodes]
        ))
        pending = [node for node in order_nodes if node.key in not_stored]
        if not pending:
            empty = SimReport()
            empty.cache_hit_chunks = cache_hits
            empty.cache_reused_bytes = cache_bytes
            self.report.cache_hit_chunks += cache_hits
            self.report.cache_reused_bytes += cache_bytes
            return empty
        pending_graph = chunk_graph.subgraph(pending)

        if self.config.graph_fusion:
            groups = fusion_groups(pending_graph)
        else:
            groups = singleton_groups(pending_graph)
        subtask_graph = build_subtask_graph(pending_graph, groups)

        input_nbytes = self._known_nbytes(subtask_graph)
        self.scheduling.assign(subtask_graph, input_nbytes)

        # serial graph-construction/dispatch overhead (auto merge exists to
        # keep this small): charged once, before any subtask starts.
        # On a shared cluster the base is this session's own frontier,
        # not the global clock — another tenant's later stage must not
        # become a barrier for this one (band availability still
        # serializes real band time via ``clock.run_subtask``).
        dispatch = self.config.cost_model.dispatch_overhead * len(pending_graph)
        origin = self.frontier if self.multi_tenant else self.cluster.clock.now
        base_time = origin + dispatch

        consumers = self._count_consumers(subtask_graph)
        completion: dict[str, float] = {}
        stage = SimReport()
        stage.n_graph_nodes = len(pending_graph)
        stage.cache_hit_chunks = cache_hits
        stage.cache_reused_bytes = cache_bytes

        order = subtask_graph.topological_order()
        # stamp the structural identity fault injection and retry
        # accounting key on: (stage_index, priority) is stable across
        # execution modes and sessions, unlike the process-global keys.
        self._stage_index += 1
        for subtask in order:
            subtask.stage_index = self._stage_index
        if len(order) > self.config.max_idle_steps:
            raise ExecutionHang(
                "repro", f"subtask graph of {len(order)} nodes exceeds step budget"
            )
        if parallel is None:
            parallel = self.parallel_mode
        if parallel is None:
            parallel = self.config.parallel_execution
        # stage-boundary health sweep: restart anything dead (the kill
        # may have landed between messages, with no delivery to trigger
        # the supervisor) and arm heartbeat leases for every band about
        # to receive work. Runs at the deterministic stage base time, so
        # health verdicts are identical across execution modes; restarts
        # charge no virtual time.
        supervision = self._supervision()
        if supervision is not None:
            supervision.probe(base_time)
            for band in {s.band for s in order if s.band}:
                supervision.expect_runner(band, base_time)
        # stage boundary: on a private cluster every grant of a previous
        # stage ended at or before this stage's base time, so the ledger
        # starts empty; on a shared cluster only grants ending by this
        # session's base are pruned — other tenants' grants survive.
        if self.multi_tenant:
            self.scheduling.begin_stage(base_time)
        else:
            self.scheduling.begin_stage()
        self.lifecycle.begin_stage(dict(consumers), retain,
                                   session=self._tenant())
        try:
            if parallel and should_use_parallel(order, self.config):
                self._execute_parallel(
                    order, subtask_graph, completion, base_time, retain,
                    consumers, stage,
                )
            else:
                for subtask in order:
                    # serial compute goes through the band's runner too:
                    # the accounting walk consumes the precomputed record
                    # exactly like the parallel path (falling back to
                    # inline kernels if the runner bailed).
                    computed = self._precompute(subtask)
                    end = self._run_subtask_with_recovery(
                        subtask, subtask_graph, completion, base_time, retain,
                        consumers, stage, computed=computed,
                    )
                    completion[subtask.key] = end
        finally:
            # merge even when a stage dies (RetriesExhausted, an OOM
            # bubbling to the session's re-tile rung): the partial
            # stage's retries/waits/spills must survive into the run
            # report. Identical in both modes — the accounting walk
            # reached the same position either way.
            stage.makespan = (
                max(completion.values()) if completion else base_time
            )
            self.frontier = max(self.frontier, stage.makespan)
            stage.n_subtasks = len(completion)
            stage.peak_memory = self.cluster.peak_memory()
            stage.band_busy = dict(self.cluster.clock.band_busy)
            self._flush_cache_records()
            self._merge_report(stage)
        return stage

    # -- result cache ---------------------------------------------------
    def _cache_enabled(self) -> bool:
        return self.cache is not None and bool(
            getattr(self.config, "result_cache", False))

    def _apply_cache(self, chunk_graph: DAG[ChunkData]):
        """The cache-lookup + graph-pruning pass (planning time).

        Computes every chunk's structural identity, rewires chunks whose
        identity already has a live cached result onto the cached chunk
        key, and rebuilds the graph from its sinks so satisfied subtrees
        drop out entirely. Runs on the accounting thread, before any
        stage state exists. Returns ``(graph, hit_chunks, reused_bytes)``.
        """
        order = chunk_graph.topological_order()
        old_keys = [node.key for node in order]
        known = self.cache.known_identities(old_keys)
        idents, ancestors = compute_chunk_identities(order, known)
        for key, ident in idents.items():
            if ident is not None:
                self._chunk_idents[key] = ident
                self._chunk_deps[key] = ancestors.get(key, frozenset())
        stored = set(old_keys) - set(self.storage.missing_keys(old_keys))
        # sinks must be taken before any rebind: rebinding changes node
        # hashes, which silently breaks the DAG's internal dicts.
        sinks = chunk_graph.sinks()
        candidates: dict[str, list[ChunkData]] = {}
        for node in order:
            ident = idents.get(node.key)
            if ident is None or node.key in stored:
                continue
            candidates.setdefault(ident, []).append(node)
        hits = self.cache.lookup_many(list(candidates), self.session_id)
        n_hits = 0
        reused = 0
        for ident, (cached_key, nbytes) in hits.items():
            for node in candidates[ident]:
                if node.key == cached_key:
                    continue
                node.rebind_key(cached_key)
                n_hits += 1
                reused += nbytes
        # bind final runtime keys to identities so later passes (partial
        # executes of this run, the next run's boundary chunks) resolve
        # them without recomputing the chain.
        self.cache.note_identities([
            (node.key, idents[old_key], tuple(ancestors.get(old_key, ())))
            for node, old_key in zip(order, old_keys)
            if idents.get(old_key) is not None
        ])
        for node, old_key in zip(order, old_keys):
            if node.key != old_key and idents.get(old_key) is not None:
                self._chunk_idents[node.key] = idents[old_key]
                self._chunk_deps[node.key] = ancestors.get(
                    old_key, frozenset())
        if n_hits:
            materialized = set(self.storage.all_keys())
            from .tiler import chunk_closure
            chunk_graph = chunk_closure(
                sinks, lambda key: key in materialized)
        return chunk_graph, n_hits, reused

    def _collect_cache_record(self, subtask: Subtask,
                              stored_by_key: dict[str, int],
                              retain: set[str]) -> None:
        """Queue freshly stored reusable outputs for cache registration.

        Two kinds of chunks are worth caching: terminal (tileable
        boundary) chunks, and retained chunks — the ones a dynamic
        tiling yield demanded, which the next run's tiling pass will
        demand again at the same structural position.
        """
        auto = bool(getattr(self.config, "result_cache_auto", True))
        for chunk in subtask.chunks:
            key = chunk.key
            if key not in stored_by_key:
                continue
            if not getattr(chunk, "terminal", False) and key not in retain:
                continue
            ident = self._chunk_idents.get(key)
            if ident is None:
                continue
            explicit = key in self.explicit_cache_keys
            if not auto and not explicit:
                continue
            self._pending_cache_records[key] = (
                ident, key, stored_by_key[key],
                tuple(self._chunk_deps.get(key, ())), explicit,
            )

    def _flush_cache_records(self) -> None:
        if not self._pending_cache_records:
            return
        records = list(self._pending_cache_records.values())
        self._pending_cache_records.clear()
        self.lifecycle.cache_record(records, self.session_id,
                                    dedup_token=self._mint_token())

    # ------------------------------------------------------------------
    def _execute_parallel(self, order: list[Subtask], graph: DAG[Subtask],
                          completion: dict[str, float], base_time: float,
                          retain: set[str], consumers: dict[str, int],
                          stage: SimReport) -> None:
        """Event-driven kernel execution + deterministic accounting.

        Pool threads run the per-band subtask runners as dependencies
        resolve (one logical slot per band); this thread drains the
        results in topological order and performs the exact accounting
        the serial walk would, so every ``SimReport`` field matches
        serial mode.
        """
        # wall-clock admission: pool threads must not actually overlap
        # kernels whose estimated footprints exceed a worker's budget.
        # Estimates are snapshotted here, on the accounting thread, so
        # the gate reads no mutable shared state; it never affects any
        # simulated number (see memory_control.DispatchGate).
        gate = (
            self.scheduling.dispatch_gate(order, self._tenant())
            if self.config.admission_control else None
        )
        system = getattr(self.cluster, "actor_system", None)

        def compute(subtask: Subtask,
                    inputs: dict[str, Any]) -> SubtaskComputation:
            # pool threads are not actors; label them so runner/storage
            # messages they send carry a real sender in the trace.
            if system is not None:
                system.set_thread_sender("band-runner")
            return self.runners[subtask.band].compute(subtask, inputs)

        def fetch(keys: list[str]) -> dict[str, Any]:
            if system is not None:
                system.set_thread_sender("band-runner")
            return self.storage.peek_values(keys)

        dispatcher = BandDispatcher(
            graph, order, compute, fetch,
            pool=self.cluster.executor_pool(), gate=gate,
            watchdog=self.config.dispatch_watchdog_timeout,
            speculation=self.speculation,
        )
        dispatcher.start()
        try:
            for subtask in order:
                computed: SubtaskComputation | None
                try:
                    computed = dispatcher.wait_for(subtask.key)
                except _RETRYABLE:
                    # the compute phase raced a fault deletion; recover
                    # inline on this thread — the retry wrapper re-runs
                    # the kernels serially, and since the storage state
                    # at each accounting position is identical across
                    # modes, the retry/recovery accounting is too.
                    computed = None
                end = self._run_subtask_with_recovery(
                    subtask, graph, completion, base_time, retain,
                    consumers, stage, computed=computed,
                )
                completion[subtask.key] = end
                if computed is None:
                    dispatcher.resolve(subtask)
                else:
                    dispatcher.discard(subtask.key)
        finally:
            dispatcher.shutdown()
            self.speculative_subtasks += dispatcher.speculative_count

    def _precompute(self, subtask: Subtask) -> SubtaskComputation | None:
        """Serial-mode compute phase: run kernels via the band's runner.

        Returns ``None`` (inline fallback) when the band has no runner
        or the runner bailed — the accounting walk then re-runs the
        kernels itself, failing or retrying at the exact point the
        pre-service engine did.
        """
        runner = self.runners.get(subtask.band)
        return runner.precompute(subtask) if runner is not None else None

    # -- fault recovery -------------------------------------------------
    def _run_subtask_with_recovery(
            self, subtask: Subtask, graph: DAG[Subtask],
            completion: dict[str, float], base_time: float,
            retain: set[str], consumers: dict[str, int], stage: SimReport,
            computed: SubtaskComputation | None = None) -> float:
        """Retry loop around :meth:`_run_subtask`.

        Runs entirely on the accounting thread in both execution modes,
        so injection draws, retries, backoff and lineage recomputation
        happen in the same deterministic order serially and in parallel.
        Each failed attempt charges exponential backoff to the subtask's
        simulated start time; a retryable failure past the budget raises
        :class:`RetriesExhausted` instead of looping or hanging.
        """
        injector = self._injector()
        squeezed = None
        squeezed_limit = 0
        if injector.enabled:
            factor = injector.squeeze_memory(subtask)
            if factor is not None:
                # transient memory squeeze: the subtask's worker loses
                # part of its budget for the whole admission/ladder span
                # of this subtask, restored afterwards. Applied on the
                # accounting thread, so serial and parallel runs squeeze
                # identically.
                squeezed = self.cluster.memory[worker_of_band(subtask.band)]
                squeezed_limit = squeezed.limit
                squeezed.set_limit(max(1, int(squeezed_limit * factor)))
        try:
            if not injector.enabled:
                end = self._run_guarded(subtask, graph, completion, base_time,
                                        retain, consumers, stage,
                                        computed=computed)
                self.lifecycle.finish_subtask(subtask, session=self._tenant(),
                                              dedup_token=self._mint_token())
                return end
            spec = injector.spec
            ident = (subtask.stage_index, subtask.priority)
            extra_delay = 0.0
            while True:
                attempt = self._attempts.get(ident, 0)
                try:
                    if injector.fail_compute(subtask, attempt):
                        raise FaultInjected("compute", subtask.key)
                    missing = self.storage.missing_keys(subtask.input_keys)
                    if missing:
                        raise ChunkLostError(missing)
                    end = self._run_guarded(
                        subtask, graph, completion, base_time, retain,
                        consumers, stage, computed=computed,
                        extra_delay=extra_delay,
                    )
                except _RETRYABLE as exc:
                    self._attempts[ident] = attempt + 1
                    if attempt >= spec.max_retries:
                        raise RetriesExhausted(
                            subtask.key, attempt + 1, exc
                        ) from exc
                    stage.retries += 1
                    backoff = spec.backoff_base * spec.backoff_factor ** attempt
                    extra_delay += backoff
                    stage.backoff_time += backoff
                    # a precomputed record may predate the failure; re-run
                    # the (pure, deterministic) kernels inline instead.
                    computed = None
                    lost = _lost_keys(exc)
                    if lost:
                        self._recover_lost(lost, base_time, stage)
                    continue
                self.lifecycle.finish_subtask(subtask, session=self._tenant(),
                                              dedup_token=self._mint_token())
                self._inject_post_subtask(subtask, stage)
                return end
        finally:
            if squeezed is not None:
                squeezed.set_limit(squeezed_limit)

    def _run_guarded(self, subtask: Subtask, graph: DAG[Subtask] | None,
                     completion: dict[str, float], base_time: float,
                     retain: set[str], consumers: dict[str, int],
                     stage: SimReport,
                     computed: SubtaskComputation | None = None,
                     recovering: bool = False,
                     extra_delay: float = 0.0) -> float:
        """The OOM recovery ladder around :meth:`_run_subtask`.

        On :class:`WorkerOutOfMemory`, escalate deterministically:

        (a) force-spill every unpinned resident of the worker and retry
            in place;
        (b) reschedule the subtask onto the worker with the most free
            memory (its earliest-free band) and retry there;
        (c) degrade the worker to serial one-subtask-at-a-time execution
            (exclusive admission) and retry once more;
        (d) give up locally — the OOM bubbles to ``Session.execute``,
            which re-enters dynamic tiling with a halved chunk limit
            (memory-aware re-tiling, counted as ``pressure_splits``).

        Every rung runs on the accounting thread from deterministic
        state, so the ladder's path — and all its counters — are
        bit-identical between serial and parallel modes.
        """
        try:
            return self._run_subtask(
                subtask, graph, completion, base_time, retain, consumers,
                stage, computed=computed, recovering=recovering,
                extra_delay=extra_delay,
            )
        except WorkerOutOfMemory:
            if not self.config.oom_recovery:
                raise
        worker = worker_of_band(subtask.band)
        # rung (a): force-spill unpinned residents, retry in place.
        stage.oom_retries += 1
        stage.forced_spill_bytes += self.storage.force_spill(worker)
        try:
            return self._run_subtask(
                subtask, graph, completion, base_time, retain, consumers,
                stage, computed=computed, recovering=recovering,
                extra_delay=extra_delay,
            )
        except WorkerOutOfMemory:
            pass
        # rung (b): reschedule onto the freest worker's earliest band.
        target = self.scheduling.freest_worker()
        if target != worker and not recovering:
            stage.oom_retries += 1
            bands = [b.name for b in self.cluster.bands if b.worker == target]
            new_band = min(
                bands,
                key=lambda name: (self.cluster.clock.band_free[name], name),
            )
            self.scheduling.reassign(subtask, new_band)
            worker = target
            try:
                return self._run_subtask(
                    subtask, graph, completion, base_time, retain, consumers,
                    stage, computed=computed, recovering=recovering,
                    extra_delay=extra_delay,
                )
            except WorkerOutOfMemory:
                pass
        # rung (c): degrade the worker to one subtask at a time and
        # retry under exclusive admission; a second failure here means
        # the subtask cannot fit even alone — escalate to re-tiling (d).
        stage.oom_retries += 1
        self.scheduling.degrade(worker, self._tenant())
        return self._run_subtask(
            subtask, graph, completion, base_time, retain, consumers,
            stage, computed=computed, recovering=recovering,
            extra_delay=extra_delay,
        )

    def _recover_lost(self, keys: list[str], base_time: float,
                      stage: SimReport) -> None:
        """Re-execute the minimal lineage closure that restores ``keys``.

        The plan walks backwards to producers whose outputs are gone —
        including transitively, e.g. shuffle-map partitions freed by
        refcounting — and re-runs them in (stage, priority) order.
        Recovery re-executions skip refcount cleanup and post-subtask
        injection, so they converge even at 100% loss rates.
        """
        plan = self.lifecycle.plan(keys)
        for producer in plan:
            self._run_guarded(
                producer, None, {}, base_time, set(), {}, stage,
                recovering=True,
            )
            stage.recomputed_subtasks += 1

    def _inject_post_subtask(self, subtask: Subtask,
                             stage: SimReport) -> None:
        """Post-success injection points: chunk drops and worker kills.

        Only first-runs reach this (never recovery re-executions), and
        lineage for the subtask is recorded beforehand, so everything
        lost here is recomputable.
        """
        injector = self._injector()
        for out_index, key in enumerate(subtask.output_keys):
            if injector.drop_chunk(subtask, out_index, key):
                self._lose_chunk(key)
        if injector.kill_worker_after(subtask):
            band = self.cluster.band_by_name(subtask.band)
            self._kill_worker(band.worker, stage)
        for uid in injector.actor_kills_after(subtask):
            self._kill_actor(uid)

    def _lose_chunk(self, key: str) -> None:
        # Fault loss deletes the data but keeps any shuffle index entry:
        # metadata outlives data loss, and when lineage recovery re-runs
        # the mapper, ``register_partition`` replaces the stale entry
        # (that is the re-registration path the lifecycle tests pin).
        # Refcount frees, by contrast, forget the index eagerly.
        self.storage.delete(key)
        self.scheduling.forget_chunk(key)
        if self._cache_enabled():
            # a lost chunk must never be registered, and anything cached
            # on top of it descends from vanished bytes. On a shared
            # cluster the transitive walk is scoped to this tenant's
            # entries — a neighbour's materialized results stay valid.
            self._pending_cache_records.pop(key, None)
            scope = self.session_id if self.multi_tenant else None
            self.lifecycle.invalidate_cached([key], session=scope)

    def _kill_actor(self, uid: str) -> None:
        """Crash one service/runner actor (scripted chaos).

        The supervisor respawns it lazily — on the next delivery to the
        uid or at the next stage-boundary probe — replaying state from
        its authoritative source (durable storage unit, long-lived
        service object, or lineage for runner compute). Zero virtual
        time is charged, so reports stay bit-identical.
        """
        plane = self._supervision()
        if plane is not None:
            plane.kill(uid)

    def _kill_worker(self, worker: str, stage: SimReport) -> None:
        """Simulate a worker crash right after a subtask completed.

        Every chunk resident on the worker that has recorded lineage is
        lost (recomputable on demand); chunks without lineage are
        driver-held inputs and survive. The worker's bands sit out the
        configured restart time before accepting more work.

        On a shared cluster only this session's chunks are lost — a
        tenant's scoped chaos (its own injector) models failures of *its*
        work, and must never drop a neighbour's chunks.
        """
        prefix = f"{self.session_id}/" if self.multi_tenant else None
        for key in list(self.storage.keys_on(worker)):
            if prefix is not None and not key.startswith(prefix):
                continue
            if self.lifecycle.producer_of(key) is None:
                continue
            self._lose_chunk(key)
        restart = self._injector().spec.worker_restart_time
        for band in self.cluster.bands:
            if band.worker == worker:
                self.cluster.clock.delay_band(band.name, restart)

    def ensure_available(self, keys) -> None:
        """Recompute any of ``keys`` missing from storage.

        Fetch-time recovery: a worker kill may take user-visible chunks
        after their producing stage finished; sessions call this before
        assembling results so a fetch never dies on a recoverable loss.
        """
        missing = self.storage.missing_keys(keys)
        if not missing:
            return
        self.acquire_turn()
        try:
            stage = SimReport()
            self._recover_lost(missing, self.cluster.clock.now, stage)
            self.report.recomputed_subtasks += stage.recomputed_subtasks
            self.report.recovery_bytes += stage.recovery_bytes
            self.report.total_compute_seconds += stage.total_compute_seconds
        finally:
            self.release_turn()

    # ------------------------------------------------------------------
    def _run_subtask(self, subtask: Subtask, graph: DAG[Subtask] | None,
                     completion: dict[str, float], base_time: float,
                     retain: set[str], consumers: dict[str, int],
                     stage: SimReport,
                     computed: SubtaskComputation | None = None,
                     recovering: bool = False,
                     extra_delay: float = 0.0) -> float:
        # pin + fetch the whole input set in one storage message: the
        # pins hold for the whole accounting span — memory admission and
        # output spill must never evict what this subtask is reading
        # (in-flight inputs are not spill victims) — and acquire_many
        # applies them before any fetch can raise, so the unconditional
        # unpin below always balances.
        worker = worker_of_band(subtask.band)
        infos = self.storage.acquire_many(subtask.input_keys, worker)
        try:
            return self._run_subtask_inner(
                subtask, graph, completion, base_time, retain, consumers,
                stage, computed, recovering, extra_delay, infos,
            )
        finally:
            self.storage.unpin(subtask.input_keys)

    def _run_subtask_inner(self, subtask: Subtask, graph: DAG[Subtask] | None,
                           completion: dict[str, float], base_time: float,
                           retain: set[str], consumers: dict[str, int],
                           stage: SimReport,
                           computed: SubtaskComputation | None,
                           recovering: bool,
                           extra_delay: float,
                           infos: list[Any]) -> float:
        band = self.cluster.band_by_name(subtask.band)
        worker = band.worker
        tracker = self.cluster.memory[worker]
        cost = self.config.cost_model

        # sizeof is recursive and the same env value is sized at
        # step-input, step-output, release and output-store time — cache
        # it per env key for the lifetime of this subtask.
        sizes: dict[str, int] = {}

        def sized(key: str, value: Any) -> int:
            nbytes = sizes.get(key)
            if nbytes is None:
                nbytes = sizes[key] = sizeof(value)
            return nbytes

        # -- gather inputs --------------------------------------------------
        env: dict[str, Any] = {}
        input_bytes = 0
        transferred = 0
        disk_bytes = 0
        ready_time = base_time
        if graph is not None:
            for pred in graph.predecessors(subtask):
                ready_time = max(ready_time, completion[pred.key])
        for key, info in zip(subtask.input_keys, infos):
            env[key] = info.value
            sizes[key] = info.nbytes
            input_bytes += info.nbytes
            transferred += info.transferred_bytes
            if info.tier_penalty > 1.0:
                disk_bytes += info.nbytes
            if key in self.chunk_ready_at:
                ready_time = max(ready_time, self.chunk_ready_at[key])
        # failed attempts delay the retry's start: backoff is simulated
        # time the subtask spends waiting, not band busy time.
        ready_time += extra_delay

        # -- execute steps ---------------------------------------------------
        steps = plan_subtask(subtask, enable=self.config.operator_fusion)
        cpu_bytes = 0
        executed_ops: set[int] = set()
        # transient working set: every value resident in the subtask's
        # local environment counts, so a fused chain over one huge chunk
        # cannot dodge the memory budget (that is how single-node pandas
        # dies: the whole table is one "chunk"). Values are released from
        # the environment as soon as their last in-subtask consumer ran,
        # like any real executor frees intermediates.
        env_bytes = input_bytes
        env_peak = input_bytes

        def _env_store(key: str, value: Any) -> None:
            # overwriting a key must not double-count: release the old
            # value's bytes (and its stale cached size) first.
            nonlocal env_bytes
            if key in env:
                env_bytes -= sized(key, env[key])
                sizes.pop(key, None)
            env[key] = value
            env_bytes += sized(key, value)

        output_key_set = set(subtask.output_keys)
        remaining_consumers: dict[str, int] = defaultdict(int)
        counted_ops: set[int] = set()
        for chunk in subtask.chunks:
            op = chunk.op
            if op is None or id(op) in counted_ops:
                continue
            counted_ops.add(id(op))
            for dep in op.inputs:
                remaining_consumers[dep.key] += 1
        for step in steps:
            step_inputs, step_outputs = step_io_keys(step)
            step_in_bytes = sum(
                sized(k, env[k]) for k in step_inputs if k in env
            )
            # compiled fused steps (same structural decision the runners
            # made): one evaluator call, and only the final result ever
            # enters the environment — fused intermediates exist solely
            # as locals of the generated function, so they no longer
            # inflate the transient working-set peak.
            compiled = (
                compile_step(step)
                if compiled_fusion_enabled(self.config) else None
            )
            if compiled is not None:
                final_op = compiled.final_op
                if computed is None:
                    result = compiled.run(env)
                else:
                    result = computed.op_results[id(final_op)]
                _env_store(compiled.output_key, result)
                env_peak = max(env_peak, env_bytes)
                for chunk in step:
                    op = chunk.op
                    if op is None or id(op) in executed_ops:
                        continue
                    executed_ops.add(id(op))
                    for dep in op.inputs:
                        remaining_consumers[dep.key] -= 1
                        if (remaining_consumers[dep.key] <= 0
                                and dep.key not in output_key_set
                                and dep.key in env):
                            env_bytes -= sized(dep.key, env.pop(dep.key))
            else:
                for chunk in step:
                    op = chunk.op
                    if op is None or id(op) in executed_ops:
                        continue
                    executed_ops.add(id(op))
                    if computed is None:
                        ctx = ExecContext(env, self.config)
                        # same persist the runners apply: the env (and
                        # with it sized(), storage, shuffle accounting)
                        # only ever sees physical values.
                        result = persist_result(
                            engine_of(self.config), op, op.execute(ctx)
                        )
                        extra_meta = ctx.extra_meta
                    else:
                        result = computed.op_results[id(op)]
                        extra_meta = computed.op_extra_meta.get(id(op), {})
                    if isinstance(result, dict) and result and all(
                        k in {o.key for o in op.outputs} for k in result
                    ):
                        for out_key, value in result.items():
                            _env_store(out_key, value)
                    else:
                        _env_store(op.outputs[0].key, result)
                    env_peak = max(env_peak, env_bytes)
                    for dep in op.inputs:
                        remaining_consumers[dep.key] -= 1
                        if (remaining_consumers[dep.key] <= 0
                                and dep.key not in output_key_set
                                and dep.key in env):
                            env_bytes -= sized(dep.key, env.pop(dep.key))
                    for meta_key, extra in extra_meta.items():
                        dropped = extra.pop(COMBINE_DROPPED_KEY, 0)
                        if dropped:
                            stage.combine_dropped_rows += int(dropped)
                        if extra:
                            self._pending_extra.setdefault(
                                meta_key, {}
                            ).update(extra)
            step_out_bytes = sum(
                sized(k, env[k]) for k in step_outputs if k in env
            )
            shuffle_factor = 1.0
            if any(c.op is not None and c.op.is_shuffle_map for c in step):
                shuffle_factor = cost.shuffle_write_factor
                stage.total_shuffle_bytes += int(step_out_bytes)
            if all(c.op is not None and c.op.is_lightweight for c in step):
                cpu_bytes += 0
            else:
                cpu_bytes += int(step_in_bytes + step_out_bytes * shuffle_factor)

        # -- memory admission --------------------------------------------------
        output_bytes = sum(
            sized(key, env[key]) for key in subtask.output_keys if key in env
        )
        working_set = int(self.config.peak_factor * max(
            env_peak, input_bytes + output_bytes
        ))
        decision = None
        if recovering:
            # recovery re-executions restore already-accounted data:
            # they skip the ledger (like they skip refcounting and
            # injection) but still respect the budget via spill.
            if not tracker.can_fit(working_set):
                if self.config.spill_to_disk:
                    self.storage.ensure_free(worker, working_set)
                else:
                    raise WorkerOutOfMemory(worker, working_set,
                                            tracker.limit, tracker.used)
        else:
            # one scheduling message folds estimate → degraded-check →
            # admit; the ledger still reserves the *estimated* footprint
            # (what a real scheduler knows pre-execution), floored by
            # the actual working set the simulator just measured.
            decision, exclusive = self.scheduling.admit_subtask(
                subtask, worker, working_set, ready_time,
                tracker.used, tracker.limit,
                allow_wait=self.config.admission_control,
                session=self._tenant(), quota=self._quota_for(tracker),
            )
            if exclusive:
                stage.degraded_subtasks += 1
            stage.admission_wait_time += decision.wait
            ready_time = decision.start
            # concurrent grants still active at our start count against
            # the budget: without backpressure this is exactly how the
            # seed engine dispatches N working sets into one worker. The
            # hard check uses the *actual* working set (estimates only
            # decide when to start, never inflate what must fit — a
            # forced admission drained the ledger, so this reduces to
            # the seed engine's own check).
            headroom = decision.active + working_set
            if not tracker.can_fit(headroom):
                if self.config.spill_to_disk:
                    self.storage.ensure_free(worker, headroom)
                else:
                    raise WorkerOutOfMemory(worker, headroom, tracker.limit,
                                            tracker.used)
        tracker.note_transient(working_set)

        # -- store outputs ------------------------------------------------------
        shuffle_chunks: dict[str, Any] = {}
        if self.shuffle is not None:
            shuffle_chunks = {
                c.key: c for c in subtask.chunks
                if c.op is not None and c.op.is_shuffle_map
                and getattr(c.op, "shuffle_id", None) is not None
                and len(c.index) >= 2
            }
        # outputs go out in three batched messages — all puts, then all
        # shuffle registrations, then all meta records. Each put still
        # walks the full single-put path in key order (delete-if-exists,
        # spill-or-raise, pin migration), so storage state after the
        # batch matches the interleaved per-key calls it replaces.
        put_entries = []
        for key in subtask.output_keys:
            if key not in env:
                raise KeyError(f"subtask produced no value for output {key!r}")
            put_entries.append((key, env[key], sizes.get(key)))
        stored_sizes = self.storage.put_many(put_entries, worker,
                                             dedup_token=self._mint_token())
        register_entries = []
        meta_entries = []
        for (key, value, _), stored in zip(put_entries, stored_sizes):
            chunk = shuffle_chunks.get(key)
            if chunk is not None:
                register_entries.append((
                    chunk.op.shuffle_id, int(chunk.index[0]),
                    int(chunk.index[1]), key, worker, stored,
                ))
            if recovering:
                stage.recovery_bytes += stored
                self.scheduling.record_chunk(key, subtask.band)
            meta_entries.append((key, value, self._pending_extra.pop(key, None)))
        if register_entries:
            self.shuffle.register_partitions(register_entries,
                                             dedup_token=self._mint_token())
        if meta_entries:
            self.meta.set_from_values(meta_entries)
        if not recovering and self._cache_enabled():
            stored_by_key = {
                key: stored
                for (key, _value, _), stored in zip(put_entries, stored_sizes)
            }
            self._collect_cache_record(subtask, stored_by_key, retain)

        # -- charge virtual time ---------------------------------------------------
        duration = (
            cost.subtask_overhead
            + self.cluster.clock.compute_cost(cpu_bytes, band)
            + self.cluster.clock.transfer_cost(transferred)
            + disk_bytes * (cost.disk_penalty - 1.0) / cost.network_bandwidth
            + cost.dispatch_overhead * len(steps)
        )
        end = self.cluster.clock.run_subtask(band, ready_time, duration)
        supervision = self._supervision()
        if supervision is not None:
            # virtual-clock heartbeat: a completion on the band renews
            # its runner's liveness lease (accounting walk — identical
            # beats in every execution mode).
            supervision.beat_runner(band, end)
        for key in subtask.output_keys:
            self.chunk_ready_at[key] = end
        if decision is not None:
            # one scheduling message: the grant is committed to span the
            # subtask's virtual execution (later admissions on this
            # worker see it until ``end`` passes), the estimator
            # observes the measured sizes, and the band-load claim is
            # released. The lifecycle epilogue — refcount release plus
            # lineage recording — happens in the retry wrapper, one
            # message too; recovery re-executions skip both, exactly as
            # before: the original run already consumed its inputs'
            # refcounts, and recoveries are never first-class successes.
            self.scheduling.finish_subtask(decision, end, subtask, sizes)

        stage.total_compute_seconds += duration
        stage.total_transfer_bytes += transferred
        self._executed_subtasks += 1
        return end

    # ------------------------------------------------------------------
    def _known_nbytes(self, subtask_graph: DAG[Subtask]) -> dict[str, int]:
        keys: set[str] = set()
        for subtask in subtask_graph.nodes():
            keys.update(subtask.input_keys)
        metas = self.meta.get_many(sorted(keys))
        return {key: meta.nbytes for key, meta in metas.items()}

    def _count_consumers(self, subtask_graph: DAG[Subtask]) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for subtask in subtask_graph.nodes():
            for key in subtask.input_keys:
                counts[key] += 1
        return counts

    def _merge_report(self, stage: SimReport) -> None:
        report = self.report
        report.makespan = max(report.makespan, stage.makespan)
        report.total_compute_seconds += stage.total_compute_seconds
        report.total_transfer_bytes += stage.total_transfer_bytes
        report.total_shuffle_bytes += stage.total_shuffle_bytes
        report.combine_dropped_rows += stage.combine_dropped_rows
        report.n_subtasks += stage.n_subtasks
        report.n_graph_nodes += stage.n_graph_nodes
        report.retries += stage.retries
        report.recomputed_subtasks += stage.recomputed_subtasks
        report.recovery_bytes += stage.recovery_bytes
        report.backoff_time += stage.backoff_time
        report.oom_retries += stage.oom_retries
        report.admission_wait_time += stage.admission_wait_time
        report.degraded_subtasks += stage.degraded_subtasks
        report.pressure_splits += stage.pressure_splits
        report.forced_spill_bytes += stage.forced_spill_bytes
        report.cache_hit_chunks += stage.cache_hit_chunks
        report.cache_reused_bytes += stage.cache_reused_bytes
        for worker, peak in stage.peak_memory.items():
            report.peak_memory[worker] = max(report.peak_memory.get(worker, 0), peak)
        report.band_busy = dict(stage.band_busy)
