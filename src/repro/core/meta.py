"""The meta service: execution-time metadata that powers dynamic tiling.

After a chunk executes, the executor derives its real shape, byte size,
dtype and columns and records them here (Step 2 of Fig. 5a). The tiling
process later reads these records to decide how to partition the rest of
the pipeline — reduce-algorithm selection, auto merge, and iterative
``iloc`` tiling all consume this state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from ..engine.base import describe_value


@dataclass
class ChunkMeta:
    """Observed facts about one executed chunk."""

    shape: tuple
    nbytes: int
    kind: str
    dtype: Any = None
    columns: Optional[list] = None
    #: operator-specific extras, e.g. {"input_rows": ..} for agg sampling.
    extra: dict = field(default_factory=dict)


def meta_from_value(value: Any, extra: dict | None = None) -> ChunkMeta:
    """Derive a :class:`ChunkMeta` from an executed chunk's value.

    Dispatches through the engine seam (``repro.engine``): chunk values
    are physical, and each backend registers describers for its own
    types — a columnar chunk reports its dictionary-encoded byte size,
    which is what storage budgets and footprint EWMAs must see.
    """
    return ChunkMeta(**describe_value(value, extra))


class MetaService:
    """Keyed store of chunk metadata, readable during tiling.

    Access is locked: metadata is written by the executor's accounting
    walk while tiling code (and, under parallel execution, band-runner
    threads via operator ``tile``/``execute`` hooks) may read it.
    """

    def __init__(self):
        self._metas: dict[str, ChunkMeta] = {}
        self._lock = threading.RLock()

    def set(self, key: str, meta: ChunkMeta) -> None:
        with self._lock:
            self._metas[key] = meta

    def set_from_value(self, key: str, value: Any,
                       extra: dict | None = None) -> ChunkMeta:
        meta = meta_from_value(value, extra=extra)
        with self._lock:
            self._metas[key] = meta
        return meta

    def set_from_values(self, entries) -> None:
        """Batched :meth:`set_from_value`: ``(key, value, extra)`` tuples.

        One message records a subtask's whole output set.
        """
        with self._lock:
            for key, value, extra in entries:
                self._metas[key] = meta_from_value(value, extra=extra)

    def get(self, key: str) -> Optional[ChunkMeta]:
        with self._lock:
            return self._metas.get(key)

    def get_many(self, keys) -> dict[str, ChunkMeta]:
        """Batched :meth:`get`: only keys with recorded meta appear."""
        with self._lock:
            return {
                key: self._metas[key] for key in keys if key in self._metas
            }

    def require(self, key: str) -> ChunkMeta:
        meta = self.get(key)
        if meta is None:
            raise KeyError(f"no meta recorded for chunk {key!r}")
        return meta

    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._metas

    def update_extra(self, key: str, **extra: Any) -> None:
        with self._lock:
            self.require(key).extra.update(extra)

    def delete(self, key: str) -> None:
        with self._lock:
            self._metas.pop(key, None)

    def count(self) -> int:
        """Number of recorded chunk metas (``len()`` for actor refs)."""
        with self._lock:
            return len(self._metas)

    def __len__(self) -> int:
        return len(self._metas)
