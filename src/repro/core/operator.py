"""Operator base classes and the tiling/execution contexts.

Every public API of the engine is internally an operator with three
faces (Section III-C):

- ``new_tileable`` — the ``__call__`` face: builds the logical node;
- ``tile`` — builds chunk-level nodes; written as a *generator* so it can
  ``yield`` a partial chunk list to trigger execution and resume with
  fresh metadata (the dynamic-tiling mechanism of Fig. 5);
- ``execute`` — runs on a worker against real chunk values.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..config import Config
from ..engine.base import engine_of
from ..graph.entity import ChunkData, TileableData

if TYPE_CHECKING:
    from .meta import ChunkMeta, MetaService


class TileContext:
    """What an operator may consult while tiling."""

    def __init__(self, config: Config, meta: MetaService, storage=None,
                 executor=None):
        self.config = config
        self.meta = meta
        self._storage = storage
        self._executor = executor

    def _recoverable(self, chunk_key: str) -> bool:
        """A fault took this executed chunk, but lineage can restore it.

        Gated on the injector being enabled so fault-free sessions keep
        the exact pre-recovery semantics: tiling decisions must not
        change when no chaos is configured.
        """
        return (
            self._executor is not None
            and self._executor.cluster.faults.enabled
            and self._executor.recovery.producer_of(chunk_key) is not None
        )

    def has_value(self, chunk_key: str) -> bool:
        """True when the chunk's value currently sits in storage.

        Metadata can outlive the value (reference counting frees consumed
        chunks), so sampling code must check this — not ``meta.has`` —
        before ``peek``-ing. Under fault injection a chunk that was
        executed but lost still counts: ``peek`` recovers it, so tiling
        takes the same branch it would in a fault-free run.
        """
        if self._storage is not None and self._storage.contains(chunk_key):
            return True
        return self._recoverable(chunk_key)

    def peek(self, chunk_key: str) -> Any:
        """Read an *executed* chunk's value (e.g. sampled key quantiles).

        Only meaningful after the chunk was yielded for execution; this is
        how sampling-based decisions (range partitioning bounds) consume
        the data gathered by a dynamic-tiling switch.
        """
        if self._storage is None:
            raise RuntimeError("tile context has no storage attached")
        if not self._storage.contains(chunk_key) and self._recoverable(
                chunk_key):
            self._executor.ensure_available([chunk_key])
        # storage holds physical (engine-encoded) values; sampling code
        # reasons about logical frames, so decode on the way out.
        return engine_of(self.config).compute(self._storage.peek(chunk_key))

    def chunk_meta(self, chunk: ChunkData) -> Optional[ChunkMeta]:
        return self.meta.get(chunk.key)

    def chunk_metas(self, chunks: Sequence[ChunkData]) -> list[Optional[ChunkMeta]]:
        """Batched :meth:`chunk_meta`: one meta round-trip per chunk list.

        Tiling helpers loop over whole chunk lists; fetching metas one
        message at a time dominated the actor plane's tiling traffic.
        """
        if not chunks:
            return []
        metas = self.meta.get_many([chunk.key for chunk in chunks])
        return [metas.get(chunk.key) for chunk in chunks]

    def chunk_nbytes_many(self, chunks: Sequence[ChunkData],
                          default: int = 0) -> list[int]:
        """Batched :meth:`chunk_nbytes` over a chunk list."""
        return [
            meta.nbytes if meta is not None else default
            for meta in self.chunk_metas(chunks)
        ]

    def chunk_nbytes(self, chunk: ChunkData, default: int = 0) -> int:
        meta = self.meta.get(chunk.key)
        return meta.nbytes if meta is not None else default

    def chunk_len(self, chunk: ChunkData) -> Optional[int]:
        meta = self.meta.get(chunk.key)
        if meta is None:
            return chunk.shape[0] if chunk.shape and chunk.shape[0] is not None else None
        return meta.shape[0] if meta.shape else 0


#: reserved ``ExecContext.annotate`` key: rows a shuffle-map folded away
#: by mapper-side combine. The executor routes it into the stage's
#: ``SimReport`` (on the deterministic accounting walk) instead of the
#: chunk's metadata.
COMBINE_DROPPED_KEY = "__combine_dropped_rows"


class ExecContext:
    """What an operator sees while executing on a worker.

    ``get`` returns input chunk values (already fetched from storage by
    the executor) decoded to *logical* frames — the environment holds
    whatever physical form ``Config.chunk_engine`` selected, but kernels
    always compute on ``repro.frame`` containers. ``get_physical`` hands
    out the raw stored value for kernels that partition/split through
    the engine without materializing rows. ``extra_meta`` lets operators
    attach sampling facts (e.g. pre/post aggregation sizes) that dynamic
    tiling reads later.
    """

    def __init__(self, values: dict[str, Any], config: Config):
        self._values = values
        self.config = config
        self.engine = engine_of(config)
        self.extra_meta: dict[str, dict] = {}

    def get(self, key: str) -> Any:
        return self.engine.compute(self._values[key])

    def get_physical(self, key: str) -> Any:
        return self._values[key]

    def has(self, key: str) -> bool:
        return key in self._values

    def annotate(self, chunk_key: str, **extra: Any) -> None:
        self.extra_meta.setdefault(chunk_key, {}).update(extra)


class Operator:
    """Base class of every tileable- and chunk-level operator."""

    #: map/combine/reduce stage markers for multi-stage operators.
    STAGE_MAP = "map"
    STAGE_COMBINE = "combine"
    STAGE_REDUCE = "reduce"

    #: subclasses set this True when the op is a shuffle-map whose writes
    #: should be charged the shuffle write factor.
    is_shuffle_map = False
    #: ops that cost (almost) nothing, e.g. metadata-only slices.
    is_lightweight = False
    #: elementwise ops are candidates for operator-level fusion.
    is_elementwise = False
    #: compiled-fusion protocol (``core.opfusion.compile_step``): ``None``
    #: declines codegen (the fused step is interpreted op-by-op); the
    #: string ``"call"`` emits ``op.func(*input_exprs)``; any other string
    #: is a Python expression template formatted with the op's input
    #: variables, e.g. ``"{0}[{1}]"`` for boolean-mask filtering. Ops that
    #: annotate ``ExecContext.extra_meta`` must decline.
    fuse_expr: str | None = None

    def __init__(self, **params: Any):
        self.params = params
        self.inputs: list = []
        self.outputs: list = []
        self.stage: Optional[str] = None

    # -- graph construction -------------------------------------------------
    def new_tileable(self, inputs: Sequence[TileableData], kind: str,
                     shape: tuple, dtype: Any = None,
                     columns: Optional[list] = None,
                     name: Any = None) -> TileableData:
        """The ``__call__`` face: create this op's logical output node."""
        self.inputs = list(inputs)
        out = TileableData(kind, shape, op=self, dtype=dtype,
                           columns=columns, name=name)
        self.outputs = [out]
        return out

    def new_tileables(self, inputs: Sequence[TileableData],
                      specs: Sequence[dict]) -> list[TileableData]:
        """Multi-output variant (e.g. QR returns Q and R)."""
        self.inputs = list(inputs)
        self.outputs = [TileableData(op=self, **spec) for spec in specs]
        return list(self.outputs)

    def new_chunk(self, inputs: Sequence[ChunkData], kind: str, shape: tuple,
                  index: tuple, dtype: Any = None,
                  columns: Optional[list] = None, name: Any = None) -> ChunkData:
        """Create this op's (single) output chunk."""
        self.inputs = list(inputs)
        out = ChunkData(kind, shape, index, op=self, dtype=dtype,
                        columns=columns, name=name)
        self.outputs = [out]
        return out

    def new_chunks(self, inputs: Sequence[ChunkData],
                   specs: Sequence[dict]) -> list[ChunkData]:
        self.inputs = list(inputs)
        self.outputs = [ChunkData(op=self, **spec) for spec in specs]
        return list(self.outputs)

    def copy_with(self, **params: Any):
        """A fresh operator of the same class with merged params."""
        merged = dict(self.params)
        merged.update(params)
        clone = type(self)(**merged)
        clone.stage = self.stage
        return clone

    # -- the three faces -------------------------------------------------------
    def tile(self, ctx: TileContext):
        """Yield-capable tiling; must be overridden by tileable-level ops.

        Implementations are either plain functions returning
        ``[(chunks, nsplits), ...]`` (one pair per output) or generators
        that may ``yield [chunks...]`` to request execution of a partial
        graph before resuming (dynamic tiling).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement tile()"
        )

    def execute(self, ctx: ExecContext) -> Any:
        """Compute this chunk-level op's output value(s).

        Return a single value for single-output ops, or a dict
        ``{chunk_key: value}`` for multi-output ops.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement execute()"
        )

    # -- optimizer hooks -----------------------------------------------------
    def input_column_requirements(
        self, required: Optional[list]
    ) -> list[Optional[list]]:
        """Column-pruning hook: given the columns required of this op's
        output (``None`` = all), which columns does each input need?

        The default is conservative: every input needs everything.
        """
        return [None for _ in self.inputs]

    def accept_pruned_columns(self, required: Optional[list]) -> None:
        """Datasource hook: restrict reading to ``required`` columns."""

    # -- introspection ----------------------------------------------------------
    @property
    def display_name(self) -> str:
        name = type(self).__name__
        if self.stage is not None:
            name += f"::{self.stage}"
        return name

    def __repr__(self) -> str:
        return f"<{self.display_name}>"


def run_tile(op: Operator, ctx: TileContext):
    """Normalize ``op.tile``: always return a generator.

    Plain (non-generator) tile implementations become one-shot generators
    so the tiling engine has a single driving protocol.
    """
    result = op.tile(ctx)
    if inspect.isgenerator(result):
        return result

    def _wrap():
        return result
        yield  # pragma: no cover - makes _wrap a generator

    return _wrap()


class DataSourceOp(Operator):
    """Marker base for operators with no tileable inputs (read/create)."""


class FetchOp(Operator):
    """Placeholder op for a chunk whose value already sits in storage.

    Dynamic tiling swaps executed chunks for fetch nodes so partial graphs
    submitted later treat them as data sources.
    """

    def __init__(self, source_key: str, **params: Any):
        super().__init__(source_key=source_key, **params)
        self.source_key = source_key

    def execute(self, ctx: ExecContext) -> Any:
        # pass the stored value through physically: decoding here would
        # make the subsequent persist a decode/re-encode round-trip.
        return ctx.get_physical(self.source_key)
