"""The dynamic tiling engine (Section IV).

Tiling an operator may require metadata that only exists after part of
the graph has run (output sizes of non-static operators). Operators
therefore implement ``tile`` as a generator: when they need real
metadata they ``yield`` the chunks whose execution would produce it. The
engine pauses tiling, submits exactly those chunks (plus their
unexecuted ancestors) to the executor, records the resulting metadata,
refreshes the yielded chunks' shapes, and resumes the generator at the
same point — the switch between graph construction and graph execution
that the paper identifies as Xorbits' key differentiator.

With ``config.dynamic_tiling`` disabled (the ablation of Fig. 9a),
operators must not yield; they fall back to static, source-size-based
estimates, reproducing the behaviour the paper criticizes in
Dask/Modin-style planners.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..config import Config
from ..errors import TilingError
from ..graph.dag import DAG
from ..graph.entity import ChunkData, TileableData
from .executor import GraphExecutor
from .operator import TileContext, run_tile

if TYPE_CHECKING:
    from .meta import MetaService


def build_tileable_graph(results: Sequence[TileableData]) -> DAG[TileableData]:
    """The logical plan: every ancestor of the requested results.

    Tileables that are already tiled *and* materialized act as sources —
    their producing ops are not re-entered.
    """
    graph: DAG[TileableData] = DAG()
    stack = list(results)
    seen: set[str] = set()
    while stack:
        node = stack.pop()
        if node.key in seen:
            continue
        seen.add(node.key)
        graph.add_node(node)
        if node.is_tiled:
            continue  # cached from an earlier execution
        for dep in node.inputs:
            graph.add_edge(dep, node)
            stack.append(dep)
    return graph


def chunk_closure(chunks: Iterable[ChunkData],
                  is_materialized) -> DAG[ChunkData]:
    """Chunk graph containing ``chunks`` and their unexecuted ancestors.

    ``is_materialized(key)`` marks chunks whose values already sit in
    storage: they are included as source nodes but not expanded further.
    """
    graph: DAG[ChunkData] = DAG()
    stack = list(chunks)
    seen: set[str] = set()
    while stack:
        node = stack.pop()
        if node.key in seen:
            continue
        seen.add(node.key)
        graph.add_node(node)
        if is_materialized(node.key):
            continue
        for dep in node.inputs:
            graph.add_edge(dep, node)
            stack.append(dep)
    return graph


class TilingEngine:
    """Drives operator ``tile`` generators over a tileable graph."""

    def __init__(self, executor: GraphExecutor, meta: MetaService,
                 config: Config):
        self.executor = executor
        self.meta = meta
        self.config = config
        #: how many mid-tiling executions the engine performed (observable
        #: in tests and the ablation study).
        self.yield_count = 0
        #: stored-key snapshot backing :meth:`_is_materialized`.  Storage
        #: only changes at execution points, so refreshing the snapshot
        #: before each closure traversal gives the exact answers of a
        #: live ``contains`` per node — for one message instead of one
        #: per traversed chunk.
        self._materialized: set[str] = set()

    def _snapshot_storage(self) -> None:
        self._materialized = set(self.executor.storage.all_keys())

    def _is_materialized(self, key: str) -> bool:
        return key in self._materialized

    # ------------------------------------------------------------------
    def tile(self, tileable_graph: DAG[TileableData],
             results: Sequence[TileableData]) -> DAG[ChunkData]:
        """Tile every operator; returns the complete chunk graph.

        Dynamic switches to execution happen along the way; on return the
        remaining (not-yet-executed) chunks still need one final
        ``executor.execute`` pass, which the session performs.
        """
        ctx = TileContext(self.config, self.meta,
                          storage=self.executor.storage,
                          executor=self.executor)
        for tileable in tileable_graph.topological_order():
            if tileable.is_tiled or tileable.op is None:
                continue
            self._tile_one(tileable.op, ctx)
        result_chunks: list[ChunkData] = []
        for tileable in results:
            result_chunks.extend(tileable.chunks)
        self._snapshot_storage()
        return chunk_closure(result_chunks, self._is_materialized)

    # ------------------------------------------------------------------
    def _tile_one(self, op, ctx: TileContext) -> None:
        gen = run_tile(op, ctx)
        to_send = None
        while True:
            try:
                yielded = gen.send(to_send)
            except StopIteration as stop:
                self._attach_outputs(op, stop.value)
                return
            if not self.config.dynamic_tiling:
                raise TilingError(
                    f"{type(op).__name__} yielded for execution but dynamic "
                    "tiling is disabled; operators must branch on "
                    "ctx.config.dynamic_tiling"
                )
            self._execute_partial(list(yielded))
            to_send = None

    def _execute_partial(self, chunks: list[ChunkData]) -> None:
        """Run the yielded chunks now and refresh their observed shapes."""
        self.yield_count += 1
        self._snapshot_storage()
        graph = chunk_closure(chunks, self._is_materialized)
        retain = {c.key for c in chunks}
        self.executor.execute(graph, retain_keys=retain)
        self._refresh_chunks(chunks)

    def _refresh_chunks(self, chunks: list[ChunkData]) -> None:
        metas = self.meta.get_many([chunk.key for chunk in chunks])
        for chunk in chunks:
            meta = metas.get(chunk.key)
            if meta is None:
                continue
            chunk.shape = tuple(meta.shape)
            if meta.columns is not None:
                chunk.columns = list(meta.columns)

    def _attach_outputs(self, op, tile_result) -> None:
        """Bind the tiling result ``[(chunks, nsplits), ...]`` to outputs."""
        if tile_result is None:
            raise TilingError(f"{type(op).__name__}.tile returned nothing")
        if not isinstance(tile_result, list):
            tile_result = [tile_result]
        if len(tile_result) != len(op.outputs):
            raise TilingError(
                f"{type(op).__name__}.tile returned {len(tile_result)} chunk "
                f"sets for {len(op.outputs)} outputs"
            )
        for tileable, (chunks, nsplits) in zip(op.outputs, tile_result):
            if not chunks:
                raise TilingError(
                    f"{type(op).__name__}.tile produced no chunks"
                )
            for chunk in chunks:
                chunk.terminal = True
            tileable.with_chunks(chunks, nsplits)
