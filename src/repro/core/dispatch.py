"""Event-driven parallel subtask dispatch: the thread-pool band runner.

The executor splits each subtask into two halves (see
``GraphExecutor.execute``):

- the **compute phase** — running the chunk operators' kernels against
  real values — is embarrassingly parallel across independent subtasks
  and is what this module schedules onto worker threads;
- the **accounting phase** — storage puts/gets with transfer charging,
  memory admission/spill, meta records, virtual-clock advances and
  reference-count cleanup — stays on the caller's thread in
  deterministic topological order, so ``SimReport`` numbers are
  bit-identical whether the kernels ran serially or in parallel.

The dispatcher is the classic event-driven ready queue of the paper's
scheduling service (Section V-B): per-subtask indegree counters seed a
ready set with zero-dependency subtasks; every completion decrements its
successors and enqueues newly-ready work. Each *band* of the simulated
cluster owns one logical execution slot — a band runs its assigned
subtasks one at a time, in the scheduler's priority order, preserving
the band assignment and locality decisions already made.

NumPy kernels release the GIL, so chunk compute genuinely overlaps on
multi-core hosts; pure-Python kernels still interleave safely.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..errors import DispatcherError, DispatcherStall
from ..graph.dag import DAG
from ..graph.subtask import Subtask

# ---------------------------------------------------------------------------
# shared worker pool
# ---------------------------------------------------------------------------
# One process-wide pool backs every simulated cluster: per-band slot
# gating (below) bounds how much of it a single stage can occupy, and
# sharing avoids leaking one pool per short-lived Session (the test
# suite creates hundreds).

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def shared_pool(max_workers: int | None = None) -> ThreadPoolExecutor:
    """The lazily-created process-wide band-runner thread pool.

    ``max_workers`` (``Config.band_runner_threads``; 0/None means the
    host's CPU count) only ever *grows* the shared pool: dispatch
    threads mostly wait on kernels — or, in process mode, on IPC — so a
    cluster asking for more slots than an earlier one is safe, while
    shrinking under a live dispatcher would deadlock its queued bands.
    """
    global _pool
    want = max_workers if max_workers and max_workers > 0 else (
        os.cpu_count() or 1
    )
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=want,
                thread_name_prefix="band-runner",
            )
        elif want > _pool._max_workers:  # noqa: SLF001
            # ThreadPoolExecutor spawns threads on demand up to
            # _max_workers; raising the cap is all a grow needs.
            _pool._max_workers = want  # noqa: SLF001
        return _pool


def should_use_parallel(order: list[Subtask], config,
                        cpu_count: int | None = None) -> bool:
    """Serial-fallback gate: is the thread-pool band runner worth it?

    Dispatcher setup, per-subtask future overhead and wait_for
    synchronization cost real wall-clock; the payoff is overlap between
    bands. Fall back to the plain serial walk when overlap cannot win:
    tiny stages (``config.parallel_min_subtasks``), single-band stages
    (nothing to overlap with), or hosts without enough cores to actually
    run kernels concurrently (``config.parallel_min_cores``). Simulated
    numbers are unaffected either way — both paths produce bit-identical
    ``SimReport``s — so this gate only ever trades wall-clock.
    """
    if len(order) < max(config.parallel_min_subtasks, 2):
        return False
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cores < config.parallel_min_cores:
        return False
    bands = {subtask.band for subtask in order}
    return len(bands) >= 2


class SubtaskComputation:
    """Kernel results of one subtask's compute phase.

    Consumed by the accounting phase in place of calling
    ``op.execute`` a second time.
    """

    __slots__ = ("op_results", "op_extra_meta", "outputs")

    def __init__(self, op_results: dict[int, Any],
                 op_extra_meta: dict[int, dict[str, dict]],
                 outputs: dict[str, Any]):
        #: ``id(op)`` -> the value returned by ``op.execute``.
        self.op_results = op_results
        #: ``id(op)`` -> the ``ExecContext.extra_meta`` it produced.
        self.op_extra_meta = op_extra_meta
        #: the subtask's output chunk values by key.
        self.outputs = outputs


class BandDispatcher:
    """Ready-queue dispatcher with one logical slot per band.

    ``compute`` is called on a pool thread with ``(subtask, inputs)``
    where ``inputs`` maps every input key to its value; stage-produced
    values come from the dispatcher's in-flight cache, anything older
    from ``fetch`` (an accounting-free storage read).

    The caller drains results in its own (topological) order via
    :meth:`wait_for`; compute-phase exceptions are re-raised there, at
    the failing subtask's position, so error surfacing matches the
    serial walk.
    """

    def __init__(self, graph: DAG[Subtask], order: list[Subtask],
                 compute: Callable[[Subtask, dict[str, Any]], SubtaskComputation],
                 fetch: Callable[[list[str]], dict[str, Any]],
                 pool: ThreadPoolExecutor | None = None,
                 gate=None, watchdog: float = 60.0, speculation=None):
        self._graph = graph
        self._order = order
        self._compute = compute
        self._fetch = fetch
        self._pool = pool if pool is not None else shared_pool()
        #: wall-clock seconds per liveness window
        #: (``Config.dispatch_watchdog_timeout``): ``wait_for`` re-checks
        #: progress at this period and raises :class:`DispatcherStall`
        #: after two consecutive windows with zero completions.
        self._watchdog = max(float(watchdog), 0.001)
        #: optional ``SpeculationController``: running subtasks that
        #: overrun their EWMA deadline get a duplicate dispatch; the
        #: first copy to finish commits, the loser is discarded.
        self._speculation = speculation
        #: optional wall-clock memory gate (``DispatchGate``): a band's
        #: ready subtask only starts when its estimated footprint fits
        #: the worker's in-flight budget. Purely reorders real kernel
        #: execution — simulated numbers never observe it.
        self._gate = gate
        self._lock = threading.Lock()
        self._event = threading.Condition(self._lock)
        #: per-key conditions (sharing ``_lock``): ``wait_for`` blocks on
        #: its key's condition and every state change signals exactly the
        #: affected keys — no timed polling loops.
        self._key_conds: dict[str, threading.Condition] = {}
        self._position = {s.key: i for i, s in enumerate(order)}
        self._indegree = {s.key: graph.in_degree(s) for s in order}
        self._records: dict[str, SubtaskComputation] = {}
        self._errors: dict[str, BaseException] = {}
        #: band name -> heap of (priority, position, subtask) ready to run.
        self._band_queues: dict[str, list[tuple[int, int, Subtask]]] = {}
        self._band_busy: set[str] = set()
        #: chunk values produced by this stage, kept while in-stage
        #: consumers still need them for their compute phase.
        self._values: dict[str, Any] = {}
        self._value_consumers: dict[str, int] = {}
        produced = {key for s in order for key in s.output_keys}
        for subtask in order:
            for key in subtask.input_keys:
                if key in produced:
                    self._value_consumers[key] = (
                        self._value_consumers.get(key, 0) + 1
                    )
        self._inflight = 0
        self._stopped = False
        self._by_key = {s.key: s for s in order}
        #: key -> monotonic submit time of the primary attempt.
        self._started: dict[str, float] = {}
        #: keys whose first completion already committed — a late
        #: duplicate (speculation) must not redo bookkeeping.
        self._finished: set[str] = set()
        #: keys that already have a speculative duplicate in flight.
        self._speculated: set[str] = set()
        #: total completions, for the zero-progress stall watchdog.
        self._completions = 0
        self.speculative_count = 0
        #: fatal pool-level failure (submit failed, completion bookkeeping
        #: raised): surfaced to every waiter as DispatcherError.
        self._poisoned: BaseException | None = None
        #: poisoned key -> keys of the failed root subtasks that poisoned
        #: it; resolve() lifts marks owed to a recovered root.
        self._poison_root: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed the ready set and dispatch onto idle bands."""
        with self._lock:
            for subtask in self._order:
                if self._indegree[subtask.key] == 0:
                    self._enqueue(subtask)
            self._dispatch_ready()

    def wait_for(self, key: str) -> SubtaskComputation:
        """Block until ``key``'s compute phase finished; re-raise its error.

        Never blocks forever: a poisoned pool (runner thread died in its
        completion bookkeeping, or submit itself failed), a stopped
        dispatcher, or a stalled graph (nothing in flight and nothing
        queued while ``key`` is still absent) all raise
        :class:`DispatcherError` instead of hanging the caller.

        Blocking is per-key condition signaling, not a poll loop: every
        completion/failure/poison/stop notifies the affected keys' (or
        all) conditions; the watchdog timeout
        (``Config.dispatch_watchdog_timeout``) bounds how long a wedged
        runner can wedge the walk — two consecutive windows with zero
        completions raise :class:`DispatcherStall` with the blocked key
        and queue state instead of silently re-waiting forever.

        With speculation enabled the wait also enforces the blocked
        key's EWMA deadline: once its primary attempt overruns, a
        duplicate is dispatched and whichever copy finishes first
        commits — on this thread, in topological order, so the
        accounting walk (and ``SimReport``) is indifferent to which copy
        won.
        """
        with self._lock:
            cond = self._key_conds.get(key)
            if cond is None:
                cond = self._key_conds[key] = threading.Condition(self._lock)
            stalled_windows = 0
            try:
                while True:
                    error = self._errors.get(key)
                    if error is not None:
                        raise error
                    record = self._records.get(key)
                    if record is not None:
                        return record
                    if self._poisoned is not None:
                        raise DispatcherError(
                            f"band runner pool failed while waiting for "
                            f"{key!r}: {self._poisoned!r}"
                        ) from self._poisoned
                    if self._stopped:
                        raise DispatcherError(
                            f"dispatcher stopped while waiting for {key!r}"
                        )
                    if self._inflight == 0 and not any(
                        self._band_queues.values()
                    ):
                        raise DispatcherError(
                            f"dispatcher stalled waiting for {key!r}: nothing "
                            "in flight and nothing queued"
                        )
                    timeout = self._watchdog
                    if (self._speculation is not None
                            and key not in self._finished
                            and key not in self._speculated):
                        started = self._started.get(key)
                        subtask = self._by_key.get(key)
                        if started is not None and subtask is not None:
                            deadline = self._speculation.deadline(subtask)
                            if deadline is not None:
                                remaining = (started + deadline
                                             - time.monotonic())
                                if remaining <= 0.0:
                                    self._speculate(subtask)
                                else:
                                    timeout = min(timeout, remaining)
                    before = self._completions
                    notified = cond.wait(timeout=timeout)
                    if notified or self._completions != before:
                        stalled_windows = 0
                    elif timeout >= self._watchdog:
                        stalled_windows += 1
                        if stalled_windows >= 2:
                            queued = {band: len(q) for band, q
                                      in self._band_queues.items() if q}
                            raise DispatcherStall(
                                key, stalled_windows * self._watchdog,
                                self._inflight, queued)
            finally:
                self._key_conds.pop(key, None)

    def resolve(self, subtask: Subtask) -> None:
        """Clear a failed subtask the caller has recovered inline.

        The accounting thread catches a retryable compute failure from
        :meth:`wait_for`, re-executes the subtask (and any lost
        producers) itself, stores the outputs, then calls this: poison
        marks owed to the failed root are lifted, its successors'
        indegrees are decremented exactly as a normal completion would
        have done, and dispatch resumes — descendants read the recovered
        outputs from storage via the accounting-free ``fetch``.
        """
        with self._event:
            root = subtask.key
            for key in list(self._poison_root):
                roots = self._poison_root[key]
                if root in roots:
                    roots.discard(root)
                    if not roots:
                        del self._poison_root[key]
                        self._errors.pop(key, None)
            for key in subtask.input_keys:
                remaining = self._value_consumers.get(key)
                if remaining is not None:
                    remaining -= 1
                    self._value_consumers[key] = remaining
                    if remaining <= 0:
                        self._values.pop(key, None)
            for succ in self._graph.successors(subtask):
                self._indegree[succ.key] -= 1
                if self._indegree[succ.key] == 0:
                    self._enqueue(succ)
            self._dispatch_ready()
            self._event.notify_all()
            self._signal_keys()

    def discard(self, key: str) -> None:
        """Drop a consumed record so intermediates can be collected."""
        with self._lock:
            self._records.pop(key, None)

    def shutdown(self) -> None:
        """Stop dispatching new work and wait for in-flight computes.

        Event-driven: every completion notifies the dispatcher
        condition, so the wait wakes exactly when progress happens; the
        timeout is a watchdog for a runner thread that vanished without
        reporting completion (half a ``dispatch_watchdog_timeout``
        window of zero progress stops the wait instead of deadlocking
        the caller).
        """
        with self._event:
            self._stopped = True
            self._signal_keys()
            while self._inflight > 0 and self._poisoned is None:
                before = self._inflight
                notified = self._event.wait(timeout=self._watchdog / 2.0)
                if notified or self._inflight != before:
                    continue
                break
            self._records.clear()
            self._values.clear()
            for queue in self._band_queues.values():
                queue.clear()

    # -- internals (all called with self._lock held) ---------------------
    def _signal_keys(self, keys=None) -> None:
        """Wake waiters: the given keys' conditions, or every waiter."""
        if keys is None:
            for cond in self._key_conds.values():
                cond.notify_all()
            return
        for key in keys:
            cond = self._key_conds.get(key)
            if cond is not None:
                cond.notify_all()

    def _enqueue(self, subtask: Subtask) -> None:
        band = subtask.band or ""
        queue = self._band_queues.setdefault(band, [])
        heapq.heappush(
            queue,
            (subtask.priority, self._position[subtask.key], subtask),
        )

    def _dispatch_ready(self) -> None:
        if self._stopped:
            return
        for band, queue in self._band_queues.items():
            if queue and band not in self._band_busy:
                # peek before popping: a gate refusal leaves the subtask
                # queued for the next completion's dispatch round. The
                # gate's idle-worker guard guarantees progress.
                subtask = queue[0][2]
                if self._gate is not None and not self._gate.try_start(subtask):
                    continue
                heapq.heappop(queue)
                self._band_busy.add(band)
                self._inflight += 1
                self._started[subtask.key] = time.monotonic()
                try:
                    self._pool.submit(self._run, subtask)
                except BaseException as exc:  # pool shut down / saturated
                    self._inflight -= 1
                    self._band_busy.discard(band)
                    if self._gate is not None:
                        self._gate.finish(subtask)
                    self._set_poisoned(exc)
                    return

    def _speculate(self, subtask: Subtask) -> None:
        """Dispatch a duplicate of an overdue subtask (lock held).

        The duplicate bypasses the band slot and the memory gate — it
        exists to beat a wedged or straggling primary, not to queue
        behind it. First completion commits; the loser's result is
        discarded in ``_complete``.
        """
        self._speculated.add(subtask.key)
        self._inflight += 1
        self.speculative_count += 1
        if self._speculation is not None:
            self._speculation.speculated += 1
        try:
            self._pool.submit(self._run, subtask, True)
        except BaseException as exc:  # pool shut down / saturated
            self._inflight -= 1
            self._set_poisoned(exc)

    # -- pool-thread side -------------------------------------------------
    def _run(self, subtask: Subtask, speculative: bool = False) -> None:
        record: SubtaskComputation | None = None
        error: BaseException | None = None
        try:
            if not speculative and self._speculation is not None:
                # scripted straggler hook: only the primary attempt
                # sleeps, so the speculative duplicate can win.
                self._speculation.straggle(subtask)
            inputs = self._gather(subtask)
            record = self._compute(subtask, inputs)
        except BaseException as exc:  # noqa: BLE001 — re-raised in wait_for
            error = exc
        try:
            self._complete(subtask, record, error)
        except BaseException as exc:  # noqa: BLE001 — completion bookkeeping
            # died: without this every wait_for caller would hang forever
            # on a completion that will never be delivered.
            self._poison_pool(exc)

    def _gather(self, subtask: Subtask) -> dict[str, Any]:
        inputs: dict[str, Any] = {}
        missing: list[str] = []
        with self._lock:
            for key in subtask.input_keys:
                if key in self._values:
                    inputs[key] = self._values[key]
                else:
                    missing.append(key)
        if missing:
            inputs.update(self._fetch(missing))
        return inputs

    def _complete(self, subtask: Subtask,
                  record: SubtaskComputation | None,
                  error: BaseException | None) -> None:
        with self._event:
            self._inflight -= 1
            if subtask.key in self._finished:
                # the losing copy of a speculated subtask: the first
                # completion already committed (records, band slot,
                # gate, successor indegrees) — only the in-flight count
                # and the waiters' wakeup remain.
                self._dispatch_ready()
                self._event.notify_all()
                self._signal_keys()
                return
            self._finished.add(subtask.key)
            self._completions += 1
            self._band_busy.discard(subtask.band or "")
            if self._gate is not None:
                self._gate.finish(subtask)
            if error is None and self._speculation is not None:
                started = self._started.get(subtask.key)
                if started is not None:
                    self._speculation.observe(
                        subtask, time.monotonic() - started)
            if error is None:
                assert record is not None
                try:
                    self._records[subtask.key] = record
                    for key, value in record.outputs.items():
                        if self._value_consumers.get(key, 0) > 0:
                            self._values[key] = value
                    for key in subtask.input_keys:
                        remaining = self._value_consumers.get(key)
                        if remaining is not None:
                            remaining -= 1
                            self._value_consumers[key] = remaining
                            if remaining <= 0:
                                self._values.pop(key, None)
                    for succ in self._graph.successors(subtask):
                        self._indegree[succ.key] -= 1
                        if self._indegree[succ.key] == 0:
                            self._enqueue(succ)
                except BaseException as exc:  # noqa: BLE001 — surfaced in wait_for
                    self._records.pop(subtask.key, None)
                    error = exc
            if error is not None:
                self._fail(subtask, error)
            self._dispatch_ready()
            self._event.notify_all()
            if error is None and self._inflight > 0:
                self._signal_keys([subtask.key])
            else:
                # failures poison descendants and a drained pool flips
                # the stall predicate for every waiter — wake them all.
                self._signal_keys()

    def _fail(self, subtask: Subtask, error: BaseException) -> None:
        # Descendants can never become ready (their indegree never hits
        # zero); mark them with the same error so wait_for does not hang.
        # Every mark remembers which failed root caused it, so resolve()
        # can lift exactly the marks owed to a recovered root.
        stack = [subtask]
        while stack:
            node = stack.pop()
            roots = self._poison_root.setdefault(node.key, set())
            if subtask.key in roots:
                continue
            roots.add(subtask.key)
            if node.key not in self._errors:
                self._errors[node.key] = error
            stack.extend(self._graph.successors(node))

    def _set_poisoned(self, error: BaseException) -> None:
        # called with self._lock held
        if self._poisoned is None:
            self._poisoned = error
        self._event.notify_all()
        self._signal_keys()

    def _poison_pool(self, error: BaseException) -> None:
        with self._event:
            self._set_poisoned(error)
