"""Operator-level fusion (Section V-A).

After graph-level fusion decides *which* chunk ops run together in one
subtask, operator-level fusion decides how the subtask evaluates them:
maximal chains of elementwise operators are collapsed into single fused
steps, the way numexpr/JAX compile ``a * b + c`` into one kernel.

In the execution model a fused step

- pays one dispatch overhead instead of one per operator, and
- charges compute for the chain's *external* inputs and final outputs
  only — intermediates never hit memory, which is precisely the saving
  the paper attributes to numexpr-style fusion.
"""

from __future__ import annotations

from ..graph.entity import ChunkData
from ..graph.subtask import Subtask


def plan_subtask(subtask: Subtask, enable: bool) -> list[list[ChunkData]]:
    """Split a subtask's chunks into execution steps.

    With fusion disabled every chunk op is its own step. Enabled, a run of
    consecutive elementwise ops where each feeds only the next (within the
    subtask) merges into one step.
    """
    chunks = [c for c in subtask.chunks if c.op is not None]
    if not enable:
        return [[c] for c in chunks]

    internal_keys = {c.key for c in chunks}
    consumers: dict[str, list[ChunkData]] = {}
    for chunk in chunks:
        for dep in chunk.inputs:
            if dep.key in internal_keys:
                consumers.setdefault(dep.key, []).append(chunk)

    steps: list[list[ChunkData]] = []
    fused_into: dict[str, int] = {}
    for chunk in chunks:  # already in topological order within the subtask
        if not chunk.op.is_elementwise:
            steps.append([chunk])
            fused_into[chunk.key] = len(steps) - 1
            continue
        # try to append to the step of a sole elementwise producer
        producer_steps = {
            fused_into[dep.key]
            for dep in chunk.inputs
            if dep.key in internal_keys and dep.op is not None
            and dep.op.is_elementwise
            and len(consumers.get(dep.key, [])) == 1
            and dep.key not in subtask.output_keys
        }
        if len(producer_steps) == 1:
            step_idx = producer_steps.pop()
            steps[step_idx].append(chunk)
            fused_into[chunk.key] = step_idx
        else:
            steps.append([chunk])
            fused_into[chunk.key] = len(steps) - 1
    return steps


class CompiledStep:
    """A fused step compiled into one generated evaluator.

    ``run(env)`` makes a single pass: external inputs are read from the
    subtask environment once, every intermediate lives only as a local
    variable of the generated function, and exactly one value — the
    step's final output — comes back. That is the numexpr-style saving
    of Section V-A made literal: fused intermediates never exist as
    chunk values at all.
    """

    __slots__ = ("fn", "funcs", "input_keys", "output_key", "final_op")

    def __init__(self, fn, funcs, input_keys, output_key, final_op):
        self.fn = fn
        self.funcs = funcs
        self.input_keys = input_keys
        self.output_key = output_key
        self.final_op = final_op

    def run(self, env: dict) -> object:
        return self.fn(*[env[key] for key in self.input_keys], *self.funcs)


#: generated source -> compiled function. Steps with the same structural
#: shape (op templates and argument wiring) share one code object; the
#: per-step closures (op callables, input keys) stay outside the cache.
_CODE_CACHE: dict[str, object] = {}


def compile_step(step: list[ChunkData]) -> CompiledStep | None:
    """Compile a fused step into a :class:`CompiledStep`, or decline.

    Eligible steps have at least two chained single-output ops, each
    providing the ``fuse_expr`` protocol (see
    :attr:`~repro.core.operator.Operator.fuse_expr`), converging on one
    final output. Anything else returns ``None`` and the caller
    interprets the step op-by-op. The decision depends only on the
    step's structure, so the serial walk, band-runner threads and pool
    worker processes all compile (or decline) identically.
    """
    if len(step) < 2:
        return None
    produced: dict[str, int] = {}
    for position, chunk in enumerate(step):
        op = chunk.op
        if op is None or op.fuse_expr is None:
            return None
        if len(op.outputs) != 1 or op.outputs[0].key != chunk.key:
            return None
        if chunk.key in produced:
            return None
        produced[chunk.key] = position
    _, outputs = step_io_keys(step)
    if outputs != {step[-1].key}:
        return None

    input_keys: list[str] = []
    var_of: dict[str, str] = {}
    funcs: list = []
    lines: list[str] = []
    for position, chunk in enumerate(step):
        op = chunk.op
        args = []
        for dep in op.inputs:
            var = var_of.get(dep.key)
            if var is None:
                var = f"x{len(input_keys)}"
                var_of[dep.key] = var
                input_keys.append(dep.key)
            args.append(var)
        if op.fuse_expr == "call":
            func = getattr(op, "func", None)
            if not callable(func):
                return None
            expr = f"f{len(funcs)}({', '.join(args)})"
            funcs.append(func)
        else:
            try:
                expr = op.fuse_expr.format(*args)
            except (IndexError, KeyError):
                return None
        target = f"t{position}"
        var_of[chunk.key] = target
        lines.append(f"    {target} = {expr}")
    params = [var_of[key] for key in input_keys]
    params += [f"f{i}" for i in range(len(funcs))]
    source = "def _fused({}):\n{}\n    return t{}\n".format(
        ", ".join(params), "\n".join(lines), len(step) - 1
    )
    fn = _CODE_CACHE.get(source)
    if fn is None:
        namespace: dict[str, object] = {}
        exec(compile(source, "<opfusion>", "exec"), namespace)  # noqa: S102
        fn = _CODE_CACHE[source] = namespace["_fused"]
    return CompiledStep(fn, funcs, input_keys, step[-1].key, step[-1].op)


def step_io_keys(step: list[ChunkData]) -> tuple[set[str], set[str]]:
    """External input keys and final output keys of one fused step.

    Intermediates (produced and consumed inside the step) appear in
    neither set — they are the bytes fusion saves.
    """
    produced = {c.key for c in step}
    inputs: set[str] = set()
    for chunk in step:
        for dep in chunk.inputs:
            if dep.key not in produced:
                inputs.add(dep.key)
    consumed_inside: set[str] = set()
    for chunk in step:
        for dep in chunk.inputs:
            if dep.key in produced:
                consumed_inside.add(dep.key)
    outputs = produced - consumed_inside
    return inputs, outputs
