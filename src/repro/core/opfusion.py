"""Operator-level fusion (Section V-A).

After graph-level fusion decides *which* chunk ops run together in one
subtask, operator-level fusion decides how the subtask evaluates them:
maximal chains of elementwise operators are collapsed into single fused
steps, the way numexpr/JAX compile ``a * b + c`` into one kernel.

In the execution model a fused step

- pays one dispatch overhead instead of one per operator, and
- charges compute for the chain's *external* inputs and final outputs
  only — intermediates never hit memory, which is precisely the saving
  the paper attributes to numexpr-style fusion.
"""

from __future__ import annotations

from ..graph.entity import ChunkData
from ..graph.subtask import Subtask


def plan_subtask(subtask: Subtask, enable: bool) -> list[list[ChunkData]]:
    """Split a subtask's chunks into execution steps.

    With fusion disabled every chunk op is its own step. Enabled, a run of
    consecutive elementwise ops where each feeds only the next (within the
    subtask) merges into one step.
    """
    chunks = [c for c in subtask.chunks if c.op is not None]
    if not enable:
        return [[c] for c in chunks]

    internal_keys = {c.key for c in chunks}
    consumers: dict[str, list[ChunkData]] = {}
    for chunk in chunks:
        for dep in chunk.inputs:
            if dep.key in internal_keys:
                consumers.setdefault(dep.key, []).append(chunk)

    steps: list[list[ChunkData]] = []
    fused_into: dict[str, int] = {}
    for chunk in chunks:  # already in topological order within the subtask
        if not chunk.op.is_elementwise:
            steps.append([chunk])
            fused_into[chunk.key] = len(steps) - 1
            continue
        # try to append to the step of a sole elementwise producer
        producer_steps = {
            fused_into[dep.key]
            for dep in chunk.inputs
            if dep.key in internal_keys and dep.op is not None
            and dep.op.is_elementwise
            and len(consumers.get(dep.key, [])) == 1
            and dep.key not in subtask.output_keys
        }
        if len(producer_steps) == 1:
            step_idx = producer_steps.pop()
            steps[step_idx].append(chunk)
            fused_into[chunk.key] = step_idx
        else:
            steps.append([chunk])
            fused_into[chunk.key] = len(steps) - 1
    return steps


def step_io_keys(step: list[ChunkData]) -> tuple[set[str], set[str]]:
    """External input keys and final output keys of one fused step.

    Intermediates (produced and consumed inside the step) appear in
    neither set — they are the bytes fusion saves.
    """
    produced = {c.key for c in step}
    inputs: set[str] = set()
    for chunk in step:
        for dep in chunk.inputs:
            if dep.key not in produced:
                inputs.add(dep.key)
    consumed_inside: set[str] = set()
    for chunk in step:
        for dep in chunk.inputs:
            if dep.key in produced:
                consumed_inside.add(dep.key)
    outputs = produced - consumed_inside
    return inputs, outputs
