"""Memory-pressure control: admission ledger, footprint estimation,
OOM-degradation state, and the wall-clock dispatch gate.

The paper's headline robustness claim (Table II, "OOM or Killed") is
that the engine *completes* memory-hungry workloads where eager
dataframe systems die. This module supplies the machinery:

- :class:`FootprintEstimator` — predicts a subtask's transient memory
  footprint before it runs: input bytes from the meta service / storage,
  output bytes from a per-operator-class history of observed sizes
  (defaulting to ``chunk_store_limit`` for never-seen classes, the
  paper's "presume a full chunk" rule).

- :class:`MemoryAdmission` — a per-worker ledger of virtual-time grants
  ``(end_time, nbytes)``. Before a subtask is accounted, its footprint
  must fit ``used + active_grants + request <= limit``; when it does not,
  the subtask's virtual start is pushed past the earliest-ending grants
  (backpressure, charged as ``admission_wait_time``) instead of
  dispatching into a guaranteed OOM. The **deadlock guard**: because
  grants are drained in virtual time on a single deterministic walk, the
  oldest-priority waiter of a worker always reaches ``active == 0`` and
  is then admitted even oversubscribed (``forced_admissions``) — a
  budget smaller than any two subtasks serializes instead of deadlocking.

- :class:`MemoryPressure` — the facade the executor owns. It also holds
  the degraded-worker set (the OOM ladder's third rung: a degraded
  worker runs one subtask at a time, i.e. admission drains to zero
  active grants before every start).

- :class:`DispatchGate` — the wall-clock mirror of the ledger for the
  parallel band runner: pool threads must not *actually* run N kernels
  whose estimated footprints exceed the worker budget, independent of
  what the virtual-time ledger later charges. The gate never affects any
  simulated number (compute results are deterministic and the accounting
  walk is unchanged); it only reorders real execution. Its deadlock
  guard admits any subtask on an idle worker.

Determinism argument: every ledger decision happens on the executor's
single accounting thread, in topological order, from state (tracker
``used``, grant list, estimator history) that is itself only mutated on
that thread — so ``admission_wait_time`` and friends are bit-identical
between serial and parallel execution modes.
"""

from __future__ import annotations

import bisect
import threading
from typing import TYPE_CHECKING, Any

from ..graph.subtask import Subtask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.cluster import ClusterState
    from ..config import Config
    from ..storage.service import StorageService
    from .meta import MetaService


def worker_of_band(band: str | None) -> str:
    """The worker name a band name belongs to (``worker-0/band-1``)."""
    if not band:
        return ""
    return band.split("/", 1)[0]


class FootprintEstimator:
    """Pre-execution footprint prediction with per-op-class history.

    ``estimate`` is what admission reserves *before* kernels run; it uses
    only information a real scheduler would have: recorded chunk meta,
    storage sizes, and the observed output bytes of previously executed
    operators of the same class. Unknown inputs and never-seen operator
    classes count as one full chunk (``chunk_store_limit``) — deliberately
    conservative, so cold starts under-subscribe rather than OOM.

    History updates happen on the accounting walk only, keeping the
    estimates (and therefore admission waits) deterministic.
    """

    #: EWMA smoothing for observed output sizes.
    ALPHA = 0.5

    def __init__(self, config: "Config", meta: "MetaService",
                 storage: "StorageService"):
        self.config = config
        self.meta = meta
        self.storage = storage
        #: op class name -> smoothed observed per-output bytes.
        self._output_history: dict[str, float] = {}

    # -- prediction -------------------------------------------------------
    def input_bytes(self, subtask: Subtask) -> int:
        keys = list(subtask.input_keys)
        if not keys:
            return 0
        metas = self.meta.get_many(keys)
        total = 0
        unknown: list[str] = []
        for key in keys:
            meta = metas.get(key)
            if meta is not None and meta.nbytes is not None:
                total += int(meta.nbytes)
            else:
                unknown.append(key)
        if unknown:
            absent = set(self.storage.missing_keys(unknown))
            for key in unknown:
                if key in absent:
                    total += self.config.chunk_store_limit
                else:
                    total += self.storage.nbytes_of(key)
        return total

    def output_bytes(self, subtask: Subtask) -> int:
        producer: dict[str, str] = {}
        for chunk in subtask.chunks:
            if chunk.op is not None:
                producer[chunk.key] = type(chunk.op).__name__
        total = 0
        for key in subtask.output_keys:
            op_class = producer.get(key)
            known = self._output_history.get(op_class) if op_class else None
            if known is None:
                total += self.config.chunk_store_limit
            else:
                total += int(known)
        return total

    def estimate(self, subtask: Subtask) -> int:
        """Predicted transient footprint, commensurate with the
        executor's ``working_set`` (peak-factor applied)."""
        raw = self.input_bytes(subtask) + self.output_bytes(subtask)
        return int(self.config.peak_factor * raw)

    # -- observation ------------------------------------------------------
    def observe(self, subtask: Subtask, sizes: dict[str, int]) -> None:
        """Fold a completed subtask's actual output sizes into the
        per-op-class history (accounting thread only)."""
        producer: dict[str, str] = {}
        for chunk in subtask.chunks:
            if chunk.op is not None:
                producer[chunk.key] = type(chunk.op).__name__
        for key in subtask.output_keys:
            op_class = producer.get(key)
            nbytes = sizes.get(key)
            if op_class is None or nbytes is None:
                continue
            old = self._output_history.get(op_class)
            if old is None:
                self._output_history[op_class] = float(nbytes)
            else:
                self._output_history[op_class] = (
                    (1.0 - self.ALPHA) * old + self.ALPHA * float(nbytes)
                )


class AdmissionDecision:
    """Outcome of one :meth:`MemoryAdmission.admit` call."""

    __slots__ = ("worker", "nbytes", "start", "wait", "active", "forced",
                 "session")

    def __init__(self, worker: str, nbytes: int, start: float, wait: float,
                 active: int, forced: bool, session: str = ""):
        self.worker = worker
        #: bytes this grant reserves when committed.
        self.nbytes = nbytes
        #: admitted virtual start time (``ready_time + wait``).
        self.start = start
        #: virtual seconds of backpressure charged to the clock.
        self.wait = wait
        #: concurrent granted bytes still active at ``start``.
        self.active = active
        #: admitted oversubscribed after draining every grant — the
        #: deadlock guard fired (caller escalates to spill / the ladder).
        self.forced = forced
        #: the tenant this grant belongs to ("" on a private cluster).
        self.session = session


class MemoryAdmission:
    """Per-worker virtual-time grant ledger (the backpressure core).

    A grant is ``(end_time, nbytes)``: the working set a subtask occupies
    until its virtual completion. ``admit`` computes how long a new
    request must wait for enough grants to end; ``commit`` records the
    admitted subtask's own grant once its completion time is known.

    All calls happen on the executor's accounting thread; grant lists are
    cleared at stage boundaries (every later ready time is at or past the
    stage base time, which itself is past every prior stage's ends).
    """

    def __init__(self):
        #: worker -> sorted list of (end_time, nbytes, session) grants.
        self._grants: dict[str, list[tuple[float, int, str]]] = {}
        self.forced_admissions = 0
        self.total_wait = 0.0

    def begin_stage(self, base: float | None = None) -> None:
        """Drop expired grants at a stage boundary.

        On a private cluster every grant has ended by the stage base
        time (the base is past every prior end), so ``base=None`` clears
        everything — the historical behaviour. On a shared cluster the
        caller passes its stage base and only grants ending at or before
        it are pruned: other tenants' in-flight grants survive.
        """
        if base is None:
            self._grants.clear()
            return
        for worker in list(self._grants):
            kept = [g for g in self._grants[worker] if g[0] > base]
            if kept:
                self._grants[worker] = kept
            else:
                del self._grants[worker]

    def active_bytes(self, worker: str, at: float) -> int:
        return sum(
            nbytes for end, nbytes, _ in self._grants.get(worker, ())
            if end > at
        )

    def session_bytes(self, worker: str, at: float, session: str) -> int:
        """Granted bytes one tenant holds on ``worker`` at time ``at``."""
        return sum(
            nbytes for end, nbytes, sess in self._grants.get(worker, ())
            if end > at and sess == session
        )

    def outstanding(self, at: float) -> int:
        """Total granted bytes still active anywhere at time ``at``."""
        return sum(
            self.active_bytes(worker, at) for worker in self._grants
        )

    def admit(self, worker: str, nbytes: int, ready_time: float,
              used: int, limit: int, allow_wait: bool,
              exclusive: bool = False, session: str = "",
              quota: int | None = None) -> AdmissionDecision:
        """Grant ``nbytes`` on ``worker`` no earlier than ``ready_time``.

        ``allow_wait`` off reproduces the seed engine: the request is
        admitted at ``ready_time`` regardless of concurrent grants (the
        caller then spills or OOMs). With it on, the start is pushed past
        the earliest-ending grants until ``used + active + nbytes``
        fits — or every grant has ended, at which point the lone waiter
        is admitted even oversubscribed (the deadlock guard).

        ``exclusive`` (degraded worker) drains this *session's* grants
        to zero first — one of the tenant's subtasks at a time. Other
        tenants' grants are untouched: a degraded tenant never
        serializes its neighbours.

        ``quota`` caps the bytes this ``session`` may hold concurrently
        on the worker. A tenant at its quota waits for its own grants to
        end; once it holds nothing and still exceeds the quota, it is
        admitted anyway (the per-tenant deadlock guard — a quota smaller
        than one subtask serializes the tenant, never wedges it).
        """
        grants = self._grants.get(worker, ())
        start = ready_time
        active = sum(n for end, n, _ in grants if end > start)
        own = (sum(n for end, n, s in grants if end > start and s == session)
               if quota is not None else 0)

        def fits() -> bool:
            if used + active + nbytes > limit:
                return False
            if quota is not None and own > 0 and own + nbytes > quota:
                return False
            return True

        if exclusive:
            for end, _, sess in grants:
                if end > start and sess == session:
                    start = end
            active = sum(n for end, n, _ in grants if end > start)
        elif allow_wait:
            ends = sorted(end for end, _, _ in grants if end > start)
            for end in ends:
                if fits():
                    break
                start = end
                active = sum(n for e, n, _ in grants if e > start)
                if quota is not None:
                    own = sum(n for e, n, s in grants
                              if e > start and s == session)
        forced = used + active + nbytes > limit
        if forced and (allow_wait or exclusive):
            self.forced_admissions += 1
        wait = start - ready_time
        self.total_wait += wait
        return AdmissionDecision(worker, nbytes, start, wait, active, forced,
                                 session)

    def commit(self, decision: AdmissionDecision, end_time: float) -> None:
        """Record the admitted subtask's grant now that its virtual
        completion time is known."""
        grants = self._grants.setdefault(decision.worker, [])
        bisect.insort(grants, (end_time, decision.nbytes, decision.session))


class MemoryPressure:
    """Facade owned by the executor: estimator + ledger + degradation."""

    def __init__(self, config: "Config", cluster: "ClusterState",
                 meta: "MetaService", storage: "StorageService"):
        self.config = config
        self.cluster = cluster
        self.estimator = FootprintEstimator(config, meta, storage)
        self.admission = MemoryAdmission()
        #: session -> workers that session's OOM ladder degraded to
        #: serial one-subtask-at-a-time execution; sticky for the rest of
        #: the session. Scoped per tenant so one tenant's ladder never
        #: serializes another's subtasks ("" is the private-cluster
        #: scope, where every caller shares one set — the historical
        #: behaviour).
        self._degraded: dict[str, set[str]] = {}
        self._degraded_lock = threading.Lock()

    def degrade(self, worker: str, session: str = "") -> bool:
        """Mark a worker serialized for ``session``; returns False if it
        already was."""
        with self._degraded_lock:
            degraded = self._degraded.setdefault(session, set())
            if worker in degraded:
                return False
            degraded.add(worker)
            return True

    def is_degraded(self, worker: str, session: str = "") -> bool:
        with self._degraded_lock:
            return worker in self._degraded.get(session, ())

    def drop_session(self, session: str) -> None:
        """Forget a closed tenant's degraded-worker set."""
        with self._degraded_lock:
            self._degraded.pop(session, None)

    @property
    def degraded_workers(self) -> set[str]:
        with self._degraded_lock:
            out: set[str] = set()
            for workers in self._degraded.values():
                out |= workers
            return out

    def freest_worker(self) -> str:
        """The worker with the most available budget (deterministic
        name tie-break) — the OOM ladder's reschedule target."""
        return min(
            self.cluster.memory.values(),
            key=lambda t: (-(t.limit - t.used), t.worker),
        ).worker

    def dispatch_gate(self, order: list[Subtask],
                      session: str = "") -> "DispatchGate":
        """A wall-clock gate for one stage, with estimates snapshotted
        on the accounting thread before the band runner starts."""
        estimates = {s.key: self.estimator.estimate(s) for s in order}
        limits = {
            name: tracker.limit
            for name, tracker in self.cluster.memory.items()
        }
        return DispatchGate(estimates, limits, self, session)


class DispatchGate:
    """Wall-clock admission for the parallel band runner.

    Bounds the *real* concurrent kernel footprint per worker by the
    estimated sizes snapshotted at stage start. Purely a throttle on
    when pool threads run: simulated numbers never observe it. The
    deadlock guard mirrors the ledger's: a worker with nothing in
    flight admits its next subtask unconditionally, so dispatch always
    progresses.
    """

    def __init__(self, estimates: dict[str, int], limits: dict[str, int],
                 pressure: MemoryPressure, session: str = ""):
        self._estimates = estimates
        self._limits = limits
        self._pressure = pressure
        self._session = session
        self._inflight_bytes: dict[str, int] = {}
        self._inflight_count: dict[str, int] = {}
        self._lock = threading.Lock()

    def try_start(self, subtask: Subtask) -> bool:
        """May this subtask's kernels start now? (Called under the
        dispatcher lock; must not block.)"""
        worker = worker_of_band(subtask.band)
        estimate = self._estimates.get(subtask.key, 0)
        limit = self._limits.get(worker)
        with self._lock:
            count = self._inflight_count.get(worker, 0)
            if count == 0:
                pass  # idle-worker guard: always admit
            elif self._pressure.is_degraded(worker, self._session):
                return False
            elif limit is not None and (
                self._inflight_bytes.get(worker, 0) + estimate > limit
            ):
                return False
            self._inflight_count[worker] = count + 1
            self._inflight_bytes[worker] = (
                self._inflight_bytes.get(worker, 0) + estimate
            )
            return True

    def finish(self, subtask: Subtask) -> None:
        worker = worker_of_band(subtask.band)
        estimate = self._estimates.get(subtask.key, 0)
        with self._lock:
            self._inflight_count[worker] = max(
                0, self._inflight_count.get(worker, 0) - 1
            )
            self._inflight_bytes[worker] = max(
                0, self._inflight_bytes.get(worker, 0) - estimate
            )


def verify_memory_invariants(session: Any) -> None:
    """Post-run memory-accounting invariants (chaos & pressure tests).

    - every worker's tracked ``used`` equals the summed nbytes of its
      memory-resident items (no leaked or double-counted allocations);
    - no pins survive outside a subtask's accounting span;
    - the admission ledger holds no grant past the clock's makespan.

    Raises ``AssertionError`` with a precise message on violation.
    """
    storage = session.storage
    cluster = session.cluster
    for worker, tracker in cluster.memory.items():
        resident = storage.memory_bytes(worker)
        if tracker.used != resident:
            raise AssertionError(
                f"{worker}: tracker.used={tracker.used} != "
                f"resident bytes {resident}"
            )
    pinned = storage.pinned_keys()
    if pinned:
        raise AssertionError(f"pins survived the run: {pinned!r}")
    admission = session.executor.pressure.admission
    now = cluster.clock.makespan
    leftover = admission.outstanding(now)
    if leftover:
        raise AssertionError(
            f"admission ledger not drained: {leftover} bytes active "
            f"past makespan {now}"
        )
