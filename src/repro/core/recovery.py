"""Lineage-based fault recovery: deterministic injection + recompute planning.

Two pieces live here:

- :class:`FaultInjector` — a seeded chaos source that can fail a
  subtask's compute, drop a stored chunk, or kill a worker, either at
  configured rates (``Config.faults``) or at scripted injection points.
  Every decision hashes a *structural* identity — (stage index,
  topological priority, attempt) — never a runtime key or call order, so
  for one seed the same faults fire in serial and parallel execution
  mode and across separate sessions running the same workload. That is
  what makes faulted ``SimReport``s bit-identical between modes.

- :class:`RecoveryManager` — the lineage registry. Every executed
  subtask is recorded by its output chunk keys; when a consumer finds an
  input missing (dropped chunk, killed worker, refcount-freed shuffle
  partition), :meth:`RecoveryManager.plan` walks the lineage backwards
  to the minimal set of producers whose re-execution restores the
  missing data — pulling in transitive producers whose own inputs are
  gone too — and returns them in a valid execution order. The paper's
  subtask graph (Section III-C) provides exactly this lineage; the
  recomputation strategy follows GraphX-style lineage recovery
  (PAPERS.md).

The executor (``core.executor``) owns the retry loop, backoff
accounting, and the actual re-execution; injection decisions and the
lineage walk are kept here so they stay side-effect free and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..config import FaultSpec
from ..errors import UnrecoverableChunkLoss
from ..graph.identity import structural_draw
from ..graph.subtask import Subtask


@dataclass
class FaultEvent:
    """One fired injection, kept for reports and tests."""

    point: str      # "compute" | "chunk_loss" | "worker_kill" | "mem_squeeze"
    target: str     # subtask key / chunk key / worker name
    stage: int
    priority: int
    detail: str = ""


class FaultInjector:
    """Deterministic, seeded fault source hung off ``ClusterState``.

    Rate draws hash ``(seed, point, stage, priority, ...)`` into a
    uniform ``[0, 1)`` value compared against the configured rate.
    Scripted injections (tests, benchmarks) name the exact structural
    identity to hit; predicate hooks inspect the live subtask. All
    decision points are evaluated only on the executor's deterministic
    accounting walk, never on band-runner threads.
    """

    def __init__(self, spec: FaultSpec | None = None):
        self.spec = spec if spec is not None else FaultSpec()
        #: every injection that fired, in accounting order.
        self.events: list[FaultEvent] = []
        self._scripted: set[tuple] = set()
        #: scripted squeeze identities -> budget factor override.
        self._scripted_squeeze: dict[tuple, float] = {}
        self._compute_hooks: list[Callable[[Subtask, int], bool]] = []
        self._loss_hooks: list[Callable[[Subtask, str], bool]] = []
        self._kill_hooks: list[Callable[[Subtask], bool]] = []
        #: scripted actor kills: (stage, priority) -> uids to crash
        #: right after that subtask completes (accounting walk).
        self._scripted_actor_kills: dict[tuple[int, int], list[str]] = {}

    @property
    def enabled(self) -> bool:
        # Once any injection has fired the injector stays enabled even
        # after its scripted points are consumed: a chunk lost in an
        # earlier stage must still be caught by the recovery wrapper's
        # missing-input pre-check in later stages.
        return (self.spec.any_rate or bool(self._scripted)
                or bool(self._scripted_squeeze)
                or bool(self._scripted_actor_kills)
                or bool(self._compute_hooks) or bool(self._loss_hooks)
                or bool(self._kill_hooks) or bool(self.events))

    # -- deterministic draws ----------------------------------------------
    def _draw(self, *identity) -> float:
        """Uniform [0, 1) value derived from the seed and an identity."""
        return structural_draw(self.spec.seed, *identity)

    # -- decision points ---------------------------------------------------
    def fail_compute(self, subtask: Subtask, attempt: int) -> bool:
        """Should this attempt of ``subtask`` fail before doing any work?"""
        ident = ("compute", subtask.stage_index, subtask.priority, attempt)
        fired = ident in self._scripted
        if fired:
            self._scripted.discard(ident)
        if not fired and any(h(subtask, attempt) for h in self._compute_hooks):
            fired = True
        if not fired and self.spec.compute_fault_rate > 0.0:
            fired = self._draw(*ident) < self.spec.compute_fault_rate
        if fired:
            self.events.append(FaultEvent(
                "compute", subtask.key, subtask.stage_index,
                subtask.priority, detail=f"attempt {attempt}",
            ))
        return fired

    def drop_chunk(self, subtask: Subtask, out_index: int, key: str) -> bool:
        """Should this freshly stored output chunk be lost?"""
        ident = ("chunk_loss", subtask.stage_index, subtask.priority, out_index)
        fired = ident in self._scripted
        if fired:
            self._scripted.discard(ident)
        if not fired and any(h(subtask, key) for h in self._loss_hooks):
            fired = True
        if not fired and self.spec.chunk_loss_rate > 0.0:
            fired = self._draw(*ident) < self.spec.chunk_loss_rate
        if fired:
            self.events.append(FaultEvent(
                "chunk_loss", key, subtask.stage_index, subtask.priority,
            ))
        return fired

    def kill_worker_after(self, subtask: Subtask) -> bool:
        """Should the worker that just ran ``subtask`` crash?"""
        ident = ("worker_kill", subtask.stage_index, subtask.priority)
        fired = ident in self._scripted
        if fired:
            self._scripted.discard(ident)
        if not fired and any(h(subtask) for h in self._kill_hooks):
            fired = True
        if not fired and self.spec.worker_kill_rate > 0.0:
            fired = self._draw(*ident) < self.spec.worker_kill_rate
        if fired:
            band = subtask.band or "?"
            self.events.append(FaultEvent(
                "worker_kill", band.split("/")[0], subtask.stage_index,
                subtask.priority,
            ))
        return fired

    def squeeze_memory(self, subtask: Subtask) -> Optional[float]:
        """Budget factor if this subtask's worker is transiently squeezed.

        Returns the factor to multiply the worker's memory limit by for
        the duration of the subtask's admission/execution, or ``None``.
        Drawn once per subtask (not per attempt): the squeeze models
        external pressure lasting across the OOM ladder's retries.
        """
        ident = ("mem_squeeze", subtask.stage_index, subtask.priority)
        factor = self._scripted_squeeze.pop(ident, None)
        if factor is None and self.spec.memory_squeeze_rate > 0.0:
            if self._draw(*ident) < self.spec.memory_squeeze_rate:
                factor = self.spec.memory_squeeze_factor
        if factor is not None:
            worker = (subtask.band or "?").split("/")[0]
            self.events.append(FaultEvent(
                "mem_squeeze", worker, subtask.stage_index,
                subtask.priority, detail=f"factor {factor}",
            ))
        return factor

    # -- scripted injection points ----------------------------------------
    def script_compute_fault(self, stage: int, priority: int,
                             attempt: int = 0) -> None:
        """Fail one exact attempt of the subtask at (stage, priority)."""
        self._scripted.add(("compute", stage, priority, attempt))

    def script_chunk_loss(self, stage: int, priority: int,
                          out_index: int = 0) -> None:
        """Drop one output of the subtask at (stage, priority) post-store."""
        self._scripted.add(("chunk_loss", stage, priority, out_index))

    def script_worker_kill(self, stage: int, priority: int) -> None:
        """Kill the worker that runs the subtask at (stage, priority)."""
        self._scripted.add(("worker_kill", stage, priority))

    def script_actor_kill(self, stage: int, priority: int, uid: str) -> None:
        """Crash the actor ``uid`` after the subtask at (stage, priority).

        Fired on the accounting walk right after that subtask's
        post-completion injection point, so the kill lands at the same
        structural moment in serial, thread and process mode. The
        supervisor restarts the actor lazily (next delivery or probe).
        """
        self._scripted_actor_kills.setdefault((stage, priority), []).append(uid)

    def actor_kills_after(self, subtask: Subtask) -> list[str]:
        """Consume the actor kills scripted for this subtask, if any."""
        uids = self._scripted_actor_kills.pop(
            (subtask.stage_index, subtask.priority), None)
        if not uids:
            return []
        for uid in uids:
            self.events.append(FaultEvent(
                "actor_kill", uid, subtask.stage_index, subtask.priority,
            ))
        return uids

    def script_memory_squeeze(self, stage: int, priority: int,
                              factor: float | None = None) -> None:
        """Squeeze the budget of the worker running (stage, priority)."""
        if factor is None:
            factor = self.spec.memory_squeeze_factor
        self._scripted_squeeze[("mem_squeeze", stage, priority)] = factor

    # -- predicate hooks (tests) ------------------------------------------
    def on_compute(self, hook: Callable[[Subtask, int], bool]) -> None:
        self._compute_hooks.append(hook)

    def on_store(self, hook: Callable[[Subtask, str], bool]) -> None:
        self._loss_hooks.append(hook)

    def on_complete(self, hook: Callable[[Subtask], bool]) -> None:
        self._kill_hooks.append(hook)


class RecoveryManager:
    """Lineage registry + recompute planning for one :class:`GraphExecutor`.

    The registry outlives reference counting on purpose: a chunk's value
    may be freed the moment its last consumer ran, but its producing
    subtask (with live operator objects all the way down to data
    sources) stays reachable here, so any later loss is recomputable.
    """

    def __init__(self):
        #: chunk key -> the subtask whose execution produces it.
        self._producer_of: dict[str, Subtask] = {}

    def record(self, subtask: Subtask) -> None:
        """Register a successfully executed subtask's outputs."""
        for key in subtask.output_keys:
            self._producer_of[key] = subtask

    def producer_of(self, key: str) -> Optional[Subtask]:
        return self._producer_of.get(key)

    def known_keys(self) -> int:
        return len(self._producer_of)

    def plan(self, missing: Iterable[str],
             contains: Callable[[str], bool]) -> list[Subtask]:
        """Minimal producer set whose re-execution restores ``missing``.

        Walks the lineage backwards: a producer whose own inputs are gone
        (e.g. shuffle-map partitions freed by refcounting) pulls its
        producers in too, terminating at chunks still resident in storage
        or at data sources with no inputs. Returns the subtasks in a
        valid execution order.

        Raises :class:`UnrecoverableChunkLoss` for a key no recorded
        subtask produces.
        """
        needed: dict[str, Subtask] = {}
        seen: set[str] = set()
        stack = list(missing)
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            if contains(key):
                continue
            producer = self._producer_of.get(key)
            if producer is None:
                raise UnrecoverableChunkLoss(key)
            if producer.key in needed:
                continue
            needed[producer.key] = producer
            stack.extend(producer.input_keys)

        # Order by dataflow, not by recorded (stage, priority): dynamic
        # tiling can re-execute a refcount-freed chunk's producer in a
        # *later* stage than the one its consumers first ran in, so the
        # recorded stage indices are not topological across stages. A
        # Kahn walk with a deterministic tie-break keeps the plan
        # identical across execution modes.
        deps: dict[str, set[str]] = {key: set() for key in needed}
        dependents: dict[str, set[str]] = {key: set() for key in needed}
        for subtask in needed.values():
            for input_key in subtask.input_keys:
                producer = self._producer_of.get(input_key)
                if (producer is not None and producer.key in needed
                        and producer.key != subtask.key):
                    deps[subtask.key].add(producer.key)
                    dependents[producer.key].add(subtask.key)
        order: list[Subtask] = []
        ready = [s for s in needed.values() if not deps[s.key]]
        while ready:
            ready.sort(key=lambda s: (s.stage_index, s.priority))
            current = ready.pop(0)
            order.append(current)
            for dependent_key in sorted(dependents[current.key]):
                remaining = deps[dependent_key]
                remaining.discard(current.key)
                if not remaining:
                    ready.append(needed[dependent_key])
        if len(order) != len(needed):
            # a lineage cycle means the registry was corrupted; surface
            # it as unrecoverable rather than recomputing garbage.
            leftover = sorted(set(needed) - {s.key for s in order})
            raise UnrecoverableChunkLoss(leftover[0])
        return order
