"""Auto rechunk — Algorithm 1 of the paper.

Given a raw array shape, a partial ``dim_to_size`` constraint (dimensions
whose chunk extent the *operator* dictates, e.g. QR requires tall-and-
skinny chunks spanning all columns), and the per-item byte size, compute
chunk extents for the unconstrained dimensions such that every chunk fits
the configured chunk-size limit.

Worked example from Section V-D: ``shape=(10000, 10000)``,
``dim_to_size={1: 10000}``, ``itemsize=8``, 128 MiB limit ⇒ the free
dimension splits into ``[1677, 1677, 1677, 1677, 1677, 1615]`` — exactly
the figures the paper reports.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import TilingError


def auto_rechunk(shape: Sequence[int], dim_to_size: Mapping[int, int],
                 itemsize: int, chunk_limit: int) -> dict[int, list[int]]:
    """Return per-dimension chunk extents honouring the constraints.

    ``dim_to_size`` maps constrained dimensions to their (single) chunk
    extent; every other dimension is split so a chunk occupies at most
    ``chunk_limit`` bytes. The result maps *every* dimension to the list
    of its chunk extents, in order, summing to the dimension's length.
    """
    shape = [int(s) for s in shape]
    if any(s < 0 for s in shape):
        raise TilingError(f"invalid shape {shape!r}")
    if itemsize <= 0 or chunk_limit <= 0:
        raise TilingError("itemsize and chunk_limit must be positive")
    for dim, size in dim_to_size.items():
        if not 0 <= dim < len(shape):
            raise TilingError(f"dimension {dim} out of range for shape {shape!r}")
        if size <= 0 or size > shape[dim]:
            raise TilingError(
                f"constrained extent {size} invalid for dimension {dim} "
                f"of length {shape[dim]}"
            )

    result: dict[int, list[int]] = {
        dim: [int(size)] * (shape[dim] // int(size))
        + ([shape[dim] % int(size)] if shape[dim] % int(size) else [])
        for dim, size in dim_to_size.items()
    }
    left_unsplit = {
        dim: shape[dim] for dim in range(len(shape)) if dim not in dim_to_size
    }
    left_sizes: dict[int, list[int]] = {dim: [] for dim in left_unsplit}

    while left_unsplit:
        # bytes one chunk occupies across constrained AND already-resolved
        # dimensions (the paper recomputes nbytes every iteration, line 8)
        constrained_bytes = itemsize
        for dim, extents in result.items():
            if extents:
                constrained_bytes *= max(extents)
        divided = max(chunk_limit // max(constrained_bytes, 1), 1)
        left_dims = len(left_unsplit)
        cur_size = max(int(divided ** (1.0 / left_dims)), 1)
        for dim in list(left_unsplit):
            remaining = left_unsplit[dim]
            piece = min(remaining, cur_size)
            if piece > 0:
                left_sizes[dim].append(piece)
            left_unsplit[dim] = remaining - piece
            if left_unsplit[dim] <= 0:
                result[dim] = left_sizes[dim]
                del left_unsplit[dim]

    for dim, length in enumerate(shape):
        if length == 0:
            result[dim] = []
        if sum(result[dim]) != length:
            raise TilingError(
                f"rechunk bookkeeping error on dim {dim}: "
                f"{result[dim]} != {length}"
            )
    return result


def rechunk_to_splits(shape: Sequence[int], dim_to_size: Mapping[int, int],
                      itemsize: int, chunk_limit: int) -> tuple[tuple[int, ...], ...]:
    """:func:`auto_rechunk` packaged as an ``nsplits`` tuple."""
    per_dim = auto_rechunk(shape, dim_to_size, itemsize, chunk_limit)
    return tuple(tuple(per_dim[d]) for d in range(len(shape)))


def balanced_splits(total: int, target_bytes: int, bytes_per_item: int,
                    max_parts: int | None = None) -> list[int]:
    """Split ``total`` items into near-equal pieces of roughly
    ``target_bytes`` each; used for 1-D (row-wise) dataframe tiling."""
    if total <= 0:
        return []
    if bytes_per_item <= 0:
        raise TilingError("bytes_per_item must be positive")
    items_per_chunk = max(target_bytes // bytes_per_item, 1)
    parts = max(math.ceil(total / items_per_chunk), 1)
    if max_parts is not None:
        parts = min(parts, max_parts)
    base, rest = divmod(total, parts)
    return [base + (1 if i < rest else 0) for i in range(parts)]
