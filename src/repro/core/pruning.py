"""Column pruning over the tileable graph (Section V-A).

Walking backwards from the data sinks, each operator reports which
columns of each input it needs to produce its required output columns
(``Operator.input_column_requirements``). Requirements accumulate per
tileable; datasource operators finally receive the pruned column list
(``Operator.accept_pruned_columns``) so unused columns are never loaded
from disk or moved over the network — the dataframe equivalent of
predicate pushdown.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..graph.dag import DAG
from ..graph.entity import TileableData
from .operator import DataSourceOp


def _merge(current: Optional[set], update: Optional[Sequence]) -> Optional[set]:
    """Combine column requirements; ``None`` means "all columns"."""
    if update is None:
        return None
    if current is None:
        return None
    return current | set(update)


def prune_columns(graph: DAG[TileableData],
                  results: Sequence[TileableData]) -> dict[str, Optional[list]]:
    """Run the pruning pass; mutates datasource ops in place.

    Returns the per-tileable requirement map (``None`` = all columns) for
    introspection and testing.
    """
    required: dict[str, Optional[set]] = {}
    result_keys = {t.key for t in results}
    for node in graph.nodes():
        if node.key in result_keys:
            required[node.key] = None  # the user sees the full result
        else:
            required[node.key] = set()

    for node in graph.reverse_topological_order():
        op = node.op
        if op is None:
            continue
        out_req = required.get(node.key, None)
        out_list = sorted(out_req) if out_req is not None else None
        per_input = op.input_column_requirements(out_list)
        if len(per_input) != len(op.inputs):
            raise ValueError(
                f"{type(op).__name__} returned {len(per_input)} requirement "
                f"lists for {len(op.inputs)} inputs"
            )
        for dep, cols in zip(op.inputs, per_input):
            required[dep.key] = _merge(required.get(dep.key, set()), cols)

    for node in graph.nodes():
        op = node.op
        if isinstance(op, DataSourceOp):
            req = required.get(node.key)
            _apply_datasource_pruning(node, op, req)

    return {
        key: (sorted(value) if value is not None else None)
        for key, value in required.items()
    }


def _apply_datasource_pruning(node: TileableData, op,
                              req: Optional[set]) -> None:
    """Prune a datasource, merging with earlier queries' requirements.

    Sources are shared across queries of one session: a source already
    tiled with a pruned column set must be *re-tiled* (chunks dropped,
    data re-read) when a later query needs columns the first one pruned
    away — exactly what a real engine's cached scan would do.
    """
    prev = getattr(op, "pruned_columns", None)
    was_pruned = getattr(op, "_prune_applied", False)

    if node.is_tiled:
        if not was_pruned:
            return  # tiled with every column: nothing can be missing
        have = set(prev) if prev is not None else None
        if have is None:
            return
        if req is not None and req <= have:
            return  # cached tiling already covers this query
        merged = None if req is None else sorted(have | req)
        node.chunks = []
        node.nsplits = ()
        op.accept_pruned_columns(merged)
        op._prune_applied = merged is not None
        return

    op.accept_pruned_columns(sorted(req) if req is not None else None)
    op._prune_applied = req is not None
