"""Process-pool subtask execution with zero-copy chunk exchange.

The thread-pool band runner overlaps NumPy kernels (they drop the GIL)
but serializes every pure-Python/pandas kernel.  This module moves the
*compute phase* of a subtask into a persistent pool of spawned worker
processes, so those kernels genuinely run in parallel, while keeping
the accounting phase untouched on the dispatching thread — simulated
numbers stay bit-identical to serial and thread mode.

Wire protocol
-------------

A payload (subtask + inputs on the way out, kernel results on the way
back) is pickled with protocol 5 and *out-of-band buffers*
(``cloudpickle.dumps(obj, buffer_callback=...)``).  The buffer bytes —
the actual chunk data — travel one of two ways:

- **inline** (total buffer bytes below ``config.procpool_inline_threshold``):
  copied into the pickle message itself.  One small copy beats an shm
  segment's syscall overhead;
- **shared memory** (at or above the threshold): all buffers are packed
  into a single ``multiprocessing.shared_memory`` segment; the message
  carries only the segment name and buffer lengths.  The receiver maps
  the segment and reconstructs the object over ``memoryview`` slices —
  ndarray-backed chunks cross the process boundary without a copy in
  either direction.

Ownership rules (POSIX ``SharedMemory`` registers with the resource
tracker on *every* init, create and attach alike):

- the **parent** owns every unlink.  Input segments are unlinked as soon
  as the subtask's future settles; result segments are unlinked right
  after the parent attaches (the mapping stays valid until closed);
- the **child** never talks to the resource tracker: registration is
  suppressed around its ``SharedMemory`` inits.  Workers share the
  parent's tracker process, and a child's register/unregister messages
  interleave arbitrarily with the parent's for the same segment name —
  the only race-free protocol is for exactly one process (the parent,
  whose own messages are pipe-ordered) to ever mention a name;
- ``close()`` of a mapped segment is *deferred* while zero-copy views
  into it are alive (:class:`SharedMemoryArena` retries on the next
  sweep and at shutdown).

A worker process dying (OOM-killed, segfault, ``os._exit``) surfaces as
:class:`~repro.errors.WorkerProcessCrash`; the pool is rebuilt and the
accounting walk re-runs the subtask's kernels inline — the same
lineage-recoverable fault path every other compute failure takes.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
from contextlib import contextmanager, nullcontext
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Any

from ..engine.base import engine_of
from ..errors import WorkerProcessCrash

try:  # the kernels close over lambdas; plain pickle cannot ship those
    import cloudpickle as _pickler
except ImportError:  # pragma: no cover - baked into the image
    _pickler = pickle

PROTOCOL = 5


def _wire_map(value: Any, fn, memo: dict) -> Any:
    """Map ``fn`` over a chunk value (or a multi-output dict of them).

    ``memo`` keeps identity sharing intact: the same physical object
    appearing in both ``op_results`` and ``outputs`` maps to the *same*
    wire object, so one pickle memoizes it once and the other side
    reconstructs one shared value — exactly the identity the in-process
    paths have.
    """
    if isinstance(value, dict):
        return {k: _wire_map(v, fn, memo) for k, v in value.items()}
    mapped = memo.get(id(value))
    if mapped is None:
        mapped = fn(value)
        memo[id(value)] = mapped
    return mapped


def iter_subtask_ops(subtask) -> list:
    """A subtask's distinct ops in first-appearance chunk order.

    The deterministic op numbering both sides of the process boundary
    agree on: ``SubtaskComputation.op_results`` is keyed by ``id(op)``,
    which does not survive pickling, so the child keys results by this
    index and the parent maps them back onto its own op objects.
    """
    seen: set[int] = set()
    ops: list = []
    for chunk in subtask.chunks:
        op = chunk.op
        if op is None or id(op) in seen:
            continue
        seen.add(id(op))
        ops.append(op)
    return ops


class SharedMemoryArena:
    """Deferred-close registry for mapped shared-memory segments.

    Zero-copy decode hands out objects whose buffers live inside a
    mapped segment; ``close()`` on such a segment raises ``BufferError``
    until every view dies.  The arena keeps those handles and retries on
    each sweep — a segment that is still exporting views simply waits
    for the next one (or for interpreter teardown).
    """

    def __init__(self):
        self._segments: list[shared_memory.SharedMemory] = []

    def adopt(self, shm: shared_memory.SharedMemory) -> None:
        self._segments.append(shm)

    def sweep(self) -> None:
        remaining = []
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:
                remaining.append(shm)
        self._segments = remaining

    def __len__(self) -> int:
        return len(self._segments)


@contextmanager
def _untracked():
    """Suppress resource-tracker registration inside the block.

    Used by pool workers around every ``SharedMemory`` init (Python
    3.11 registers on attach as well as create): the tracker process is
    shared with the parent, and register/unregister messages from
    different processes for the same name interleave arbitrarily — so
    only the parent may ever register or unregister a segment.  Workers
    run one task at a time on one thread, so the patch cannot race.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = original


def encode_payload(obj: Any, threshold: int, *, child: bool = False):
    """Pickle ``obj`` for the other side; returns ``(payload, shm)``.

    ``payload`` is ``(data, inline_buffers, shm_name, lengths)``.  When
    the protocol-5 out-of-band buffers total at least ``threshold``
    bytes they are packed into one fresh segment (returned as ``shm``,
    still owned by the caller); smaller payloads inline the buffer bytes
    and return ``shm = None``.
    """
    buffers: list[pickle.PickleBuffer] = []
    data = _pickler.dumps(obj, protocol=PROTOCOL,
                          buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]
    total = sum(raw.nbytes for raw in raws)
    if not raws or total < threshold:
        return (data, [bytes(raw) for raw in raws], None, None), None
    with _untracked() if child else nullcontext():
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    lengths: list[int] = []
    offset = 0
    for raw in raws:
        n = raw.nbytes
        shm.buf[offset:offset + n] = raw
        lengths.append(n)
        offset += n
    for buf in buffers:
        buf.release()
    return (data, None, shm.name, lengths), shm


def decode_payload(payload, *, child: bool = False, unlink: bool = False):
    """Rebuild the object; returns ``(obj, shm)``.

    ``shm`` (``None`` for inline payloads) is the mapped segment backing
    the object's buffers zero-copy — the caller must adopt it into an
    arena so its close is deferred past the object's lifetime.  With
    ``unlink=True`` (parent decoding results) the segment name is
    released immediately; the mapping stays readable until closed.
    """
    data, inline, name, lengths = payload
    if name is None:
        return pickle.loads(data, buffers=inline), None
    with _untracked() if child else nullcontext():
        shm = shared_memory.SharedMemory(name=name)
    views = []
    offset = 0
    for n in lengths:
        views.append(shm.buf[offset:offset + n])
        offset += n
    obj = pickle.loads(data, buffers=views)
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced cleanup
            pass
    return obj, shm


# ---------------------------------------------------------------------------
# worker side — module-level so spawn children can import it
# ---------------------------------------------------------------------------

_worker_arena = SharedMemoryArena()


def _worker_initialize(sys_paths: list[str]) -> None:
    """Spawn initializer: make the repo importable in the fresh child."""
    for path in reversed(sys_paths):
        if path not in sys.path:
            sys.path.insert(0, path)


def _worker_ping() -> int:
    """No-op task used to force worker startup (``ProcPoolClient.warm``)."""
    return os.getpid()


def _worker_run(payload):
    """Run one subtask's kernels in the pool worker.

    Decodes ``(subtask, inputs, config)``, runs the shared kernel loop,
    and returns an encoded ``{op_results, op_extra, outputs}`` record
    with op results keyed by the deterministic op index (see
    :func:`iter_subtask_ops`).  The whole record is one pickle, so
    values shared between ``op_results`` and ``outputs`` keep their
    identity across the boundary.
    """
    from ..services.runner import run_subtask_kernels

    # previous calls' zero-copy views are dead by now; release their maps.
    _worker_arena.sweep()
    (subtask, inputs, config), in_shm = decode_payload(payload, child=True)
    if in_shm is not None:
        _worker_arena.adopt(in_shm)
    engine = engine_of(config)
    memo: dict = {}
    inputs = {
        key: _wire_map(value, engine.from_wire, memo)
        for key, value in inputs.items()
    }
    record = run_subtask_kernels(subtask, inputs, config)
    ops = iter_subtask_ops(subtask)
    memo = {}
    result = {
        "op_results": {
            index: _wire_map(record.op_results[id(op)], engine.to_wire, memo)
            for index, op in enumerate(ops)
            if id(op) in record.op_results
        },
        "op_extra": {
            index: record.op_extra_meta[id(op)]
            for index, op in enumerate(ops)
            if id(op) in record.op_extra_meta
        },
        "outputs": {
            key: _wire_map(value, engine.to_wire, memo)
            for key, value in record.outputs.items()
        },
    }
    out_payload, out_shm = encode_payload(
        result, config.procpool_inline_threshold, child=True,
    )
    if out_shm is not None:
        try:
            out_shm.close()  # data persists until the parent unlinks it
        except BufferError:  # pragma: no cover
            _worker_arena.adopt(out_shm)
    return out_payload


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ProcPoolClient:
    """One cluster's handle on the persistent worker process pool.

    Lazy: the executor (and its spawn cost) materializes on the first
    subtask — sessions that never enter process mode pay nothing.
    Thread-safe: band-runner threads submit concurrently; a
    ``BrokenProcessPool`` rebuilds the executor once and surfaces as
    :class:`WorkerProcessCrash` to every submit that hit the dead pool.
    """

    def __init__(self, config):
        self.config = config
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._arena = SharedMemoryArena()
        #: worker-process deaths observed (chaos tests assert on this).
        self.crashes = 0

    # -- pool lifecycle -------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                workers = self.config.procpool_workers or (os.cpu_count() or 1)
                self._executor = ProcessPoolExecutor(
                    max_workers=max(1, workers),
                    mp_context=get_context(self.config.procpool_start_method),
                    initializer=_worker_initialize,
                    initargs=(list(sys.path),),
                )
            return self._executor

    def _handle_crash(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            self.crashes += 1
            if self._executor is broken:
                self._executor = None
        try:
            broken.shutdown(wait=False)
        except Exception:  # pragma: no cover
            pass

    def warm(self) -> int:
        """Spawn every worker now; returns the worker count.

        Benchmarks call this before starting timers so measured speedup
        reflects steady-state execution, not interpreter spawn cost.
        """
        executor = self._ensure_executor()
        count = executor._max_workers  # noqa: SLF001
        futures = [executor.submit(_worker_ping) for _ in range(count)]
        for future in futures:
            future.result()
        return count

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self._arena.sweep()

    # -- the data plane -------------------------------------------------
    def run_subtask(self, subtask, inputs: dict[str, Any], config):
        """Execute one subtask's kernels in a pool worker.

        Kernel exceptions propagate with their original type (matching
        thread mode); a dead worker raises :class:`WorkerProcessCrash`.
        """
        from .dispatch import SubtaskComputation

        engine = engine_of(config)
        memo: dict = {}
        wire_inputs = {
            key: _wire_map(value, engine.to_wire, memo)
            for key, value in inputs.items()
        }
        payload, in_shm = encode_payload(
            (subtask, wire_inputs, config), config.procpool_inline_threshold,
        )
        executor = self._ensure_executor()
        try:
            out_payload = executor.submit(_worker_run, payload).result()
        except BrokenProcessPool as exc:
            self._handle_crash(executor)
            raise WorkerProcessCrash(subtask.band or "?", str(exc)) from exc
        finally:
            if in_shm is not None:
                try:
                    in_shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                in_shm.close()  # no local views: the parent only wrote
        self._arena.sweep()
        result, out_shm = decode_payload(out_payload, unlink=True)
        if out_shm is not None:
            self._arena.adopt(out_shm)
        ops = iter_subtask_ops(subtask)
        memo = {}
        op_results = {
            id(ops[index]): _wire_map(value, engine.from_wire, memo)
            for index, value in result["op_results"].items()
        }
        op_extra = {
            id(ops[index]): value
            for index, value in result["op_extra"].items()
        }
        outputs = {
            key: _wire_map(value, engine.from_wire, memo)
            for key, value in result["outputs"].items()
        }
        return SubtaskComputation(op_results, op_extra, outputs)
