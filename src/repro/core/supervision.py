"""Actor-plane health: heartbeats, liveness probes, straggler deadlines.

Three pieces ride on the :class:`~repro.actors.Supervisor`:

* :class:`HealthMonitor` — per-band runner (and per-service) liveness on
  the *virtual* clock. The executor beats a band's runner every time a
  subtask completes on it; a runner whose last beat is older than
  ``heartbeat_interval * heartbeat_miss_limit`` virtual seconds is
  overdue. Probes at stage boundaries restart anything dead; a dead
  runner's in-flight subtasks surface as retryable
  :class:`~repro.errors.ActorNotFound` and re-run through the existing
  lineage retry path.

* :class:`SpeculationController` — per-op-class EWMA of observed
  wall-clock durations (the ``FootprintEstimator`` pattern applied to
  time instead of bytes). A running subtask's deadline is
  ``multiplier * ewma`` floored at ``min_seconds``; the dispatcher
  launches a speculative duplicate past the deadline and commits
  whichever copy finishes first on the accounting walk, so speculation
  only ever trades duplicate CPU for tail wall-clock — ``SimReport``
  numbers are untouched.

* :class:`SupervisionPlane` — the cluster-level facade deploy wires up:
  the supervisor, the health monitor, and the uid registry that maps
  service/runner uids to their pools.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from ..actors.supervisor import Supervisor

if TYPE_CHECKING:  # pragma: no cover
    from ..config import Config
    from ..graph.subtask import Subtask


class HealthMonitor:
    """Virtual-clock liveness tracking for runners and services.

    The lease is *expectation-based* so idle bands are never
    false-positived: dispatching work to a band arms an expectation at
    the current virtual time; every subtask completion on the band
    ``beat``s the runner, clearing it. A uid whose armed expectation is
    older than ``interval * miss_limit`` virtual seconds — work was
    sent, nothing ever came back — is overdue (wedged or dead).

    Expectations, beats and probes all ride the deterministic accounting
    walk (stage base times and subtask completion times), so health
    verdicts are identical across serial/thread/process execution.
    """

    def __init__(self, interval: float, miss_limit: int):
        self.interval = interval
        self.miss_limit = miss_limit
        self._lock = threading.Lock()
        #: uid -> virtual time of the last heartbeat.
        self._beats: dict[str, float] = {}
        #: uid -> virtual time work was dispatched with no beat since.
        self._expected: dict[str, float] = {}
        self.deaths_declared = 0

    @property
    def enabled(self) -> bool:
        return self.interval > 0.0 and self.miss_limit > 0

    def watch(self, uid: str, now: float = 0.0) -> None:
        with self._lock:
            self._beats.setdefault(uid, now)

    def expect(self, uid: str, now: float) -> None:
        """Arm the lease: work went to ``uid``, a beat must follow."""
        with self._lock:
            self._expected.setdefault(uid, now)

    def beat(self, uid: str, now: float) -> None:
        with self._lock:
            previous = self._beats.get(uid)
            if previous is None or now > previous:
                self._beats[uid] = now
            self._expected.pop(uid, None)

    def last_beat(self, uid: str) -> float | None:
        with self._lock:
            return self._beats.get(uid)

    def deadline(self, uid: str) -> float | None:
        """Virtual time past which ``uid`` counts as dead (armed only)."""
        with self._lock:
            expected = self._expected.get(uid)
        if expected is None or not self.enabled:
            return None
        return expected + self.interval * self.miss_limit

    def overdue(self, now: float) -> list[str]:
        if not self.enabled:
            return []
        with self._lock:
            return [uid for uid, expected in self._expected.items()
                    if now - expected > self.interval * self.miss_limit]

    def declare_dead(self, uid: str, now: float) -> None:
        """Disarm the lease (the restarted actor starts fresh)."""
        with self._lock:
            self._expected.pop(uid, None)
            self._beats[uid] = now
            self.deaths_declared += 1

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "watched": len(self._beats),
                "armed": len(self._expected),
                "deaths_declared": self.deaths_declared,
            }


class SpeculationController:
    """EWMA deadlines and speculative-dispatch bookkeeping.

    Durations are observed per operator class (the terminal chunk's op),
    mirroring ``FootprintEstimator``'s per-op-class history: a slow join
    does not inflate the deadline of a cheap filter. Until a class has
    history the global EWMA stands in; until *any* history exists there
    is no deadline (never speculate blind).
    """

    #: EWMA smoothing for observed durations.
    ALPHA = 0.5

    def __init__(self, multiplier: float = 4.0, min_seconds: float = 0.2):
        self.multiplier = multiplier
        self.min_seconds = min_seconds
        self._lock = threading.Lock()
        #: op class name -> smoothed observed wall-clock seconds.
        self._history: dict[str, float] = {}
        self._global: float | None = None
        #: scripted stragglers: (stage_index, priority) -> extra seconds
        #: the primary attempt sleeps (test/demo hook, consumed once).
        self._scripted: dict[tuple[int, int], float] = {}
        self.speculated = 0

    @staticmethod
    def _op_class(subtask: "Subtask") -> str:
        op = subtask.chunks[-1].op
        return type(op).__name__

    def observe(self, subtask: "Subtask", seconds: float) -> None:
        cls = self._op_class(subtask)
        with self._lock:
            previous = self._history.get(cls)
            if previous is None:
                self._history[cls] = seconds
            else:
                self._history[cls] = (
                    self.ALPHA * seconds + (1.0 - self.ALPHA) * previous)
            if self._global is None:
                self._global = seconds
            else:
                self._global = (
                    self.ALPHA * seconds + (1.0 - self.ALPHA) * self._global)

    def deadline(self, subtask: "Subtask") -> float | None:
        """Wall-clock seconds this subtask may run before speculation."""
        cls = self._op_class(subtask)
        with self._lock:
            expected = self._history.get(cls, self._global)
        if expected is None:
            return None
        return max(self.min_seconds, self.multiplier * expected)

    # -- scripted stragglers (tests, chaos demos) ---------------------------
    def script_straggler(self, stage: int, priority: int,
                         seconds: float) -> None:
        """Make the primary attempt of one subtask sleep ``seconds``."""
        with self._lock:
            self._scripted[(stage, priority)] = seconds

    def straggle(self, subtask: "Subtask") -> None:
        """Apply (and consume) a scripted straggler delay, if any."""
        with self._lock:
            delay = self._scripted.pop(
                (subtask.stage_index, subtask.priority), None)
        if delay:
            time.sleep(delay)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "op_classes": len(self._history),
                "speculated": self.speculated,
            }


class SupervisionPlane:
    """Cluster-level supervision facade: supervisor + health + registry."""

    def __init__(self, system, config: "Config"):
        self.supervisor = Supervisor(system, restart_limit=config.restart_limit)
        self.health = HealthMonitor(config.heartbeat_interval,
                                    config.heartbeat_miss_limit)
        #: band name -> runner uid (heartbeat subjects).
        self.runner_uids: dict[str, str] = {}
        self.service_restarts = 0
        self.runner_restarts = 0

    # -- registration (deploy time) -----------------------------------------
    def register_service(self, address: str, uid: str, factory) -> None:
        self.supervisor.register(address, uid, factory, kind="service")
        self.health.watch(uid)

    def register_runner(self, band: str, address: str, uid: str,
                        factory) -> None:
        self.supervisor.register(address, uid, factory, kind="runner")
        self.runner_uids[band] = uid
        self.health.watch(uid)

    # -- heartbeats ----------------------------------------------------------
    def expect_runner(self, band: str, now: float) -> None:
        uid = self.runner_uids.get(band)
        if uid is not None and self.health.enabled:
            self.health.expect(uid, now)

    def beat_runner(self, band: str, now: float) -> None:
        uid = self.runner_uids.get(band)
        if uid is not None and self.health.enabled:
            self.health.beat(uid, now)

    # -- probes & kills ------------------------------------------------------
    def kill(self, uid: str) -> bool:
        """Crash an actor (no ``on_stop``); restart is lazy."""
        return self.supervisor.kill(uid)

    def probe(self, now: float) -> list[str]:
        """Stage-boundary liveness sweep; returns the uids restarted.

        Two triggers: a supervised actor that is simply gone (killed or
        destroyed between messages), and a heartbeat subject whose beat
        lease expired — the latter covers runners that are wedged rather
        than absent. Both respawn through the supervisor; lost runner
        state re-runs via the executor's retry + lineage path.
        """
        restarted: list[str] = []
        runner_uids = set(self.runner_uids.values())
        overdue = set(self.health.overdue(now))
        for uid in self.supervisor.supervised():
            dead = self.supervisor.ensure_alive(uid)
            if not dead and uid in runner_uids and uid in overdue:
                # present but wedged: work was dispatched, no beat came
                # back within the lease — crash it and respawn fresh.
                self.health.declare_dead(uid, now)
                self.supervisor.kill(uid)
                self.supervisor.restart(uid)
                dead = True
            if dead:
                restarted.append(uid)
                self.health.beat(uid, now)
                if uid in runner_uids:
                    self.runner_restarts += 1
                else:
                    self.service_restarts += 1
        return restarted

    def snapshot(self) -> dict[str, Any]:
        return {
            "supervisor": self.supervisor.snapshot(),
            "health": self.health.snapshot(),
            "service_restarts": self.service_restarts,
            "runner_restarts": self.runner_restarts,
        }
