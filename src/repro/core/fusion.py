"""Coloring-based graph-level fusion (Section V-A, Fig. 7).

The algorithm assigns every chunk-graph node a color in three steps:

1. initial (source) nodes each get a fresh color;
2. forward topological propagation — a node whose predecessors all share
   one color inherits it, otherwise it gets a fresh color;
3. a separation pass — when a node's successors *mix* its own color with
   other colors, the same-colored successors are recolored fresh (the
   node's output must be materialized anyway, so gluing only one branch
   to it would duplicate work), and the recoloring propagates to their
   same-colored descendants.

Adjacent nodes sharing a color afterwards become one subtask.
"""

from __future__ import annotations

import itertools

from ..graph.dag import DAG
from ..graph.entity import ChunkData


def color_chunk_graph(graph: DAG[ChunkData]) -> dict[str, int]:
    """Run the three coloring steps; returns chunk key -> color."""
    topo = graph.topological_order()
    counter = itertools.count()
    color: dict[str, int] = {}

    # step 1 + 2: forward propagation
    for node in topo:
        preds = graph.predecessors(node)
        if not preds:
            color[node.key] = next(counter)
            continue
        pred_colors = {color[p.key] for p in preds}
        if len(pred_colors) == 1:
            color[node.key] = pred_colors.pop()
        else:
            color[node.key] = next(counter)

    # step 3: separate branches that share the parent's color with siblings
    # of other colors
    for node in topo:
        succs = graph.successors(node)
        if not succs:
            continue
        own = color[node.key]
        same = [s for s in succs if color[s.key] == own]
        if not same or len(same) == len(succs):
            continue
        for branch in same:
            old = color[branch.key]
            new = next(counter)
            color[branch.key] = new
            _propagate_recolor(graph, topo, color, branch, old, new)
    return color


def _propagate_recolor(graph: DAG[ChunkData], topo: list[ChunkData],
                       color: dict[str, int], start: ChunkData,
                       old: int, new: int) -> None:
    """Push a recolor down: descendants keep following their chain if they
    had the old color and all their predecessors now carry the new one."""
    started = False
    for node in topo:
        if node.key == start.key:
            started = True
            continue
        if not started or color[node.key] != old:
            continue
        preds = graph.predecessors(node)
        if preds and all(color[p.key] == new for p in preds):
            color[node.key] = new


def fusion_groups(graph: DAG[ChunkData],
                  color: dict[str, int] | None = None) -> list[list[ChunkData]]:
    """Partition the chunk graph into subtask groups.

    Groups are connected components of same-colored adjacent nodes, so two
    unconnected nodes can never share a subtask even if their colors match.
    """
    if color is None:
        color = color_chunk_graph(graph)
    group_of: dict[str, int] = {}
    groups: list[list[ChunkData]] = []
    for node in graph.topological_order():
        if node.key in group_of:
            continue
        gid = len(groups)
        members: list[ChunkData] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.key in group_of:
                continue
            group_of[current.key] = gid
            members.append(current)
            for neighbor in itertools.chain(
                graph.successors(current), graph.predecessors(current)
            ):
                if (neighbor.key not in group_of
                        and color[neighbor.key] == color[current.key]):
                    stack.append(neighbor)
        groups.append(members)
    return _repair_convexity(graph, groups)


def _repair_convexity(graph: DAG[ChunkData],
                      groups: list[list[ChunkData]]) -> list[list[ChunkData]]:
    """Split groups whose fusion would create a subtask-level cycle.

    A group is only a valid subtask if no path leaves it and re-enters
    (convexity); the coloring heuristic can rarely violate this on
    irregular DAGs. Groups participating in a cycle of the condensed
    graph are dissolved into singletons until the condensation is acyclic.
    """
    while True:
        group_of: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for chunk in group:
                group_of[chunk.key] = gid
        edges: dict[int, set[int]] = {gid: set() for gid in range(len(groups))}
        for node in graph.nodes():
            src = group_of[node.key]
            for succ in graph.successors(node):
                dst = group_of[succ.key]
                if dst != src:
                    edges[src].add(dst)
        cyclic = _cyclic_components(edges)
        if not cyclic:
            return groups
        next_groups: list[list[ChunkData]] = []
        for gid, group in enumerate(groups):
            if gid in cyclic and len(group) > 1:
                next_groups.extend([chunk] for chunk in group)
            else:
                next_groups.append(group)
        groups = next_groups


def _cyclic_components(edges: dict[int, set[int]]) -> set[int]:
    """Nodes of the condensed graph that sit on a cycle (Tarjan SCC)."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = itertools.count()
    cyclic: set[int] = set()

    def strongconnect(start: int) -> None:
        work = [(start, iter(sorted(edges[start])))]
        index[start] = lowlink[start] = next(counter)
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = next(counter)
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic.update(component)

    for node in edges:
        if node not in index:
            strongconnect(node)
    return cyclic


def singleton_groups(graph: DAG[ChunkData]) -> list[list[ChunkData]]:
    """The no-fusion baseline: every chunk node is its own subtask."""
    return [[node] for node in graph.topological_order()]
