"""Dataframe data sources: in-memory frames, CSV files, columnar files.

Datasources are where *static* tiling happens: the initial chunk layout
comes from source size estimates (row counts × bytes/row). Everything
after may be re-tiled dynamically. Datasources also terminate column
pruning: ``accept_pruned_columns`` narrows what gets read at all.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.operator import DataSourceOp, ExecContext, Operator, TileContext
from ..core.rechunk import balanced_splits
from ..engine.local import DataFrame, RangeIndex
from ..engine.local import io as frame_io
from ..utils import sizeof
from .utils import chunk_index


def _with_global_index(frame: DataFrame, start: int) -> DataFrame:
    """Give a freshly-read chunk its position in the global row space."""
    out = frame.copy()
    out._index = RangeIndex(start + len(frame), start=start)
    return out


class FromFrame(DataSourceOp):
    """Distribute an in-memory single-node frame (client-side data)."""

    def __init__(self, frame: DataFrame, **params):
        super().__init__(**params)
        self.frame = frame
        self.pruned_columns: Optional[list] = None

    def accept_pruned_columns(self, required: Optional[list]) -> None:
        if required is not None:
            existing = set(self.frame.columns.to_list())
            self.pruned_columns = [c for c in required if c in existing]

    def _effective_frame(self) -> DataFrame:
        if self.pruned_columns is not None and self.pruned_columns:
            return self.frame[self.pruned_columns]
        return self.frame

    def tile(self, ctx: TileContext):
        frame = self._effective_frame()
        n = len(frame)
        bytes_per_row = max(frame.nbytes // max(n, 1), 1)
        splits = balanced_splits(n, ctx.config.chunk_store_limit, bytes_per_row)
        if not splits:
            splits = [0]
        chunks = []
        offset = 0
        columns = frame.columns.to_list()
        for i, rows in enumerate(splits):
            chunk_op = FromFrameSlice(frame=frame, start=offset, stop=offset + rows)
            chunks.append(chunk_op.new_chunk(
                [], "dataframe", (rows, len(columns)), chunk_index("dataframe", i),
                columns=columns,
            ))
            offset += rows
        return [(chunks, (tuple(splits), (len(columns),)))]


class FromFrameSlice(Operator):
    """One row-range of a client frame."""

    def __init__(self, frame: DataFrame, start: int, stop: int, **params):
        super().__init__(start=start, stop=stop, **params)
        self.frame = frame
        self.start = start
        self.stop = stop

    def execute(self, ctx: ExecContext):
        return self.frame.iloc[self.start:self.stop]


class ReadParquet(DataSourceOp):
    """Read an ``.rpq`` columnar file as a distributed dataframe.

    Tiling reads only metadata (row count, columns, file size); each chunk
    reads its own row range, and only the pruned columns, at execution.
    """

    def __init__(self, path, columns: Optional[list] = None, **params):
        super().__init__(path=path, **params)
        self.path = path
        self.columns = list(columns) if columns is not None else None
        self.pruned_columns: Optional[list] = None

    def accept_pruned_columns(self, required: Optional[list]) -> None:
        self.pruned_columns = required

    def _read_columns(self, all_columns: list) -> list:
        columns = self.columns if self.columns is not None else all_columns
        if self.pruned_columns is not None:
            keep = set(self.pruned_columns)
            columns = [c for c in columns if c in keep]
            if not columns:  # always keep at least one column
                columns = [all_columns[0]]
        return columns

    def tile(self, ctx: TileContext):
        meta = frame_io.parquet_metadata(self.path)
        all_columns = [c["name"] for c in meta["columns"]]
        columns = self._read_columns(all_columns)
        n_rows = meta["n_rows"]
        file_size = frame_io.parquet_file_size(self.path)
        in_memory = int(file_size * 1.6) * max(len(columns), 1) // max(
            len(all_columns), 1
        )
        bytes_per_row = max(in_memory // max(n_rows, 1), 1)
        splits = balanced_splits(n_rows, ctx.config.chunk_store_limit,
                                 bytes_per_row)
        if not splits:
            splits = [0]
        chunks = []
        offset = 0
        for i, rows in enumerate(splits):
            chunk_op = ReadParquetChunk(
                path=self.path, columns=columns,
                start=offset, stop=offset + rows,
            )
            chunks.append(chunk_op.new_chunk(
                [], "dataframe", (rows, len(columns)),
                chunk_index("dataframe", i), columns=columns,
            ))
            offset += rows
        return [(chunks, (tuple(splits), (len(columns),)))]


class ReadParquetChunk(Operator):
    def execute(self, ctx: ExecContext):
        p = self.params
        frame = frame_io.read_parquet(
            p["path"], columns=p["columns"], row_range=(p["start"], p["stop"])
        )
        return _with_global_index(frame, p["start"])


class ReadCSV(DataSourceOp):
    """Read a CSV file as a distributed dataframe (row-range chunks)."""

    def __init__(self, path, columns: Optional[list] = None,
                 parse_dates: Optional[list] = None, **params):
        super().__init__(path=path, **params)
        self.path = path
        self.columns = list(columns) if columns is not None else None
        self.parse_dates = list(parse_dates) if parse_dates is not None else []
        self.pruned_columns: Optional[list] = None

    def accept_pruned_columns(self, required: Optional[list]) -> None:
        self.pruned_columns = required

    def tile(self, ctx: TileContext):
        import os

        n_rows = frame_io.csv_row_count(self.path)
        file_size = os.path.getsize(self.path)
        bytes_per_row = max(int(file_size * 1.8) // max(n_rows, 1), 1)
        header = frame_io.read_csv(self.path, nrows=1)
        all_columns = header.columns.to_list()
        columns = self.columns if self.columns is not None else all_columns
        if self.pruned_columns is not None:
            keep = set(self.pruned_columns)
            columns = [c for c in columns if c in keep] or [all_columns[0]]
        splits = balanced_splits(n_rows, ctx.config.chunk_store_limit,
                                 bytes_per_row)
        if not splits:
            splits = [0]
        chunks = []
        offset = 0
        for i, rows in enumerate(splits):
            chunk_op = ReadCSVChunk(
                path=self.path, columns=columns, start=offset, rows=rows,
                parse_dates=self.parse_dates,
            )
            chunks.append(chunk_op.new_chunk(
                [], "dataframe", (rows, len(columns)),
                chunk_index("dataframe", i), columns=columns,
            ))
            offset += rows
        return [(chunks, (tuple(splits), (len(columns),)))]


class ReadCSVChunk(Operator):
    def execute(self, ctx: ExecContext):
        p = self.params
        frame = frame_io.read_csv(
            p["path"], usecols=p["columns"], skiprows=p["start"],
            nrows=p["rows"], parse_dates=p["parse_dates"],
        )
        return _with_global_index(frame, p["start"])
