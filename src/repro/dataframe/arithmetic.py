"""Elementwise dataframe/series operators.

One generic operator class covers arithmetic, comparisons, logical ops,
projections, and per-chunk transforms: all of them map row chunks
one-to-one, preserve the row partitioning, and are candidates for
operator-level fusion.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.operator import ExecContext, Operator, TileContext
from ..graph.entity import TileableData
from .utils import align_rows, chunk_index, nsplits_from_chunks, row_counts


class Elementwise(Operator):
    """Apply ``func(chunk_value, *other_chunk_values)`` per row chunk.

    ``params``:

    - ``func``: the per-chunk callable (closed over scalars);
    - ``out_kind``: "dataframe" / "series";
    - ``out_columns``: known output columns (dataframe) or None;
    - ``keeps_rows``: True when output rows == input rows (arithmetic),
      False when unknown until execution (not used by plain elementwise);
    - ``cols_required``: column-pruning hint — which input columns the
      func touches (None = all).
    """

    is_elementwise = True

    def __init__(self, func: Callable, out_kind: str,
                 out_columns: Optional[list] = None,
                 out_dtype=None, out_name=None,
                 cols_required: Optional[list] = None, **params):
        super().__init__(**params)
        self.func = func
        self.out_kind = out_kind
        self.out_columns = out_columns
        self.out_dtype = out_dtype
        self.out_name = out_name
        self.cols_required = cols_required

    def input_column_requirements(self, required):
        # projections know their needs exactly; for other elementwise ops
        # the output requirement passes through, augmented by what the
        # func itself touches.
        if self.cols_required is None:
            return [None for _ in self.inputs]
        if required is None:
            if self.out_columns is not None:
                required = self.out_columns
            else:
                # series output: "all of the output" is the series itself,
                # so the input only needs the columns the func touches
                required = []
        needed = sorted(set(self.cols_required) | set(required), key=str)
        return [needed] + [None] * (len(self.inputs) - 1)

    # -- tiling ---------------------------------------------------------
    def tile(self, ctx: TileContext):
        chunk_lists = [list(t.chunks) for t in self.inputs]
        kinds = [t.kind for t in self.inputs]
        if len(chunk_lists) > 1:
            aligned = yield from align_rows(ctx, chunk_lists, kinds)
        else:
            aligned = chunk_lists
        n = len(aligned[0])
        out_chunks = []
        n_cols = len(self.out_columns) if self.out_columns is not None else None
        first_rows = row_counts(ctx, aligned[0])
        for i in range(n):
            ins = [chunks[i] for chunks in aligned]
            rows = first_rows[i]
            shape = (rows, n_cols) if self.out_kind == "dataframe" else (rows,)
            chunk_op = ElementwiseChunk(func=self.func)
            out_chunks.append(chunk_op.new_chunk(
                ins, self.out_kind, shape, chunk_index(self.out_kind, i),
                dtype=self.out_dtype, columns=self.out_columns,
                name=self.out_name,
            ))
        nsplits = nsplits_from_chunks(ctx, out_chunks, self.out_kind, n_cols)
        return [(out_chunks, nsplits)]


class ElementwiseChunk(Operator):
    is_elementwise = True
    fuse_expr = "call"

    def __init__(self, func: Callable, **params):
        super().__init__(**params)
        self.func = func

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        return self.func(*values)


def build_elementwise(inputs: list[TileableData], func: Callable,
                      out_kind: str, out_shape: tuple,
                      out_columns: Optional[list] = None,
                      out_dtype=None, out_name=None,
                      cols_required: Optional[list] = None) -> TileableData:
    """Create the logical node for an elementwise operation."""
    op = Elementwise(func=func, out_kind=out_kind, out_columns=out_columns,
                     out_dtype=out_dtype, out_name=out_name,
                     cols_required=cols_required)
    return op.new_tileable(inputs, out_kind, out_shape, dtype=out_dtype,
                           columns=out_columns, name=out_name)


class MapPartitions(Operator):
    """Apply an arbitrary frame→frame function per chunk (not fusable —
    the function may change row counts, e.g. per-chunk dropna)."""

    def __init__(self, func: Callable, out_kind: str,
                 out_columns: Optional[list] = None, out_dtype=None,
                 keeps_rows: bool = False, **params):
        super().__init__(**params)
        self.func = func
        self.out_kind = out_kind
        self.out_columns = out_columns
        self.out_dtype = out_dtype
        self.keeps_rows = keeps_rows

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        out_chunks = []
        n_cols = len(self.out_columns) if self.out_columns is not None else None
        in_rows = row_counts(ctx, chunks) if self.keeps_rows else None
        for i, chunk in enumerate(chunks):
            rows = in_rows[i] if in_rows is not None else None
            shape = (rows, n_cols) if self.out_kind == "dataframe" else (rows,)
            chunk_op = MapPartitionsChunk(func=self.func)
            out_chunks.append(chunk_op.new_chunk(
                [chunk], self.out_kind, shape, chunk_index(self.out_kind, i),
                dtype=self.out_dtype, columns=self.out_columns,
            ))
        nsplits = nsplits_from_chunks(ctx, out_chunks, self.out_kind, n_cols)
        return [(out_chunks, nsplits)]


class MapPartitionsChunk(Operator):
    def __init__(self, func: Callable, **params):
        super().__init__(**params)
        self.func = func

    def execute(self, ctx: ExecContext):
        return self.func(ctx.get(self.inputs[0].key))
