"""Remaining distributed dataframe operators: drop_duplicates, unique,
gather-apply (describe and friends), and value assignment."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..engine.local import concat
from ..graph.entity import ChunkData
from ..utils import batched
from .utils import chunk_index, nsplits_from_chunks


class DropDuplicates(Operator):
    """Distributed dedup: per-chunk dedup → tree merge-dedup.

    Each map step can only shrink data; the combine tree keeps per-node
    input bounded by ``combine_arity`` chunks — the same overload-avoidance
    argument as the groupby combine stage.
    """

    def __init__(self, subset: Optional[Sequence], out_kind: str,
                 out_columns=None, **params):
        super().__init__(**params)
        self.subset = list(subset) if subset is not None else None
        self.out_kind = out_kind
        self.out_columns = out_columns

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        n_cols = len(self.out_columns) if self.out_columns is not None else None
        level = []
        for i, chunk in enumerate(chunks):
            op = DropDuplicatesChunk(subset=self.subset)
            shape = (None, n_cols) if self.out_kind == "dataframe" else (None,)
            level.append(op.new_chunk(
                [chunk], self.out_kind, shape, chunk_index(self.out_kind, i),
                columns=self.out_columns,
            ))
        while len(level) > 1:
            next_level = []
            for j, batch in enumerate(batched(level, ctx.config.combine_arity)):
                op = DropDuplicatesChunk(subset=self.subset)
                shape = (None, n_cols) if self.out_kind == "dataframe" else (None,)
                next_level.append(op.new_chunk(
                    list(batch), self.out_kind, shape,
                    chunk_index(self.out_kind, j), columns=self.out_columns,
                ))
            level = next_level
        return [(level, nsplits_from_chunks(ctx, level, self.out_kind, n_cols))]


class DropDuplicatesChunk(Operator):
    def __init__(self, subset=None, **params):
        super().__init__(**params)
        self.subset = subset

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        merged = concat(values) if len(values) > 1 else values[0]
        if hasattr(merged, "drop_duplicates"):
            if self.subset is not None and hasattr(merged, "columns"):
                return merged.drop_duplicates(subset=self.subset)
            return merged.drop_duplicates()
        raise TypeError("drop_duplicates on unsupported value")


class UniqueValues(Operator):
    """``series.unique()``: per-chunk uniques → union → 1-D array."""

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        level = []
        for chunk in chunks:
            op = UniqueValuesChunk(final=False)
            level.append(op.new_chunk([chunk], "tensor", (None,), (0,)))
        while len(level) > 1:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = UniqueValuesChunk(final=False)
                next_level.append(op.new_chunk(list(batch), "tensor", (None,), (0,)))
            level = next_level
        final_op = UniqueValuesChunk(final=True)
        out = final_op.new_chunk(level, "tensor", (None,), (0,))
        return [([out], ((None,),))]


class UniqueValuesChunk(Operator):
    def __init__(self, final: bool, **params):
        super().__init__(**params)
        self.final = final

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        pieces = []
        for value in values:
            if hasattr(value, "unique"):
                pieces.append(np.asarray(value.unique(), dtype=object))
            else:
                pieces.append(np.asarray(value, dtype=object))
        merged = np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
        seen: dict = {}
        for item in merged.tolist():
            if item not in seen:
                seen[item] = None
        out = np.array(list(seen), dtype=object)
        return out


class GatherApply(Operator):
    """Funnel every chunk into one node and apply ``func`` there.

    The fallback plan for operators whose result is small but whose
    computation is not decomposable (``describe``, small pivots). The
    combine tree bounds fan-in like everywhere else.
    """

    def __init__(self, func: Callable, out_kind: str, out_columns=None,
                 out_dtype=None, out_name=None, **params):
        super().__init__(**params)
        self.func = func
        self.out_kind = out_kind
        self.out_columns = out_columns
        self.out_dtype = out_dtype
        self.out_name = out_name

    def tile(self, ctx: TileContext):
        from .utils import ConcatChunks

        level = list(self.inputs[0].chunks)
        while len(level) > ctx.config.combine_arity:
            next_level = []
            for j, batch in enumerate(batched(level, ctx.config.combine_arity)):
                op = ConcatChunks()
                next_level.append(op.new_chunk(
                    list(batch), batch[0].kind, (None,) + batch[0].shape[1:],
                    chunk_index(batch[0].kind, j), columns=batch[0].columns,
                ))
            level = next_level
        op = GatherApplyChunk(func=self.func)
        n_cols = len(self.out_columns) if self.out_columns is not None else None
        shape = (
            (None, n_cols) if self.out_kind == "dataframe"
            else ((None,) if self.out_kind in ("series", "tensor") else ())
        )
        index = chunk_index(self.out_kind, 0) if self.out_kind != "scalar" else ()
        out = op.new_chunk(level, self.out_kind, shape, index,
                           columns=self.out_columns, dtype=self.out_dtype,
                           name=self.out_name)
        if self.out_kind == "scalar":
            return [([out], ((),))]
        return [([out], nsplits_from_chunks(ctx, [out], self.out_kind, n_cols))]


class GatherApplyChunk(Operator):
    def __init__(self, func: Callable, **params):
        super().__init__(**params)
        self.func = func

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        merged = concat(values) if len(values) > 1 else values[0]
        return self.func(merged)
