"""Shared helpers for distributed dataframe operators: row alignment,
auto merge of small chunks, and chunk construction shortcuts."""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..engine.local import DataFrame, Series, concat
from ..graph.entity import ChunkData


def spread_sample(chunks: Sequence[ChunkData], k: int) -> list[ChunkData]:
    """Pick ~k chunks evenly spread over the chunk list.

    Sampling only the *first* chunks biases range-partition boundaries
    catastrophically when the key is laid out monotonically across chunks
    (e.g. a generated order-key column): every cut would fall in the low
    keys and one reducer would receive almost all rows.
    """
    n = len(chunks)
    if n <= k:
        return list(chunks)
    positions = sorted({
        min(int(round(i * (n - 1) / max(k - 1, 1))), n - 1) for i in range(k)
    })
    return [chunks[p] for p in positions]


def chunk_index(kind: str, i: int) -> tuple:
    """Row-wise distributed index for position ``i`` (Fig. 4)."""
    return (i, 0) if kind == "dataframe" else (i,)


def _rows_of(meta, chunk: ChunkData) -> Optional[int]:
    """Row count from a (possibly absent) meta, falling back to the
    chunk's declared shape."""
    if meta is not None and meta.shape:
        return int(meta.shape[0])
    if chunk.shape and chunk.shape[0] is not None:
        return int(chunk.shape[0])
    return None


def row_count(ctx: TileContext, chunk: ChunkData) -> Optional[int]:
    """Known row count of a chunk (meta first, declared shape second)."""
    return _rows_of(ctx.meta.get(chunk.key), chunk)


def row_counts(ctx: TileContext,
               chunks: Sequence[ChunkData]) -> list[Optional[int]]:
    """Known row counts for a chunk list — one meta round-trip, not one
    per chunk."""
    metas = ctx.chunk_metas(chunks)
    return [_rows_of(meta, chunk) for meta, chunk in zip(metas, chunks)]


def known_splits(ctx: TileContext, chunks: Sequence[ChunkData]) -> Optional[list[int]]:
    """Row counts of every chunk, or None if any is unknown."""
    sizes = row_counts(ctx, chunks)
    if any(n is None for n in sizes):
        return None
    return sizes


class ConcatChunks(Operator):
    """Concatenate several row chunks into one (the auto-merge kernel)."""

    def execute(self, ctx: ExecContext):
        pieces = [ctx.get(c.key) for c in self.inputs]
        if len(pieces) == 1:
            return pieces[0]
        return concat(pieces)


class SliceRows(Operator):
    """Positional row slice of one chunk: params start/stop."""

    is_lightweight = True

    def execute(self, ctx: ExecContext):
        value = ctx.get(self.inputs[0].key)
        start, stop = self.params["start"], self.params["stop"]
        return value.iloc[start:stop]


def auto_merge_chunks(ctx: TileContext, chunks: list[ChunkData],
                      kind: str) -> list[ChunkData]:
    """Auto merge (Section IV-C): concatenate adjacent small chunks until
    each merged chunk approaches the configured chunk-size limit.

    Requires executed metadata (byte sizes); chunks without metadata are
    passed through untouched. Disabled via ``config.auto_merge``.
    """
    if not ctx.config.auto_merge or len(chunks) <= 1:
        return list(chunks)
    limit = ctx.config.chunk_store_limit
    sizes = ctx.chunk_nbytes_many(chunks, default=-1)
    if any(s < 0 for s in sizes):
        return list(chunks)

    merged: list[ChunkData] = []
    batch: list[ChunkData] = []
    batch_bytes = 0
    for chunk, nbytes in zip(chunks, sizes):
        if batch and batch_bytes + nbytes > limit:
            merged.append(_merge_batch(batch, kind, len(merged)))
            batch, batch_bytes = [], 0
        batch.append(chunk)
        batch_bytes += nbytes
    if batch:
        merged.append(_merge_batch(batch, kind, len(merged)))
    if len(merged) == len(chunks):
        return list(chunks)  # nothing actually merged; keep original indices
    return merged


def _merge_batch(batch: list[ChunkData], kind: str, position: int) -> ChunkData:
    if len(batch) == 1:
        chunk = batch[0]
        return ChunkData(chunk.kind, chunk.shape, chunk_index(kind, position),
                         op=chunk.op if chunk.op is not None else None,
                         dtype=chunk.dtype, columns=chunk.columns,
                         key=chunk.key)
    op = ConcatChunks()
    rows = 0
    unknown = False
    for chunk in batch:
        if chunk.shape and chunk.shape[0] is not None:
            rows += chunk.shape[0]
        else:
            unknown = True
    shape: tuple
    if batch[0].kind == "dataframe":
        cols = batch[0].shape[1] if len(batch[0].shape) > 1 else None
        shape = (None if unknown else rows, cols)
    else:
        shape = (None if unknown else rows,)
    return op.new_chunk(batch, batch[0].kind, shape,
                        chunk_index(kind, position),
                        dtype=batch[0].dtype, columns=batch[0].columns)


def align_rows(ctx: TileContext, chunk_lists: list[list[ChunkData]],
               kinds: list[str]):
    """Align several tileables' chunks to a common row partitioning.

    A generator (usable with ``yield from``): when chunk counts differ and
    row extents are unknown, it yields the chunks for execution first
    (dynamic tiling), then rebuilds the smaller-granularity side.

    Returns (via StopIteration value) the aligned ``chunk_lists``.
    """
    counts = {len(chunks) for chunks in chunk_lists}
    if len(counts) == 1:
        splits = [known_splits(ctx, chunks) for chunks in chunk_lists]
        known = [s for s in splits if s is not None]
        if len(known) <= 1 or all(s == known[0] for s in known):
            return chunk_lists

    if not ctx.config.dynamic_tiling:
        raise TilingError(
            "cannot align differently-partitioned inputs without dynamic tiling"
        )
    flat = [c for chunks in chunk_lists for c in chunks]
    pending = [c for c, n in zip(flat, row_counts(ctx, flat)) if n is None]
    if pending:
        yield pending
    splits = [known_splits(ctx, chunks) for chunks in chunk_lists]
    if any(s is None for s in splits):
        raise TilingError("row extents still unknown after execution")
    target = splits[0]
    aligned = [chunk_lists[0]]
    for chunks, split in zip(chunk_lists[1:], splits[1:]):
        if split == target:
            aligned.append(chunks)
        else:
            if sum(split) != sum(target):
                raise TilingError(
                    f"cannot align inputs of {sum(split)} and {sum(target)} rows"
                )
            aligned.append(_repartition(chunks, split, target,
                                        kinds[len(aligned)]))
    return aligned


def _repartition(chunks: list[ChunkData], splits: list[int],
                 target: list[int], kind: str) -> list[ChunkData]:
    """Cut ``chunks`` (with known ``splits``) into the ``target`` layout."""
    out: list[ChunkData] = []
    src = 0          # current source chunk
    offset = 0       # consumed rows of the current source chunk
    for position, need in enumerate(target):
        pieces: list[ChunkData] = []
        remaining = need
        while remaining > 0:
            available = splits[src] - offset
            take = min(available, remaining)
            if take == splits[src] and offset == 0:
                pieces.append(chunks[src])
            else:
                op = SliceRows(start=offset, stop=offset + take)
                pieces.append(op.new_chunk(
                    [chunks[src]], chunks[src].kind,
                    _sliced_shape(chunks[src], take),
                    chunk_index(kind, position),
                    dtype=chunks[src].dtype, columns=chunks[src].columns,
                ))
            offset += take
            remaining -= take
            if offset >= splits[src]:
                src += 1
                offset = 0
        if len(pieces) == 1:
            out.append(pieces[0])
        else:
            concat_op = ConcatChunks()
            out.append(concat_op.new_chunk(
                pieces, pieces[0].kind, _sliced_shape(pieces[0], need),
                chunk_index(kind, position),
                dtype=pieces[0].dtype, columns=pieces[0].columns,
            ))
    return out


def _sliced_shape(chunk: ChunkData, rows: int) -> tuple:
    if chunk.kind == "dataframe":
        cols = chunk.shape[1] if len(chunk.shape) > 1 else None
        return (rows, cols)
    return (rows,)


def nsplits_from_chunks(ctx: TileContext, chunks: Sequence[ChunkData],
                        kind: str, n_cols: Optional[int] = None) -> tuple:
    """Build the output ``nsplits`` tuple from (possibly unknown) chunks."""
    rows = tuple(row_counts(ctx, chunks))
    if kind == "dataframe":
        return (rows, (n_cols,))
    return (rows,)


def concat_values(values: list) -> DataFrame | Series:
    """Concatenate executed chunk values (frames or series)."""
    if len(values) == 1:
        return values[0]
    return concat(values)
