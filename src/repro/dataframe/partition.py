"""Shuffle partition kernels — moved behind the chunk-engine seam.

The kernels now live in :mod:`repro.engine.partition` (they are the
row-space reference implementation every backend must match draw for
draw); this module re-exports them so existing operator code and tests
keep their import path.
"""

from __future__ import annotations

from ..engine.partition import (
    _assign_range_scalar,
    assign_hash_partitions,
    assign_range_partitions,
    split_by_assignment,
)

__all__ = [
    "_assign_range_scalar",
    "assign_hash_partitions",
    "assign_range_partitions",
    "split_by_assignment",
]
