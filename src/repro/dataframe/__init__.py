"""``repro.dataframe`` — the distributed DataFrame (``xorbits.pandas``
equivalent): drop-in pandas-style API executed by the tiling engine."""

from .core import (
    DataFrame,
    DistGroupBy,
    Remote,
    Scalar,
    Series,
    concat,
    from_dict,
    from_frame,
    read_csv,
    read_parquet,
    run,
)

__all__ = [
    "DataFrame",
    "DistGroupBy",
    "Remote",
    "Scalar",
    "Series",
    "concat",
    "from_dict",
    "from_frame",
    "read_csv",
    "read_parquet",
    "run",
]
