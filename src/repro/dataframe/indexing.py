"""Row selection operators: boolean filtering, positional ``iloc``, head.

``iloc`` after a filter is the paper's canonical iterative-tiling example
(Fig. 3c): which chunk holds the tenth row of a filtered frame is
unknowable before execution, so tiling yields the filtered chunks, reads
their real lengths from the meta service, and appends a positional-slice
operator to exactly the chunk(s) involved.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..errors import TilingError
from ..utils import cumulative_offsets, locate_in_splits
from .utils import (
    align_rows,
    auto_merge_chunks,
    chunk_index,
    known_splits,
    nsplits_from_chunks,
    row_count,
)


class Filter(Operator):
    """Boolean-mask row filtering: ``df[mask]`` / ``series[mask]``.

    A non-static operator: output chunk lengths are unknown until the
    masks execute.
    """

    def __init__(self, out_kind: str, out_columns: Optional[list] = None,
                 out_dtype=None, out_name=None, **params):
        super().__init__(**params)
        self.out_kind = out_kind
        self.out_columns = out_columns
        self.out_dtype = out_dtype
        self.out_name = out_name

    def input_column_requirements(self, required):
        return [required, None]  # the mask series has no columns

    def tile(self, ctx: TileContext):
        data_chunks = list(self.inputs[0].chunks)
        mask_chunks = list(self.inputs[1].chunks)
        aligned = yield from align_rows(
            ctx, [data_chunks, mask_chunks],
            [self.inputs[0].kind, self.inputs[1].kind],
        )
        data_chunks, mask_chunks = aligned
        n_cols = len(self.out_columns) if self.out_columns is not None else None
        out_chunks = []
        for i, (data, mask) in enumerate(zip(data_chunks, mask_chunks)):
            chunk_op = FilterChunk()
            shape = ((None, n_cols) if self.out_kind == "dataframe" else (None,))
            out_chunks.append(chunk_op.new_chunk(
                [data, mask], self.out_kind, shape,
                chunk_index(self.out_kind, i),
                dtype=self.out_dtype, columns=self.out_columns,
                name=self.out_name,
            ))
        nsplits = nsplits_from_chunks(ctx, out_chunks, self.out_kind, n_cols)
        return [(out_chunks, nsplits)]


class FilterChunk(Operator):
    is_elementwise = True
    fuse_expr = "{0}[{1}]"

    def execute(self, ctx: ExecContext):
        data = ctx.get(self.inputs[0].key)
        mask = ctx.get(self.inputs[1].key)
        return data[mask]


class ILocRows(Operator):
    """Positional row selection on a distributed frame.

    ``item`` is an int (one row → series of that row / scalar for series)
    or a slice. When upstream chunk lengths are unknown, dynamic tiling
    executes them first (iterative tiling).
    """

    def __init__(self, item, out_kind: str, out_columns: Optional[list] = None,
                 out_dtype=None, out_name=None, **params):
        super().__init__(**params)
        self.item = item
        self.out_kind = out_kind
        self.out_columns = out_columns
        self.out_dtype = out_dtype
        self.out_name = out_name

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        splits = known_splits(ctx, chunks)
        if splits is None:
            if ctx.config.dynamic_tiling:
                # iterative tiling: run upstream, learn the real lengths
                yield chunks
                splits = known_splits(ctx, chunks)
                if splits is None:
                    raise TilingError("chunk lengths unknown after execution")
            else:
                # static fallback: funnel everything into one chunk first —
                # the naive plan the paper contrasts against
                from .utils import ConcatChunks

                concat_op = ConcatChunks()
                shape = (
                    (None, len(self.out_columns) if self.out_columns else None)
                    if self.inputs[0].kind == "dataframe" else (None,)
                )
                merged = concat_op.new_chunk(
                    chunks, self.inputs[0].kind, shape, chunk_index(
                        self.inputs[0].kind, 0
                    ),
                    columns=self.inputs[0].columns,
                )
                chunks = [merged]
                splits = None

        if isinstance(self.item, (int, np.integer)):
            return self._tile_single_row(ctx, chunks, splits)
        if isinstance(self.item, slice):
            return self._tile_slice(ctx, chunks, splits)
        raise TilingError(f"unsupported iloc argument {self.item!r}")

    def _tile_single_row(self, ctx: TileContext, chunks, splits):
        position = int(self.item)
        index = () if self.out_kind == "scalar" else (0,)
        if splits is None:
            chunk_op = ILocChunk(item=position)
            out = chunk_op.new_chunk(
                chunks, self.out_kind, (), index,
                dtype=self.out_dtype, name=self.out_name,
            )
            return [([out], ((),))]
        total = sum(splits)
        if position < 0:
            position += total
        if not 0 <= position < total:
            raise IndexError(f"iloc position {self.item} out of bounds ({total} rows)")
        chunk_idx, offset = locate_in_splits(position, splits)
        chunk_op = ILocChunk(item=offset)
        shape = (
            (len(self.out_columns),)
            if self.out_kind == "series" and self.out_columns else ()
        )
        out = chunk_op.new_chunk(
            [chunks[chunk_idx]], self.out_kind, shape, index,
            dtype=self.out_dtype, name=self.out_name,
        )
        nsplits = ((shape[0],),) if shape else ((),)
        return [([out], nsplits)]

    def _tile_slice(self, ctx: TileContext, chunks, splits):
        sl: slice = self.item
        if sl.step is not None and sl.step != 1:
            raise TilingError("iloc slices with a step are not supported")
        if splits is None:
            chunk_op = ILocChunk(item=sl)
            n_cols = len(self.out_columns) if self.out_columns else None
            shape = (None, n_cols) if self.out_kind == "dataframe" else (None,)
            out = chunk_op.new_chunk(
                chunks, self.out_kind, shape, chunk_index(self.out_kind, 0),
                dtype=self.out_dtype, columns=self.out_columns,
                name=self.out_name,
            )
            return [([out], nsplits_from_chunks(ctx, [out], self.out_kind, n_cols))]
        total = sum(splits)
        start, stop, _ = sl.indices(total)
        offsets = cumulative_offsets(splits)
        out_chunks = []
        n_cols = len(self.out_columns) if self.out_columns else None
        for i, chunk in enumerate(chunks):
            lo, hi = offsets[i], offsets[i + 1]
            take_lo, take_hi = max(start, lo), min(stop, hi)
            if take_lo >= take_hi:
                continue
            local = slice(take_lo - lo, take_hi - lo)
            if local == slice(0, hi - lo):
                # whole chunk passes through untouched
                out_chunks.append(_reindexed(chunk, self.out_kind, len(out_chunks)))
                continue
            chunk_op = ILocChunk(item=local)
            rows = take_hi - take_lo
            shape = (rows, n_cols) if self.out_kind == "dataframe" else (rows,)
            out_chunks.append(chunk_op.new_chunk(
                [chunk], self.out_kind, shape,
                chunk_index(self.out_kind, len(out_chunks)),
                dtype=self.out_dtype, columns=self.out_columns,
                name=self.out_name,
            ))
        if not out_chunks:
            chunk_op = ILocChunk(item=slice(0, 0))
            shape = (0, n_cols) if self.out_kind == "dataframe" else (0,)
            out_chunks.append(chunk_op.new_chunk(
                [chunks[0]], self.out_kind, shape,
                chunk_index(self.out_kind, 0),
                dtype=self.out_dtype, columns=self.out_columns,
                name=self.out_name,
            ))
        return [(out_chunks,
                 nsplits_from_chunks(ctx, out_chunks, self.out_kind, n_cols))]


def _reindexed(chunk, kind: str, position: int):
    """A pass-through view of a chunk at a new output position."""
    from ..graph.entity import ChunkData

    return ChunkData(chunk.kind, chunk.shape, chunk_index(kind, position),
                     op=chunk.op, dtype=chunk.dtype, columns=chunk.columns,
                     key=chunk.key)


class ILocChunk(Operator):
    """Local positional selection inside one chunk."""

    is_lightweight = True

    def execute(self, ctx: ExecContext):
        if len(self.inputs) > 1:
            from ..engine.local import concat

            value = concat([ctx.get(c.key) for c in self.inputs])
        else:
            value = ctx.get(self.inputs[0].key)
        return value.iloc[self.params["item"]]
