"""Distributed cumulative operations (prefix scans).

``cumsum`` over row chunks needs every earlier chunk's total before a
chunk can finish — the classic three-stage scan: per-chunk reduce,
exclusive prefix over the (tiny) partials on one node, then a per-chunk
local scan shifted by its offset. Another operator family the paper's
"pandas semantics preserved" claim needs (ordering-aware, like ``iloc``).
"""

from __future__ import annotations

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..engine.local import Series
from .utils import chunk_index, nsplits_from_chunks, row_count, row_counts

_SCANS = {
    "cumsum": (lambda s: s.sum(), lambda s: s.cumsum(), 0.0),
    "cummax": (lambda s: s.max(), lambda s: s.cummax(), -np.inf),
    "cummin": (lambda s: s.min(), lambda s: s.cummin(), np.inf),
}


def _combine(how: str, offset: float, value):
    if how == "cumsum":
        return value + offset
    if how == "cummax":
        return np.maximum(value, offset)
    return np.minimum(value, offset)


class CumScan(Operator):
    """Tileable-level cumulative op over a distributed series."""

    def __init__(self, how: str, **params):
        super().__init__(**params)
        if how not in _SCANS:
            raise ValueError(f"unsupported scan {how!r}")
        self.how = how

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        name = self.inputs[0].name
        if len(chunks) == 1:
            op = CumScanApply(how=self.how, position=0)
            out = op.new_chunk([chunks[0]], "series",
                               (row_count(ctx, chunks[0]),), (0,), name=name)
            return [([out], nsplits_from_chunks(ctx, [out], "series"))]

        partials = []
        for i, chunk in enumerate(chunks):
            op = CumScanPartial(how=self.how)
            partials.append(op.new_chunk([chunk], "scalar", (), ()))
        offsets_op = CumScanOffsets(how=self.how)
        offsets = offsets_op.new_chunk(partials, "scalar", (), ())
        out_chunks = []
        in_rows = row_counts(ctx, chunks)
        for i, chunk in enumerate(chunks):
            op = CumScanApply(how=self.how, position=i)
            out_chunks.append(op.new_chunk(
                [chunk, offsets], "series", (in_rows[i],),
                chunk_index("series", i), name=name,
            ))
        return [(out_chunks, nsplits_from_chunks(ctx, out_chunks, "series"))]


class CumScanPartial(Operator):
    def __init__(self, how: str, **params):
        super().__init__(**params)
        self.how = how

    def execute(self, ctx: ExecContext):
        reduce_fn, _, __ = _SCANS[self.how]
        return float(reduce_fn(ctx.get(self.inputs[0].key)))


class CumScanOffsets(Operator):
    """Exclusive prefix combine of the per-chunk partials (tiny)."""

    def __init__(self, how: str, **params):
        super().__init__(**params)
        self.how = how

    def execute(self, ctx: ExecContext):
        _, __, identity = _SCANS[self.how]
        partials = [ctx.get(c.key) for c in self.inputs]
        offsets = [identity]
        for value in partials[:-1]:
            offsets.append(float(_combine(self.how, offsets[-1], value)))
        return np.asarray(offsets, dtype=np.float64)


class CumScanApply(Operator):
    def __init__(self, how: str, position: int, **params):
        super().__init__(**params)
        self.how = how
        self.position = position

    def execute(self, ctx: ExecContext):
        series: Series = ctx.get(self.inputs[0].key)
        _, scan_fn, identity = _SCANS[self.how]
        local = scan_fn(series)
        if len(self.inputs) == 1:
            return local
        offsets = ctx.get(self.inputs[1].key)
        offset = float(offsets[self.position])
        if offset == identity:
            return local
        values = _combine(self.how, offset,
                          np.asarray(local.values, dtype=np.float64))
        return Series(values, index=local.index, name=local.name)
