"""Distributed merge (join) with dynamically selected strategy.

The paper's TPCx-AI UC10 story (Fig. 8a): joining a tiny customer table
with a huge, key-skewed transaction table. Engines that hash-shuffle both
sides by join key send every hot-key row to one partition — one worker
does all the work (or dies of OOM). Xorbits' dynamic tiling executes the
first chunks, sees one side is small, and *broadcasts* it to every chunk
of the large side instead; when both sides are large it falls back to a
range-partitioned shuffle with boundaries sampled from real data.

With dynamic tiling disabled this operator reproduces the baseline
behaviour: a static hash shuffle into as many partitions as input chunks.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..engine.local import DataFrame, concat, merge as frame_merge
from ..graph.entity import ChunkData
from ..utils import new_key
from .utils import ConcatChunks, chunk_index, nsplits_from_chunks, spread_sample


def _estimate_total(ctx: TileContext, chunks: list[ChunkData]) -> float:
    """Estimated total bytes of a side from whatever metadata exists."""
    known = ctx.chunk_nbytes_many(chunks, default=-1)
    observed = [n for n in known if n >= 0]
    if not observed:
        return float("inf")
    mean = sum(observed) / len(observed)
    return sum(n if n >= 0 else mean for n in known)


class Merge(Operator):
    """Tileable-level merge of two distributed dataframes."""

    def __init__(self, how: str, left_on: Sequence, right_on: Sequence,
                 suffixes: tuple = ("_x", "_y"),
                 out_columns: Optional[list] = None, **params):
        super().__init__(**params)
        self.how = how
        self.left_on = list(left_on)
        self.right_on = list(right_on)
        self.suffixes = tuple(suffixes)
        self.out_columns = out_columns

    def input_column_requirements(self, required):
        if required is None:
            return [None, None]
        required = set(required)
        left_req = set(self.left_on)
        right_req = set(self.right_on)
        # a required output column may come from either side (suffix-free
        # resolution is conservative: ask both sides for the base name)
        for name in required:
            base = name
            for suffix in self.suffixes:
                if suffix and isinstance(name, str) and name.endswith(suffix):
                    base = name[: -len(suffix)]
            left_req.add(base)
            right_req.add(base)
        return [sorted(left_req, key=str), sorted(right_req, key=str)]

    # -- tiling --------------------------------------------------------------
    def tile(self, ctx: TileContext):
        left_chunks = list(self.inputs[0].chunks)
        right_chunks = list(self.inputs[1].chunks)

        if ctx.config.dynamic_tiling:
            sample = (left_chunks[: ctx.config.sample_chunks]
                      + right_chunks[: ctx.config.sample_chunks])
            pending = [c for c, meta in zip(sample, ctx.chunk_metas(sample))
                       if meta is None]
            if pending:
                yield pending
            left_est = _estimate_total(ctx, left_chunks)
            right_est = _estimate_total(ctx, right_chunks)
            threshold = ctx.config.chunk_store_limit

            if right_est <= threshold and self.how in ("inner", "left"):
                out_chunks = self._tile_broadcast(
                    ctx, left_chunks, right_chunks, broadcast_right=True
                )
            elif left_est <= threshold and self.how in ("inner", "right"):
                out_chunks = self._tile_broadcast(
                    ctx, right_chunks, left_chunks, broadcast_right=False
                )
            else:
                boundaries = yield from self._sampled_boundaries(
                    ctx, left_chunks, right_chunks, left_est + right_est
                )
                out_chunks = self._tile_shuffle(
                    left_chunks, right_chunks, boundaries, hash_mode=False
                )
        else:
            # static plan: hash-shuffle both sides, one partition per
            # large-side chunk — the skew-prone baseline strategy
            n_parts = max(len(left_chunks), len(right_chunks))
            out_chunks = self._tile_shuffle(
                left_chunks, right_chunks, n_parts, hash_mode=True
            )

        n_cols = len(self.out_columns) if self.out_columns is not None else None
        return [(out_chunks,
                 nsplits_from_chunks(ctx, out_chunks, "dataframe", n_cols))]

    # -- broadcast strategy ------------------------------------------------------
    def _tile_broadcast(self, ctx: TileContext, big: list[ChunkData],
                        small: list[ChunkData], broadcast_right: bool):
        if len(small) == 1:
            small_all = small[0]
        else:
            concat_op = ConcatChunks()
            small_all = concat_op.new_chunk(
                small, "dataframe", (None, small[0].shape[-1]),
                chunk_index("dataframe", 0), columns=small[0].columns,
            )
        out_chunks = []
        for i, chunk in enumerate(big):
            merge_op = MergeChunk(
                how=self.how, left_on=self.left_on, right_on=self.right_on,
                suffixes=self.suffixes, swapped=not broadcast_right,
            )
            inputs = [chunk, small_all]
            out_chunks.append(merge_op.new_chunk(
                inputs, "dataframe", (None, None),
                chunk_index("dataframe", i), columns=self.out_columns,
            ))
        return out_chunks

    # -- shuffle strategy ----------------------------------------------------------
    def _sampled_boundaries(self, ctx: TileContext, left_chunks, right_chunks,
                            est_bytes: float):
        """Range boundaries for the shuffle, sampled from executed chunks."""
        # Boundaries need rows from EVERY chunk of both sides: join keys
        # are often laid out contiguously across chunks (generated ids),
        # so quantiles over a few chunks leave giant unsampled key spans
        # that funnel into single partitions. Like the sort operator (and
        # Spark's RangePartitioner), run the inputs and sample each chunk.
        sample = [(chunk, self.left_on[0]) for chunk in left_chunks] \
            + [(chunk, self.right_on[0]) for chunk in right_chunks]
        pending = [c for c, _ in sample if not ctx.has_value(c.key)]
        if pending:
            yield pending
        per_chunk = max(4000 // max(len(sample), 1), 20)
        collected: list = []
        for chunk, key in sample:
            frame = ctx.peek(chunk.key)
            if key in frame.columns.to_list():
                values = frame[key].values
                if len(values) > per_chunk:
                    stride = max(len(values) // per_chunk, 1)
                    values = values[::stride]
                collected.extend(
                    v for v in values.tolist() if v is not None
                )
        # a reducer holds both sides' partitions plus the join output,
        # which is wider than either input: size partitions for ~3x the
        # input bytes so a reducer's working set stays near one chunk
        n_parts = int(np.clip(
            math.ceil(3.0 * est_bytes / ctx.config.chunk_store_limit),
            2, 4 * ctx.config.cluster.n_bands,
        ))
        if not collected:
            return n_parts  # degenerate: fall back to hash partitioning
        collected.sort()
        cuts: list = []
        for r in range(1, n_parts):
            cut = collected[min(
                int(len(collected) * r / n_parts), len(collected) - 1
            )]
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)  # duplicates would leave empty ranges
        if not cuts:
            return n_parts
        return cuts

    def _tile_shuffle(self, left_chunks, right_chunks, boundaries,
                      hash_mode: bool):
        if isinstance(boundaries, int):  # degenerate sampled case
            n_parts, boundaries, hash_mode = boundaries, [], True
        elif hash_mode:
            n_parts, boundaries = int(boundaries), []
        else:
            n_parts = len(boundaries) + 1
        left_parts = self._partition_side(
            left_chunks, self.left_on[0], boundaries, n_parts, hash_mode, 0
        )
        right_parts = self._partition_side(
            right_chunks, self.right_on[0], boundaries, n_parts, hash_mode, 1
        )
        out_chunks = []
        for r in range(n_parts):
            merge_op = MergeChunk(
                how=self.how, left_on=self.left_on, right_on=self.right_on,
                suffixes=self.suffixes, swapped=False,
                n_left=len(left_parts[r]),
            )
            inputs = left_parts[r] + right_parts[r]
            out_chunks.append(merge_op.new_chunk(
                inputs, "dataframe", (None, None),
                chunk_index("dataframe", r), columns=self.out_columns,
            ))
        return out_chunks

    def _partition_side(self, chunks, key, boundaries, n_parts,
                        hash_mode, side):
        partitions: list[list[ChunkData]] = [[] for _ in range(n_parts)]
        shuffle_id = new_key("shuffle")  # one dataset per shuffled side
        for m, chunk in enumerate(chunks):
            part_op = MergePartition(
                key=key, boundaries=boundaries, n_parts=n_parts,
                hash_mode=hash_mode, shuffle_id=shuffle_id,
            )
            specs = [
                {"kind": "dataframe", "shape": (None, None),
                 "index": (m, r)}
                for r in range(n_parts)
            ]
            outs = part_op.new_chunks([chunk], specs)
            for r, out in enumerate(outs):
                partitions[r].append(out)
        return partitions

    def execute(self, ctx: ExecContext):  # tileable-level op never executes
        raise NotImplementedError


class MergePartition(Operator):
    """Shuffle-map for merge: split one side's chunk into partitions."""

    is_shuffle_map = True

    def __init__(self, key, boundaries: list, n_parts: int, hash_mode: bool,
                 shuffle_id: str | None = None, **params):
        super().__init__(**params)
        self.key = key
        self.boundaries = boundaries
        self.n_parts = n_parts
        self.hash_mode = hash_mode
        self.shuffle_id = shuffle_id

    def execute(self, ctx: ExecContext):
        engine = ctx.engine
        value = ctx.get_physical(self.inputs[0].key)
        vectorized = ctx.config.vectorized_shuffle
        if self.hash_mode:
            assignment = engine.hash_partition(
                value, self.key, self.n_parts, vectorized=vectorized
            )
        else:
            assignment = engine.range_partition(
                value, self.key, self.boundaries, vectorized=vectorized
            )
        parts = engine.split(
            value, assignment, self.n_parts, vectorized=vectorized
        )
        return {chunk.key: parts[r] for r, chunk in enumerate(self.outputs)}


class MergeChunk(Operator):
    """Local merge of co-partitioned (or broadcast) chunk pairs."""

    def __init__(self, how: str, left_on, right_on, suffixes,
                 swapped: bool = False, n_left: int | None = None, **params):
        super().__init__(**params)
        self.how = how
        self.left_on = list(left_on)
        self.right_on = list(right_on)
        self.suffixes = tuple(suffixes)
        self.swapped = swapped
        self.n_left = n_left

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        if self.n_left is not None:
            left_parts = values[: self.n_left]
            right_parts = values[self.n_left:]
            left = concat(left_parts, ignore_index=True) if len(left_parts) > 1 \
                else left_parts[0]
            right = concat(right_parts, ignore_index=True) if len(right_parts) > 1 \
                else right_parts[0]
        elif self.swapped:
            right, left = values[0], values[1]
        else:
            left, right = values[0], values[1]
        same = self.left_on == self.right_on
        return frame_merge(
            left, right,
            how=self.how,
            on=self.left_on if same else None,
            left_on=None if same else self.left_on,
            right_on=None if same else self.right_on,
            suffixes=self.suffixes,
        )
