"""User-facing distributed DataFrame and Series.

Drop-in mirrors of the single-node API (Listing 2 of the paper): the same
method names and semantics as ``repro.frame`` (standing in for pandas),
built lazily as tileable-graph nodes and materialized on demand —
*deferred evaluation*: ``repr``, ``len`` and friends trigger execution
without an explicit ``.compute()``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from ..core.session import Session, get_default_session
from ..engine.local import DataFrame as LocalFrame, Series as LocalSeries
from ..engine.local import _how_name
from ..graph.entity import TileableData
from .arithmetic import Elementwise, MapPartitions, build_elementwise
from .datasource import FromFrame, ReadCSV, ReadParquet
from .groupby import DISTRIBUTABLE, GroupByAgg, normalize_agg_spec
from .indexing import Filter, ILocRows
from .merge import Merge
from .misc import DropDuplicates, GatherApply, UniqueValues
from .reduction import DataFrameReduction, SeriesReduction
from .sort import SortValues


class Remote:
    """Shared behaviour of every deferred distributed object."""

    def __init__(self, data: TileableData, session: Session | None = None):
        self.data = data
        self._session = session

    @property
    def session(self) -> Session:
        return self._session if self._session is not None else get_default_session()

    def execute(self):
        """Force materialization; returns self (chainable)."""
        self.session.execute(self.data)
        self._refresh_shapes()
        return self

    def fetch(self):
        """Materialize (if needed) and return the full local value."""
        if not self.session.is_materialized(self.data):
            self.execute()
        return self.session.fetch(self.data)

    def cache(self):
        """Mark this object's results for the cluster result cache.

        With ``config.result_cache`` on, the chunks are recorded as
        *explicit* cache entries — kept across runs regardless of the
        cache's byte budget — so any later computation with the same
        lineage reuses them instead of recomputing. Returns self
        (chainable); a no-op while the cache is disabled.
        """
        self.data.cache_requested = True
        return self

    def _refresh_shapes(self) -> None:
        meta = self.session.meta
        for chunk in self.data.chunks:
            chunk_meta = meta.get(chunk.key)
            if chunk_meta is not None:
                chunk.shape = tuple(chunk_meta.shape)
        self.data.refresh_from_chunks()

    def __repr__(self) -> str:  # deferred evaluation (Section IV-C)
        return repr(self.fetch())

    def _wrap(self, data: TileableData):
        raise NotImplementedError


def run(*objects: "Remote") -> None:
    """Explicitly materialize objects now (``xorbits.run`` equivalent)."""
    if not objects:
        return
    session = objects[0].session
    session.execute(*[obj.data for obj in objects])
    for obj in objects:
        obj._refresh_shapes()


class Scalar(Remote):
    """A deferred scalar (reduction result)."""

    def __float__(self) -> float:
        return float(self.fetch())

    def __int__(self) -> int:
        return int(self.fetch())

    def __bool__(self) -> bool:
        return bool(self.fetch())

    def __eq__(self, other) -> bool:  # pragma: no cover - convenience
        return self.fetch() == other

    def __hash__(self):
        return id(self)


class Series(Remote):
    """Distributed 1-D column."""

    @property
    def name(self):
        return self.data.name

    @property
    def shape(self) -> tuple:
        if not self.data.has_known_shape:
            self.execute()
        return self.data.shape

    def __len__(self) -> int:
        return int(self.shape[0])

    # -- construction helpers ----------------------------------------------
    def _elementwise(self, func: Callable, other: Optional["Series"] = None,
                     out_dtype=None, name=None) -> "Series":
        inputs = [self.data] + ([other.data] if other is not None else [])
        rows = self.data.shape[0] if self.data.shape else None
        out = build_elementwise(
            inputs, func, "series", (rows,), out_dtype=out_dtype,
            out_name=name if name is not None else self.data.name,
        )
        return Series(out, self._session)

    def _binop(self, other, func2, funcs) -> "Series":
        if isinstance(other, Series):
            return self._elementwise(func2, other)
        return self._elementwise(lambda s: funcs(s, other))

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other):
        return self._binop(other, lambda a, b: a + b, lambda s, o: s + o)

    def __radd__(self, other):
        return self._elementwise(lambda s: other + s)

    def __sub__(self, other):
        return self._binop(other, lambda a, b: a - b, lambda s, o: s - o)

    def __rsub__(self, other):
        return self._elementwise(lambda s: other - s)

    def __mul__(self, other):
        return self._binop(other, lambda a, b: a * b, lambda s, o: s * o)

    def __rmul__(self, other):
        return self._elementwise(lambda s: other * s)

    def __truediv__(self, other):
        return self._binop(other, lambda a, b: a / b, lambda s, o: s / o)

    def __rtruediv__(self, other):
        return self._elementwise(lambda s: other / s)

    def __floordiv__(self, other):
        return self._binop(other, lambda a, b: a // b, lambda s, o: s // o)

    def __mod__(self, other):
        return self._binop(other, lambda a, b: a % b, lambda s, o: s % o)

    def __pow__(self, other):
        return self._binop(other, lambda a, b: a ** b, lambda s, o: s ** o)

    def __neg__(self):
        return self._elementwise(lambda s: -s)

    def abs(self):
        return self._elementwise(lambda s: s.abs())

    def round(self, decimals: int = 0):
        return self._elementwise(lambda s: s.round(decimals))

    def clip(self, lower=None, upper=None):
        return self._elementwise(lambda s: s.clip(lower, upper))

    # -- comparisons -------------------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return self._binop(other, lambda a, b: a == b, lambda s, o: s == o)

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(other, lambda a, b: a != b, lambda s, o: s != o)

    def __lt__(self, other):
        return self._binop(other, lambda a, b: a < b, lambda s, o: s < o)

    def __le__(self, other):
        return self._binop(other, lambda a, b: a <= b, lambda s, o: s <= o)

    def __gt__(self, other):
        return self._binop(other, lambda a, b: a > b, lambda s, o: s > o)

    def __ge__(self, other):
        return self._binop(other, lambda a, b: a >= b, lambda s, o: s >= o)

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return self._binop(other, lambda a, b: a & b, lambda s, o: s & o)

    def __or__(self, other):
        return self._binop(other, lambda a, b: a | b, lambda s, o: s | o)

    def __invert__(self):
        return self._elementwise(lambda s: ~s)

    # -- selection ------------------------------------------------------------------
    def __getitem__(self, item):
        if isinstance(item, Series):
            op = Filter(out_kind="series", out_name=self.data.name)
            out = op.new_tileable([self.data, item.data], "series", (None,),
                                  name=self.data.name)
            return Series(out, self._session)
        raise TypeError(f"unsupported series selection {item!r}")

    @property
    def iloc(self) -> "_SeriesILoc":
        return _SeriesILoc(self)

    def head(self, n: int = 5) -> "Series":
        op = ILocRows(slice(0, n), out_kind="series", out_name=self.data.name)
        out = op.new_tileable([self.data], "series", (None,),
                              name=self.data.name)
        return Series(out, self._session)

    # -- transforms --------------------------------------------------------------------
    def isna(self):
        return self._elementwise(lambda s: s.isna())

    def notna(self):
        return self._elementwise(lambda s: s.notna())

    def fillna(self, value):
        return self._elementwise(lambda s: s.fillna(value))

    def dropna(self):
        op = MapPartitions(func=lambda s: s.dropna(), out_kind="series")
        out = op.new_tileable([self.data], "series", (None,),
                              name=self.data.name)
        return Series(out, self._session)

    def astype(self, dtype):
        return self._elementwise(lambda s: s.astype(dtype))

    def isin(self, values):
        lookup = list(values)
        return self._elementwise(lambda s: s.isin(lookup))

    def between(self, left, right, inclusive: str = "both"):
        return self._elementwise(lambda s: s.between(left, right, inclusive))

    def where(self, cond: "Series", other=np.nan):
        return self._elementwise(lambda s, c: s.where(c, other), cond)

    def map(self, mapper):
        return self._elementwise(lambda s: s.map(mapper))

    def apply(self, func):
        return self._elementwise(lambda s: s.apply(func))

    @property
    def str(self) -> "_StrAccessor":
        return _StrAccessor(self)

    @property
    def dt(self) -> "_DtAccessor":
        return _DtAccessor(self)

    def to_frame(self, name=None) -> "DataFrame":
        col = name if name is not None else (self.data.name or 0)
        rows = self.data.shape[0] if self.data.shape else None
        out = build_elementwise(
            [self.data], lambda s: s.to_frame(col), "dataframe",
            (rows, 1), out_columns=[col],
        )
        return DataFrame(out, self._session)

    def rename(self, name) -> "Series":
        return self._elementwise(lambda s: s.rename(name), name=name)

    # -- reductions ------------------------------------------------------------------------
    def _reduce(self, how: str) -> Scalar:
        op = SeriesReduction(how=how)
        out = op.new_tileable([self.data], "scalar", ())
        return Scalar(out, self._session)

    def sum(self):
        return self._reduce("sum")

    def mean(self):
        return self._reduce("mean")

    def min(self):
        return self._reduce("min")

    def max(self):
        return self._reduce("max")

    def count(self):
        return self._reduce("count")

    def nunique(self):
        return self._reduce("nunique")

    def var(self):
        return self._reduce("var")

    def std(self):
        return self._reduce("std")

    def median(self):
        return self._reduce("median")

    def prod(self):
        return self._reduce("prod")

    def any(self):
        return self._reduce("any")

    def all(self):
        return self._reduce("all")

    def _scan(self, how: str) -> "Series":
        from .scan import CumScan

        op = CumScan(how=how)
        rows = self.data.shape[0] if self.data.shape else None
        out = op.new_tileable([self.data], "series", (rows,),
                              name=self.data.name)
        return Series(out, self._session)

    def cumsum(self) -> "Series":
        return self._scan("cumsum")

    def cummax(self) -> "Series":
        return self._scan("cummax")

    def cummin(self) -> "Series":
        return self._scan("cummin")

    def quantile(self, q: float = 0.5) -> Scalar:
        op = GatherApply(func=lambda s: s.quantile(q), out_kind="scalar")
        out = op.new_tileable([self.data], "scalar", ())
        return Scalar(out, self._session)

    def describe(self) -> "Series":
        op = GatherApply(
            func=lambda s: s.to_frame("v").describe()["v"],
            out_kind="series",
        )
        out = op.new_tileable([self.data], "series", (8,))
        return Series(out, self._session)

    def unique(self) -> np.ndarray:
        op = UniqueValues()
        out = op.new_tileable([self.data], "tensor", (None,))
        session = self.session
        session.execute(out)
        return session.fetch(out)

    def value_counts(self, ascending: bool = False) -> "Series":
        name = self.data.name if self.data.name is not None else "value"
        frame = self.to_frame(name)
        grouped = frame.groupby(name).agg(count=(name, "size"))
        ordered = grouped.sort_values("count", ascending=ascending)
        return ordered["count"]

    def sort_values(self, ascending: bool = True) -> "Series":
        name = self.data.name if self.data.name is not None else 0
        frame = self.to_frame(name).sort_values(name, ascending=ascending)
        return frame[name]

    def groupby(self, by):
        raise NotImplementedError(
            "series.groupby: group via a DataFrame, e.g. df.groupby(key)[col]"
        )


class _SeriesILoc:
    def __init__(self, series: Series):
        self._series = series

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            op = ILocRows(int(item), out_kind="scalar")
            out = op.new_tileable([self._series.data], "scalar", ())
            return Scalar(out, self._series._session).fetch()
        if isinstance(item, slice):
            op = ILocRows(item, out_kind="series",
                          out_name=self._series.data.name)
            out = op.new_tileable([self._series.data], "series", (None,),
                                  name=self._series.data.name)
            return Series(out, self._series._session)
        raise TypeError(f"unsupported iloc argument {item!r}")


class _StrAccessor:
    def __init__(self, series: Series):
        self._series = series

    def _call(self, method: str, *args, **kwargs) -> Series:
        return self._series._elementwise(
            lambda s: getattr(s.str, method)(*args, **kwargs)
        )

    def lower(self):
        return self._call("lower")

    def upper(self):
        return self._call("upper")

    def strip(self):
        return self._call("strip")

    def len(self):
        return self._call("len")

    def contains(self, pat):
        return self._call("contains", pat)

    def startswith(self, prefix):
        return self._call("startswith", prefix)

    def endswith(self, suffix):
        return self._call("endswith", suffix)

    def replace(self, old, new):
        return self._call("replace", old, new)

    def slice(self, start=None, stop=None, step=None):
        return self._call("slice", start, stop, step)


class _DtAccessor:
    def __init__(self, series: Series):
        self._series = series

    @property
    def year(self):
        return self._series._elementwise(lambda s: s.dt.year)

    @property
    def month(self):
        return self._series._elementwise(lambda s: s.dt.month)

    @property
    def day(self):
        return self._series._elementwise(lambda s: s.dt.day)

    @property
    def dayofweek(self):
        return self._series._elementwise(lambda s: s.dt.dayofweek)


class DataFrame(Remote):
    """Distributed 2-D table."""

    # -- metadata ------------------------------------------------------------
    @property
    def columns(self) -> list:
        if self.data.columns is not None:
            return list(self.data.columns)
        self.execute()
        first = self.data.chunks[0]
        meta = self.session.meta.get(first.key)
        if meta is not None and meta.columns is not None:
            self.data.columns = list(meta.columns)
            return list(meta.columns)
        return []

    @property
    def dtypes(self):
        if not self.session.is_materialized(self.data):
            self.execute()
        return self.session.storage.peek(self.data.chunks[0].key).dtypes

    @property
    def shape(self) -> tuple:
        if not self.data.has_known_shape:
            self.execute()
        rows = self.data.shape[0]
        cols = self.data.shape[1] if len(self.data.shape) > 1 else None
        if cols is None:
            cols = len(self.columns)
        return (rows, cols)

    def __len__(self) -> int:
        return int(self.shape[0])

    # -- selection -----------------------------------------------------------------
    def __getitem__(self, item):
        if isinstance(item, str):
            rows = self.data.shape[0] if self.data.shape else None
            out = build_elementwise(
                [self.data], lambda df: df[item], "series", (rows,),
                out_name=item, cols_required=[item],
            )
            return Series(out, self._session)
        if isinstance(item, list):
            rows = self.data.shape[0] if self.data.shape else None
            cols = list(item)
            out = build_elementwise(
                [self.data], lambda df: df[cols], "dataframe",
                (rows, len(cols)), out_columns=cols, cols_required=cols,
            )
            return DataFrame(out, self._session)
        if isinstance(item, Series):
            op = Filter(out_kind="dataframe", out_columns=self.data.columns)
            out = op.new_tileable(
                [self.data, item.data], "dataframe",
                (None, len(self.data.columns) if self.data.columns else None),
                columns=self.data.columns,
            )
            return DataFrame(out, self._session)
        raise TypeError(f"unsupported selection {item!r}")

    def __setitem__(self, name, value) -> None:
        if isinstance(value, Series):
            func = lambda df, s: df.assign(**{name: s})  # noqa: E731
            inputs = [self.data, value.data]
            op = Elementwise(func=func, out_kind="dataframe",
                             out_columns=self._columns_plus(name))
            out = op.new_tileable(inputs, "dataframe",
                                  self._shape_plus(name),
                                  columns=self._columns_plus(name))
        else:
            func = lambda df: df.assign(**{name: value})  # noqa: E731
            out = build_elementwise(
                [self.data], func, "dataframe", self._shape_plus(name),
                out_columns=self._columns_plus(name),
            )
        self.data = out  # rebind: the wrapper now denotes the new frame

    def _columns_plus(self, name) -> Optional[list]:
        if self.data.columns is None:
            return None
        cols = list(self.data.columns)
        if name not in cols:
            cols.append(name)
        return cols

    def _shape_plus(self, name) -> tuple:
        rows = self.data.shape[0] if self.data.shape else None
        cols = self._columns_plus(name)
        return (rows, len(cols) if cols is not None else None)

    def assign(self, **new_columns) -> "DataFrame":
        out = DataFrame(self.data, self._session)
        for name, value in new_columns.items():
            if callable(value):
                value = value(out)
            out[name] = value
        return out

    @property
    def iloc(self) -> "_FrameILoc":
        return _FrameILoc(self)

    def head(self, n: int = 5) -> "DataFrame":
        op = ILocRows(slice(0, n), out_kind="dataframe",
                      out_columns=self.data.columns)
        out = op.new_tileable(
            [self.data], "dataframe",
            (None, len(self.data.columns) if self.data.columns else None),
            columns=self.data.columns,
        )
        return DataFrame(out, self._session)

    # -- per-chunk transforms --------------------------------------------------------
    def _map_partitions(self, func: Callable, keeps_rows: bool,
                        columns: Optional[list] = None) -> "DataFrame":
        op = MapPartitions(func=func, out_kind="dataframe",
                           out_columns=columns, keeps_rows=keeps_rows)
        rows = self.data.shape[0] if (keeps_rows and self.data.shape) else None
        out = op.new_tileable(
            [self.data], "dataframe",
            (rows, len(columns) if columns is not None else None),
            columns=columns,
        )
        return DataFrame(out, self._session)

    def fillna(self, value) -> "DataFrame":
        return self._map_partitions(lambda df: df.fillna(value), True,
                                    self.data.columns)

    def dropna(self, subset=None, how: str = "any") -> "DataFrame":
        return self._map_partitions(
            lambda df: df.dropna(subset=subset, how=how), False,
            self.data.columns,
        )

    def astype(self, dtype) -> "DataFrame":
        return self._map_partitions(lambda df: df.astype(dtype), True,
                                    self.data.columns)

    def rename(self, columns: Mapping) -> "DataFrame":
        new_cols = ([columns.get(c, c) for c in self.data.columns]
                    if self.data.columns is not None else None)
        return self._map_partitions(lambda df: df.rename(columns=columns),
                                    True, new_cols)

    def drop(self, columns=None, labels=None) -> "DataFrame":
        to_drop = columns if columns is not None else labels
        if isinstance(to_drop, str):
            to_drop = [to_drop]
        dropped = set(to_drop)
        new_cols = ([c for c in self.data.columns if c not in dropped]
                    if self.data.columns is not None else None)
        return self._map_partitions(
            lambda df: df.drop(columns=list(dropped)), True, new_cols
        )

    def reset_index(self, drop: bool = False) -> "DataFrame":
        if drop:
            return self._map_partitions(
                lambda df: df.reset_index(drop=True), True, self.data.columns
            )
        return self._map_partitions(lambda df: df.reset_index(), True, None)

    def apply(self, func: Callable, axis: int = 1) -> Series:
        if axis != 1:
            raise NotImplementedError("distributed apply supports axis=1")
        op = MapPartitions(func=lambda df: df.apply(func, axis=1),
                           out_kind="series", keeps_rows=True)
        rows = self.data.shape[0] if self.data.shape else None
        out = op.new_tileable([self.data], "series", (rows,))
        return Series(out, self._session)

    def map_partitions(self, func: Callable,
                       columns: Optional[list] = None) -> "DataFrame":
        return self._map_partitions(func, False, columns)

    # -- relational ---------------------------------------------------------------------
    def merge(self, right: "DataFrame", how: str = "inner", on=None,
              left_on=None, right_on=None,
              suffixes: tuple = ("_x", "_y")) -> "DataFrame":
        if on is not None:
            lk = [on] if isinstance(on, str) else list(on)
            rk = list(lk)
        elif left_on is not None:
            lk = [left_on] if isinstance(left_on, str) else list(left_on)
            rk = [right_on] if isinstance(right_on, str) else list(right_on)
        else:
            left_cols = self.data.columns or []
            right_cols = right.data.columns or []
            lk = [c for c in left_cols if c in set(right_cols)]
            rk = list(lk)
            if not lk:
                raise ValueError("no common columns to merge on")
        out_columns = _merged_columns(
            self.data.columns, right.data.columns, lk, rk, suffixes
        )
        op = Merge(how=how, left_on=lk, right_on=rk, suffixes=suffixes,
                   out_columns=out_columns)
        out = op.new_tileable(
            [self.data, right.data], "dataframe",
            (None, len(out_columns) if out_columns is not None else None),
            columns=out_columns,
        )
        return DataFrame(out, self._session)

    def groupby(self, by, as_index: bool = True) -> "DistGroupBy":
        keys = [by] if isinstance(by, str) else list(by)
        return DistGroupBy(self, keys, as_index=as_index)

    # -- ordering / dedup -------------------------------------------------------------------
    def sort_values(self, by, ascending=True) -> "DataFrame":
        keys = [by] if isinstance(by, str) else list(by)
        op = SortValues(by=keys, ascending=ascending,
                        out_columns=self.data.columns)
        out = op.new_tileable(
            [self.data], "dataframe",
            (self.data.shape[0] if self.data.shape else None,
             len(self.data.columns) if self.data.columns else None),
            columns=self.data.columns,
        )
        return DataFrame(out, self._session)

    def nlargest(self, n: int, columns) -> "DataFrame":
        return self.sort_values(columns, ascending=False).head(n)

    def nsmallest(self, n: int, columns) -> "DataFrame":
        return self.sort_values(columns, ascending=True).head(n)

    def drop_duplicates(self, subset=None) -> "DataFrame":
        op = DropDuplicates(subset=subset, out_kind="dataframe",
                            out_columns=self.data.columns)
        out = op.new_tileable(
            [self.data], "dataframe",
            (None, len(self.data.columns) if self.data.columns else None),
            columns=self.data.columns,
        )
        return DataFrame(out, self._session)

    # -- reductions -----------------------------------------------------------------------------
    def _reduce(self, how: str) -> Series:
        op = DataFrameReduction(how=how)
        out = op.new_tileable([self.data], "series", (None,))
        return Series(out, self._session)

    def sum(self):
        return self._reduce("sum")

    def mean(self):
        return self._reduce("mean")

    def min(self):
        return self._reduce("min")

    def max(self):
        return self._reduce("max")

    def count(self):
        return self._reduce("count")

    def nunique(self):
        return self._reduce("nunique")

    def describe(self) -> "DataFrame":
        op = GatherApply(func=lambda df: df.describe(), out_kind="dataframe")
        out = op.new_tileable([self.data], "dataframe", (8, None))
        return DataFrame(out, self._session)

    def pivot_table(self, values=None, index=None, columns=None,
                    aggfunc: str = "mean") -> "DataFrame":
        op = GatherApply(
            func=lambda df: df.pivot_table(values=values, index=index,
                                           columns=columns, aggfunc=aggfunc),
            out_kind="dataframe",
        )
        out = op.new_tileable([self.data], "dataframe", (None, None))
        return DataFrame(out, self._session)

    # -- IO ------------------------------------------------------------------------------------------
    def to_parquet(self, path) -> None:
        self.fetch().to_parquet(path)

    def to_csv(self, path) -> None:
        self.fetch().to_csv(path)


def _merged_columns(left_cols, right_cols, left_on, right_on, suffixes):
    if left_cols is None or right_cols is None:
        return None
    shared = [l for l, r in zip(left_on, right_on) if l == r]
    right_out = [c for c in right_cols if not (c in shared and c in set(right_on))]
    overlap = (set(left_cols) & set(right_out)) - set(shared)
    out = []
    for c in left_cols:
        out.append(f"{c}{suffixes[0]}" if c in overlap else c)
    for c in right_out:
        out.append(f"{c}{suffixes[1]}" if c in overlap else c)
    return out


class _FrameILoc:
    def __init__(self, frame: DataFrame):
        self._frame = frame

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            op = ILocRows(int(item), out_kind="series",
                          out_columns=self._frame.data.columns)
            out = op.new_tileable([self._frame.data], "series", (None,))
            return Series(out, self._frame._session)
        if isinstance(item, slice):
            op = ILocRows(item, out_kind="dataframe",
                          out_columns=self._frame.data.columns)
            out = op.new_tileable(
                [self._frame.data], "dataframe",
                (None, len(self._frame.data.columns)
                 if self._frame.data.columns else None),
                columns=self._frame.data.columns,
            )
            return DataFrame(out, self._frame._session)
        raise TypeError(f"unsupported iloc argument {item!r}")


class DistGroupBy:
    """Deferred ``df.groupby(keys)``."""

    def __init__(self, frame: DataFrame, by: list, as_index: bool = True):
        self.frame = frame
        self.by = by
        self.as_index = as_index

    def __getitem__(self, item):
        if isinstance(item, str):
            return _SelectedDistGroupBy(self, [item], scalar=True)
        return _SelectedDistGroupBy(self, list(item), scalar=False)

    def agg(self, spec=None, **named) -> DataFrame:
        value_columns = [
            c for c in (self.frame.data.columns or []) if c not in set(self.by)
        ]
        plan = normalize_agg_spec(spec, value_columns, named)
        for _out, _col, how in plan:
            how_name = _how_name(how)
            if not callable(how) and how_name not in DISTRIBUTABLE:
                raise ValueError(f"cannot distribute aggregation {how!r}")
        return self._build(plan)

    aggregate = agg

    def _build(self, plan) -> DataFrame:
        out_cols = [p[0] for p in plan]
        columns = out_cols if self.as_index else self.by + out_cols
        op = GroupByAgg(by=self.by, plan=plan, as_index=self.as_index)
        out = op.new_tileable(
            [self.frame.data], "dataframe", (None, len(columns)),
            columns=columns,
        )
        return DataFrame(out, self.frame._session)

    def _single(self, how: str) -> DataFrame:
        value_columns = [
            c for c in (self.frame.data.columns or []) if c not in set(self.by)
        ]
        plan = [(c, c, how) for c in value_columns]
        return self._build(plan)

    def sum(self):
        return self._single("sum")

    def mean(self):
        return self._single("mean")

    def min(self):
        return self._single("min")

    def max(self):
        return self._single("max")

    def count(self):
        return self._single("count")

    def nunique(self):
        return self._single("nunique")

    def first(self):
        return self._single("first")

    def last(self):
        return self._single("last")

    def size(self) -> Series:
        plan = [("size", self.by[0], "size")]
        frame = self._build(plan)
        return frame["size"]


class _SelectedDistGroupBy:
    def __init__(self, parent: DistGroupBy, columns: list, scalar: bool):
        self._parent = parent
        self._columns = columns
        self._scalar = scalar

    def agg(self, spec=None, **named):
        if named:
            return self._parent.agg(**named)
        if isinstance(spec, str) or callable(spec):
            plan = [(c, c, spec) for c in self._columns]
            result = self._parent._build(plan)
            if self._scalar:
                return result[self._columns[0]]
            return result
        if isinstance(spec, (list, tuple)):
            plan = [((c, _how_name(h)), c, h)
                    for c in self._columns for h in spec]
            return self._parent._build(plan)
        if isinstance(spec, dict):
            return self._parent.agg(spec)
        raise TypeError(f"unsupported agg spec {spec!r}")

    aggregate = agg

    def _single(self, how):
        return self.agg(how)

    def sum(self):
        return self._single("sum")

    def mean(self):
        return self._single("mean")

    def min(self):
        return self._single("min")

    def max(self):
        return self._single("max")

    def count(self):
        return self._single("count")

    def nunique(self):
        return self._single("nunique")

    def size(self):
        return self._parent.size()


# ---------------------------------------------------------------------------
# module-level constructors (the ``xorbits.pandas`` surface)
# ---------------------------------------------------------------------------

def from_frame(frame: LocalFrame, session: Session | None = None) -> DataFrame:
    """Distribute an in-memory ``repro.frame.DataFrame``."""
    columns = frame.columns.to_list()
    op = FromFrame(frame=frame)
    out = op.new_tileable([], "dataframe", (len(frame), len(columns)),
                          columns=columns)
    return DataFrame(out, session)


def from_dict(data: Mapping, session: Session | None = None) -> DataFrame:
    return from_frame(LocalFrame(dict(data)), session)


def read_parquet(path, columns: Optional[list] = None,
                 session: Session | None = None) -> DataFrame:
    from ..engine.local import parquet_metadata

    meta = parquet_metadata(path)
    all_columns = [c["name"] for c in meta["columns"]]
    use = list(columns) if columns is not None else all_columns
    op = ReadParquet(path, columns=columns)
    out = op.new_tileable([], "dataframe", (meta["n_rows"], len(use)),
                          columns=use)
    return DataFrame(out, session)


def read_csv(path, columns: Optional[list] = None,
             parse_dates: Optional[list] = None,
             session: Session | None = None) -> DataFrame:
    from ..engine.local import csv_row_count, read_csv as local_read_csv

    header = local_read_csv(path, nrows=1)
    all_columns = header.columns.to_list()
    use = list(columns) if columns is not None else all_columns
    op = ReadCSV(path, columns=columns, parse_dates=parse_dates)
    out = op.new_tileable([], "dataframe", (csv_row_count(path), len(use)),
                          columns=use)
    return DataFrame(out, session)


def concat(frames: Sequence[DataFrame],
           session: Session | None = None) -> DataFrame:
    """Distributed row concat: chunks are re-positioned, not copied."""
    from .concat_op import ConcatFrames

    datas = [f.data for f in frames]
    columns = datas[0].columns
    rows: Optional[int] = 0
    for data in datas:
        if data.shape and data.shape[0] is not None and rows is not None:
            rows += data.shape[0]
        else:
            rows = None
    op = ConcatFrames()
    out = op.new_tileable(
        datas, "dataframe",
        (rows, len(columns) if columns is not None else None),
        columns=columns,
    )
    return DataFrame(out, session if session is not None else frames[0]._session)
