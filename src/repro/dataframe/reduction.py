"""Whole-column reductions (``series.sum()``, ``df.mean()``, ...).

Implemented as map → tree-combine → reduce: each chunk emits a small
partial-statistics record, combined pairwise with the same decompositions
the groupby operator uses (mean = sum+count, var = sum+sumsq+count, ...).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..engine.local import DataFrame, Index, Series
from ..utils import batched
from .utils import chunk_index

REDUCTIONS = ("sum", "mean", "min", "max", "count", "nunique", "prod",
              "var", "std", "median", "any", "all")


def _map_partial(series: Series, how: str) -> dict:
    """The partial-statistics record of one chunk for one reduction."""
    if how in ("sum", "prod", "min", "max", "any", "all"):
        if series.count() == 0:
            return {"acc": None}
        return {"acc": getattr(series, how)()}
    if how == "count":
        return {"count": series.count()}
    if how == "mean":
        return {"sum": _nan_to_zero(series.sum()), "count": series.count()}
    if how in ("var", "std"):
        return {
            "sum": _nan_to_zero(series.sum()),
            "sumsq": _nan_to_zero((series * series).sum()),
            "count": series.count(),
        }
    if how == "nunique":
        return {"set": frozenset(series.dropna().values.tolist())}
    if how == "median":
        return {"values": [v for v in series.dropna().values.tolist()]}
    raise ValueError(f"unsupported reduction {how!r}")


def _nan_to_zero(value):
    if isinstance(value, float) and math.isnan(value):
        return 0.0
    return value


def _merge_partials(parts: list[dict], how: str) -> dict:
    if how in ("sum", "prod", "min", "max", "any", "all"):
        accs = [p["acc"] for p in parts if p["acc"] is not None]
        if not accs:
            return {"acc": None}
        if how == "sum":
            return {"acc": sum(accs)}
        if how == "prod":
            return {"acc": math.prod(accs)}
        if how == "min":
            return {"acc": min(accs)}
        if how == "max":
            return {"acc": max(accs)}
        if how == "any":
            return {"acc": any(accs)}
        return {"acc": all(accs)}
    if how == "count":
        return {"count": sum(p["count"] for p in parts)}
    if how == "mean":
        return {"sum": sum(p["sum"] for p in parts),
                "count": sum(p["count"] for p in parts)}
    if how in ("var", "std"):
        return {"sum": sum(p["sum"] for p in parts),
                "sumsq": sum(p["sumsq"] for p in parts),
                "count": sum(p["count"] for p in parts)}
    if how == "nunique":
        out: set = set()
        for p in parts:
            out |= p["set"]
        return {"set": frozenset(out)}
    if how == "median":
        values: list = []
        for p in parts:
            values.extend(p["values"])
        return {"values": values}
    raise ValueError(f"unsupported reduction {how!r}")


def _finalize_partial(part: dict, how: str):
    if how in ("sum", "prod"):
        return part["acc"] if part["acc"] is not None else 0
    if how in ("min", "max", "any", "all"):
        return part["acc"] if part["acc"] is not None else np.nan
    if how == "count":
        return part["count"]
    if how == "mean":
        return part["sum"] / part["count"] if part["count"] else np.nan
    if how in ("var", "std"):
        n = part["count"]
        if n <= 1:
            return np.nan
        var = (part["sumsq"] - part["sum"] * part["sum"] / n) / (n - 1)
        var = max(var, 0.0)
        return var if how == "var" else math.sqrt(var)
    if how == "nunique":
        return len(part["set"])
    if how == "median":
        return float(np.median(part["values"])) if part["values"] else np.nan
    raise ValueError(f"unsupported reduction {how!r}")


class SeriesReduction(Operator):
    """Reduce a distributed series to a scalar."""

    def __init__(self, how: str, **params):
        super().__init__(**params)
        self.how = how

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        map_chunks = []
        for i, chunk in enumerate(chunks):
            op = SeriesReductionChunk(how=self.how, stage_role="map")
            map_chunks.append(op.new_chunk([chunk], "scalar", (), ()))
        level = map_chunks
        while len(level) > 1:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = SeriesReductionChunk(how=self.how, stage_role="combine")
                next_level.append(op.new_chunk(list(batch), "scalar", (), ()))
            level = next_level
        final_op = SeriesReductionChunk(how=self.how, stage_role="reduce")
        out = final_op.new_chunk(level, "scalar", (), ())
        return [([out], ((),))]


class SeriesReductionChunk(Operator):
    def __init__(self, how: str, stage_role: str, **params):
        super().__init__(**params)
        self.how = how
        self.stage_role = stage_role

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        if self.stage_role == "map":
            return _map_partial(values[0], self.how)
        merged = _merge_partials(values, self.how)
        if self.stage_role == "combine":
            return merged
        return _finalize_partial(merged, self.how)


class DataFrameReduction(Operator):
    """Column-wise reduction of a distributed dataframe to a series."""

    def __init__(self, how: str, numeric_only: bool = True, **params):
        super().__init__(**params)
        self.how = how
        self.numeric_only = numeric_only

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        map_chunks = []
        for chunk in chunks:
            op = DataFrameReductionChunk(
                how=self.how, numeric_only=self.numeric_only, stage_role="map"
            )
            map_chunks.append(op.new_chunk([chunk], "scalar", (), ()))
        level = map_chunks
        while len(level) > 1:
            next_level = []
            for batch in batched(level, ctx.config.combine_arity):
                op = DataFrameReductionChunk(
                    how=self.how, numeric_only=self.numeric_only,
                    stage_role="combine",
                )
                next_level.append(op.new_chunk(list(batch), "scalar", (), ()))
            level = next_level
        final_op = DataFrameReductionChunk(
            how=self.how, numeric_only=self.numeric_only, stage_role="reduce"
        )
        out = final_op.new_chunk(level, "series", (None,), (0,))
        return [([out], ((None,),))]


class DataFrameReductionChunk(Operator):
    def __init__(self, how: str, numeric_only: bool, stage_role: str,
                 **params):
        super().__init__(**params)
        self.how = how
        self.numeric_only = numeric_only
        self.stage_role = stage_role

    def execute(self, ctx: ExecContext):
        from ..engine.local import dtypes as frame_dtypes

        values = [ctx.get(c.key) for c in self.inputs]
        if self.stage_role == "map":
            frame: DataFrame = values[0]
            out: dict = {}
            for name in frame.columns.to_list():
                series = frame[name]
                if self.numeric_only and not frame_dtypes.is_numeric(series.dtype):
                    continue
                out[name] = _map_partial(series, self.how)
            return out
        merged: dict = {}
        column_order: list = []
        for part in values:
            for name in part:
                if name not in merged:
                    merged[name] = []
                    column_order.append(name)
                merged[name].append(part[name])
        combined = {
            name: _merge_partials(parts, self.how)
            for name, parts in merged.items()
        }
        if self.stage_role == "combine":
            return combined
        names = column_order
        out_values = np.array(
            [_finalize_partial(combined[name], self.how) for name in names],
            dtype=np.float64 if self.how not in ("min", "max", "any", "all")
            else object,
        )
        return Series(out_values, index=Index(np.array(names, dtype=object)))
