"""Distributed groupby-aggregate: the paper's flagship multi-stage operator.

``GroupByAgg`` runs as map → (combine|shuffle) → reduce (Section III-C):

- **map**: each input chunk aggregates locally, producing one small
  partial frame per chunk with decomposed aggregates (mean becomes
  sum+count, var becomes sum+sumsq+count, ...);
- **auto reduce selection** (Section IV-C, Fig. 6a): dynamic tiling
  executes the first few map chunks, reads the real aggregated size from
  the meta service, and picks *tree-reduce* when the aggregate is small
  or *shuffle-reduce* (range-partitioned by group key, boundaries sampled
  from the executed chunks) when it is large;
- **combine**: tree-reduce pre-aggregates ``combine_arity`` chunks at a
  time so no single worker receives everything at once;
- **reduce**: merges partials and finalizes derived statistics.

With dynamic tiling disabled the operator falls back to the static rule
the paper attributes to existing systems — always tree-reduce into one
node — which is exactly what overwhelms a worker when the aggregate
turns out to be large.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core.operator import (
    COMBINE_DROPPED_KEY,
    ExecContext,
    Operator,
    TileContext,
)
from ..engine.local import DataFrame, _how_name, concat
from ..graph.entity import ChunkData
from ..utils import batched, new_key
from .utils import chunk_index, spread_sample

#: aggregations this operator can decompose for distributed execution.
DISTRIBUTABLE = (
    "sum", "mean", "min", "max", "count", "size", "std", "var",
    "nunique", "first", "last", "median", "any", "all",
)


def normalize_agg_spec(spec, value_columns: Sequence, named: dict | None = None):
    """Normalize user agg input to ``[(out_name, col, how), ...]``."""
    named = named or {}
    plan: list[tuple] = []
    if named:
        for out_name, (col, how) in named.items():
            plan.append((out_name, col, how))
        return plan
    if isinstance(spec, str):
        for col in value_columns:
            plan.append((col, col, spec))
        return plan
    if isinstance(spec, dict):
        multi = any(isinstance(v, (list, tuple)) for v in spec.values())
        for col, hows in spec.items():
            if isinstance(hows, (list, tuple)):
                for how in hows:
                    plan.append(((col, _how_name(how)), col, how))
            else:
                plan.append(((col, _how_name(hows)) if multi else col, col, hows))
        return plan
    if isinstance(spec, (list, tuple)):
        for col in value_columns:
            for how in spec:
                plan.append(((col, _how_name(how)), col, how))
        return plan
    raise TypeError(f"unsupported agg spec {spec!r}")


def _partial_columns(i: int, how: str) -> list[tuple[str, str]]:
    """(internal partial column name, merge function) pairs for one agg."""
    base = f"__agg{i}"
    if how == "sum":
        return [(f"{base}_sum", "sum")]
    if how == "count":
        return [(f"{base}_count", "sum")]
    if how == "size":
        return [(f"{base}_size", "sum")]
    if how == "min":
        return [(f"{base}_min", "min")]
    if how == "max":
        return [(f"{base}_max", "max")]
    if how == "mean":
        return [(f"{base}_sum", "sum"), (f"{base}_count", "sum")]
    if how in ("var", "std"):
        return [(f"{base}_sum", "sum"), (f"{base}_sumsq", "sum"),
                (f"{base}_count", "sum")]
    if how == "nunique":
        return [(f"{base}_set", "__union")]
    if how == "median":
        return [(f"{base}_list", "__concat")]
    if how == "first":
        return [(f"{base}_first", "first")]
    if how == "last":
        return [(f"{base}_last", "last")]
    if how == "any":
        return [(f"{base}_any", "max")]
    if how == "all":
        return [(f"{base}_all", "min")]
    raise ValueError(f"aggregation {how!r} cannot be distributed")


def _union_sets(series) -> frozenset:
    out: set = set()
    for value in series.values:
        if value is not None:
            out |= value
    return frozenset(out)


def _concat_lists(series) -> list:
    out: list = []
    for value in series.values:
        if value is not None:
            out.extend(value)
    return out


def merge_partial_frames(partials: list[DataFrame], by: Sequence,
                         plan: Sequence[tuple]) -> DataFrame:
    """Merge map-stage partial frames by group key.

    Shared by the combine/reduce stages and by mapper-side combine in
    :class:`GroupByPartition`: both fold duplicate keys with each partial
    column's merge function (sums add, mins min, sets union, lists
    concatenate), preserving row order within a key so order-sensitive
    partials (first/last) keep their meaning.
    """
    merged = concat(partials, ignore_index=True) if len(partials) > 1 \
        else partials[0]
    grouped = merged.groupby(list(by), as_index=False)
    named: dict = {}
    for i, (_out, _col, how) in enumerate(plan):
        for partial_name, merge_how in _partial_columns(i, how):
            if merge_how == "__union":
                named[partial_name] = (partial_name, _union_sets)
            elif merge_how == "__concat":
                named[partial_name] = (partial_name, _concat_lists)
            else:
                named[partial_name] = (partial_name, merge_how)
    return grouped.agg(**named)


class GroupByAgg(Operator):
    """Tileable-level groupby.agg; also the class of its stage chunk ops."""

    def __init__(self, by: Sequence, plan: Sequence[tuple],
                 as_index: bool = True, **params):
        super().__init__(**params)
        self.by = list(by)
        self.plan = [tuple(p) for p in plan]
        self.as_index = as_index

    # -- optimizer hooks ---------------------------------------------------
    def input_column_requirements(self, required):
        needed = set(self.by)
        for out_name, col, how in self.plan:
            if required is not None and out_name not in required and \
                    not (isinstance(out_name, tuple) and out_name[0] in required):
                # the caller does not consume this output column... but
                # dropping aggregates silently would change the schema;
                # prune only the *input* columns of unused aggregates.
                pass
            needed.add(col)
        return [sorted(needed, key=str)]

    # -- tiling ----------------------------------------------------------------
    def tile(self, ctx: TileContext):
        in_chunks = list(self.inputs[0].chunks)
        map_chunks = [self._new_stage_chunk([c], self.STAGE_MAP, i)
                      for i, c in enumerate(in_chunks)]

        use_shuffle = False
        boundaries = None
        if ctx.config.dynamic_tiling and len(map_chunks) > 1:
            sample = spread_sample(map_chunks, ctx.config.sample_chunks)
            yield sample
            sampled_bytes = ctx.chunk_nbytes_many(sample, default=0)
            mean_bytes = sum(sampled_bytes) / max(len(sampled_bytes), 1)
            est_total = mean_bytes * len(map_chunks)
            if est_total > ctx.config.tree_reduce_threshold:
                use_shuffle = True
                n_reducers = int(np.clip(
                    math.ceil(est_total / ctx.config.chunk_store_limit),
                    2, 2 * ctx.config.cluster.n_bands,
                ))
                # range boundaries need keys from EVERY map chunk — group
                # keys are often contiguous across chunks, so partial
                # sampling would leave unsampled spans that funnel into
                # one reducer. The maps run now anyway; this only trades
                # pipeline overlap.
                yield map_chunks
                boundaries = self._sample_boundaries(ctx, map_chunks,
                                                     n_reducers)
                # auto merge (Section IV-C): with real sizes known, glue
                # undersized map partials together so the shuffle stage
                # dispatches fewer, right-sized chunks
                from .utils import auto_merge_chunks

                map_chunks = auto_merge_chunks(ctx, map_chunks, "dataframe")

        if use_shuffle and boundaries is not None:
            out_chunks = self._tile_shuffle(map_chunks, boundaries)
        else:
            out_chunks = self._tile_tree(ctx, map_chunks)

        n_cols = len(self.plan)
        nsplits = (tuple(None for _ in out_chunks), (n_cols,))
        return [(out_chunks, nsplits)]

    def _new_stage_chunk(self, inputs: list[ChunkData], stage: str,
                         position: int, extra: dict | None = None) -> ChunkData:
        op = GroupByAgg(by=self.by, plan=self.plan, as_index=self.as_index,
                        **(extra or {}))
        op.stage = stage
        columns = (
            [out for out, _, __ in self.plan] if stage == self.STAGE_REDUCE
            else None
        )
        return op.new_chunk(
            inputs, "dataframe", (None, len(self.plan)),
            chunk_index("dataframe", position), columns=columns,
        )

    def _tile_tree(self, ctx: TileContext, map_chunks: list[ChunkData]):
        """Tree-reduce: combine in batches, then one final reduce node."""
        level = map_chunks
        position = 0
        if ctx.config.combine_stage:
            while len(level) > ctx.config.combine_arity:
                next_level = []
                for batch in batched(level, ctx.config.combine_arity):
                    next_level.append(self._new_stage_chunk(
                        list(batch), self.STAGE_COMBINE, position
                    ))
                    position += 1
                level = next_level
        return [self._new_stage_chunk(level, self.STAGE_REDUCE, 0)]

    def _sample_boundaries(self, ctx: TileContext, sample: list[ChunkData],
                           n_reducers: int) -> list:
        """Range-partition boundaries from executed map chunks' keys."""
        first_key = self.by[0]
        per_chunk = max(4000 // max(len(sample), 1), 20)
        collected: list = []
        for chunk in sample:
            partial = ctx.peek(chunk.key)
            values = partial[first_key].values
            if len(values) > per_chunk:
                stride = max(len(values) // per_chunk, 1)
                values = values[::stride]
            collected.extend(v for v in values.tolist() if v is not None)
        if not collected:
            return []
        collected.sort()
        cuts: list = []
        for r in range(1, n_reducers):
            cut = collected[min(
                int(len(collected) * r / n_reducers), len(collected) - 1
            )]
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)
        return cuts

    def _tile_shuffle(self, map_chunks: list[ChunkData],
                      boundaries: list) -> list[ChunkData]:
        n_reducers = len(boundaries) + 1
        partitions: list[list[ChunkData]] = [[] for _ in range(n_reducers)]
        shuffle_id = new_key("shuffle")
        for m, map_chunk in enumerate(map_chunks):
            part_op = GroupByPartition(
                by=self.by, boundaries=boundaries, n_reducers=n_reducers,
                plan=self.plan, shuffle_id=shuffle_id,
            )
            specs = [
                {
                    "kind": "dataframe", "shape": (None, None),
                    "index": (m, r),
                }
                for r in range(n_reducers)
            ]
            outs = part_op.new_chunks([map_chunk], specs)
            for r, out in enumerate(outs):
                partitions[r].append(out)
        out_chunks = []
        for r in range(n_reducers):
            out_chunks.append(self._new_stage_chunk(
                partitions[r], self.STAGE_REDUCE, r
            ))
        return out_chunks

    # -- execution ---------------------------------------------------------------
    def execute(self, ctx: ExecContext):
        if self.stage == self.STAGE_MAP:
            frame = ctx.get(self.inputs[0].key)
            result = self._execute_map(frame)
            ctx.annotate(self.outputs[0].key, input_rows=len(frame))
            return result
        partials = [ctx.get(c.key) for c in self.inputs]
        partials = [p for p in partials if len(p) > 0]
        if not partials:
            return self._empty_result()
        merged = self._merge_partials(partials)
        if self.stage == self.STAGE_COMBINE:
            return merged
        return self._finalize(merged)

    def _execute_map(self, frame: DataFrame) -> DataFrame:
        work = frame[[c for c in frame.columns.to_list()]]
        agg_spec: dict = {}
        prepared: dict[str, str] = {}  # partial name -> source column
        for i, (_out, col, how) in enumerate(self.plan):
            for partial_name, _merge in _partial_columns(i, how):
                stat = partial_name.rsplit("_", 1)[1]
                if stat == "sumsq":
                    sq_col = f"__sq{i}"
                    if sq_col not in prepared.values():
                        squared = work[col] * work[col]
                        work[sq_col] = squared
                    prepared[partial_name] = sq_col
                else:
                    prepared[partial_name] = col
        grouped = work.groupby(self.by, as_index=False)
        named: dict = {}
        for i, (_out, col, how) in enumerate(self.plan):
            for partial_name, _merge in _partial_columns(i, how):
                stat = partial_name.rsplit("_", 1)[1]
                source = prepared[partial_name]
                named[partial_name] = (source, _map_stat_func(stat))
        return grouped.agg(**named)

    def _merge_partials(self, partials: list[DataFrame]) -> DataFrame:
        return merge_partial_frames(partials, self.by, self.plan)

    def _finalize(self, merged: DataFrame) -> DataFrame:
        out = DataFrame({})
        for key in self.by:
            out[key] = merged[key]
        for i, (out_name, _col, how) in enumerate(self.plan):
            base = f"__agg{i}"
            if how == "mean":
                out[out_name] = merged[f"{base}_sum"] / merged[f"{base}_count"]
            elif how in ("var", "std"):
                n = merged[f"{base}_count"].astype(np.float64)
                s = merged[f"{base}_sum"].astype(np.float64)
                sq = merged[f"{base}_sumsq"].astype(np.float64)
                var = (sq - s * s / n) / (n - 1.0)
                var = var.where(n > 1.0, np.nan).clip(lower=0.0)
                out[out_name] = var if how == "var" else var ** 0.5
            elif how == "nunique":
                out[out_name] = merged[f"{base}_set"].map(len)
            elif how == "median":
                out[out_name] = merged[f"{base}_list"].map(
                    lambda values: float(np.median(values)) if values else np.nan
                )
            elif how == "any":
                out[out_name] = merged[f"{base}_any"].astype(bool)
            elif how == "all":
                out[out_name] = merged[f"{base}_all"].astype(bool)
            else:
                suffix = _partial_columns(i, how)[0][0]
                out[out_name] = merged[suffix]
        if self.as_index:
            return out.set_index(self.by if len(self.by) > 1 else self.by[0])
        return out

    def _empty_result(self) -> DataFrame:
        data: dict = {key: [] for key in self.by}
        for out_name, _col, _how in self.plan:
            data[out_name] = []
        frame = DataFrame(data)
        if self.as_index:
            return frame.set_index(self.by if len(self.by) > 1 else self.by[0])
        return frame


def _map_stat_func(stat: str):
    """Per-chunk aggregation function for one partial statistic."""
    if stat == "set":
        return lambda s: frozenset(s.dropna().values.tolist())
    if stat == "list":
        return lambda s: [v for v in s.values.tolist()
                          if v is not None and not _is_nan(v)]
    if stat == "sumsq":
        return "sum"
    if stat == "any":
        return "any"
    if stat == "all":
        return "all"
    return stat


def _is_nan(value) -> bool:
    return isinstance(value, float) and math.isnan(value)


class GroupByPartition(Operator):
    """Shuffle-map: split a map-stage partial frame into key ranges.

    Produces one output chunk per reducer; ranges come from boundaries
    sampled during dynamic tiling, so reducers receive balanced, ordered
    key ranges and the concatenated result is globally key-sorted.
    """

    is_shuffle_map = True

    def __init__(self, by: Sequence, boundaries: list, n_reducers: int,
                 plan: Sequence[tuple] | None = None,
                 shuffle_id: str | None = None, **params):
        super().__init__(**params)
        self.by = list(by)
        self.boundaries = boundaries
        self.n_reducers = n_reducers
        self.plan = [tuple(p) for p in plan] if plan is not None else None
        self.shuffle_id = shuffle_id

    def execute(self, ctx: ExecContext):
        engine = ctx.engine
        value = ctx.get_physical(self.inputs[0].key)
        # mapper-side combine: auto merge glues map partials together
        # *without* re-aggregating, so a merged chunk carries duplicate
        # group keys. Folding them here — before the partitions hit
        # storage — shrinks shuffle bytes with key cardinality.
        if (self.plan is not None and ctx.config.mapper_side_combine
                and len(value) > 0):
            frame = engine.compute(value)
            combined = merge_partial_frames([frame], self.by, self.plan)
            dropped = len(frame) - len(combined)
            if dropped > 0:
                ctx.annotate(self.outputs[0].key,
                             **{COMBINE_DROPPED_KEY: dropped})
                value = engine.persist(combined)
        vectorized = ctx.config.vectorized_shuffle
        # partition/split run on the physical chunk: the columnar
        # backend assigns over dictionary categories and gathers int32
        # codes, never materializing rows.
        assignment = engine.range_partition(
            value, self.by[0], self.boundaries, vectorized=vectorized
        )
        parts = engine.split(
            value, assignment, self.n_reducers, vectorized=vectorized
        )
        return {chunk.key: parts[r] for r, chunk in enumerate(self.outputs)}
