"""Distributed row-wise concat: re-positions input chunks without copying.

Chunks of the concatenated frame are the inputs' chunks under new chunk
indices sharing the same keys, so materializing either tileable
materializes both — no data movement at all (columns must match; mixed
schemas fall back to a per-chunk reindex op).
"""

from __future__ import annotations

from ..core.operator import ExecContext, Operator, TileContext
from ..graph.entity import ChunkData
from .utils import chunk_index, nsplits_from_chunks, row_count


class ConcatFrames(Operator):
    def tile(self, ctx: TileContext):
        out_chunks: list[ChunkData] = []
        common = self.inputs[0].columns
        same_schema = all(t.columns == common for t in self.inputs)
        for tileable in self.inputs:
            for chunk in tileable.chunks:
                position = len(out_chunks)
                if same_schema:
                    out_chunks.append(ChunkData(
                        chunk.kind, chunk.shape,
                        chunk_index("dataframe", position),
                        op=chunk.op, dtype=chunk.dtype,
                        columns=chunk.columns, key=chunk.key,
                    ))
                else:
                    op = ReindexColumns(columns=common)
                    out_chunks.append(op.new_chunk(
                        [chunk], "dataframe",
                        (chunk.shape[0] if chunk.shape else None,
                         len(common) if common else None),
                        chunk_index("dataframe", position), columns=common,
                    ))
        n_cols = len(common) if common is not None else None
        return [(out_chunks,
                 nsplits_from_chunks(ctx, out_chunks, "dataframe", n_cols))]


class ReindexColumns(Operator):
    """Project a chunk onto a common column list (missing → NaN)."""

    is_lightweight = True

    def __init__(self, columns, **params):
        super().__init__(**params)
        self.columns = list(columns) if columns is not None else None

    def execute(self, ctx: ExecContext):
        import numpy as np

        frame = ctx.get(self.inputs[0].key)
        if self.columns is None:
            return frame
        out = frame.copy()
        for name in self.columns:
            if name not in out:
                out[name] = np.nan
        return out[self.columns]
