"""Distributed sort: sample-based range partitioning.

Dynamic tiling first executes the input chunks, samples the sort key's
distribution (``TileContext.peek``), derives balanced range boundaries,
shuffles rows into those ranges and sorts each range locally — the
concatenation of the output chunks is globally ordered. Without dynamic
tiling the operator degrades to the naive single-node plan (gather
everything, sort once), which is what a planner without runtime metadata
must do to guarantee global order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.operator import ExecContext, Operator, TileContext
from ..engine.local import concat
from ..graph.entity import ChunkData
from ..utils import new_key
from .utils import ConcatChunks, chunk_index, nsplits_from_chunks, spread_sample


class SortValues(Operator):
    """``df.sort_values(by, ascending)`` over row chunks."""

    def __init__(self, by: Sequence, ascending, out_columns=None, **params):
        super().__init__(**params)
        self.by = list(by)
        self.ascending = (
            list(ascending) if isinstance(ascending, (list, tuple))
            else [ascending] * len(self.by)
        )
        self.out_columns = out_columns

    def input_column_requirements(self, required):
        if required is None:
            return [None]
        return [sorted(set(required) | set(self.by), key=str)]

    def tile(self, ctx: TileContext):
        chunks = list(self.inputs[0].chunks)
        n_cols = len(self.out_columns) if self.out_columns is not None else None
        if len(chunks) == 1 or not ctx.config.dynamic_tiling:
            out = self._tile_gather(chunks, n_cols)
            return [( [out], nsplits_from_chunks(ctx, [out], "dataframe", n_cols) )]

        yield chunks  # need real values to sample the key distribution
        boundaries = self._sample_boundaries(ctx, chunks)
        from .utils import auto_merge_chunks

        chunks = auto_merge_chunks(ctx, chunks, "dataframe")
        if not boundaries:
            out = self._tile_gather(chunks, n_cols)
            return [([out], nsplits_from_chunks(ctx, [out], "dataframe", n_cols))]
        n_parts = len(boundaries) + 1
        partitions: list[list[ChunkData]] = [[] for _ in range(n_parts)]
        shuffle_id = new_key("shuffle")
        for m, chunk in enumerate(chunks):
            part_op = SortPartition(key=self.by[0], boundaries=boundaries,
                                    shuffle_id=shuffle_id)
            specs = [
                {"kind": "dataframe", "shape": (None, None), "index": (m, r)}
                for r in range(n_parts)
            ]
            outs = part_op.new_chunks([chunk], specs)
            for r, out in enumerate(outs):
                partitions[r].append(out)
        out_chunks = []
        order = range(n_parts) if self.ascending[0] else range(n_parts - 1, -1, -1)
        for position, r in enumerate(order):
            sort_op = SortChunk(by=self.by, ascending=self.ascending)
            out_chunks.append(sort_op.new_chunk(
                partitions[r], "dataframe", (None, n_cols),
                chunk_index("dataframe", position), columns=self.out_columns,
            ))
        return [(out_chunks,
                 nsplits_from_chunks(ctx, out_chunks, "dataframe", n_cols))]

    def _tile_gather(self, chunks, n_cols):
        """Single-chunk plan: concat everything, sort locally."""
        sort_op = SortChunk(by=self.by, ascending=self.ascending)
        return sort_op.new_chunk(
            chunks, "dataframe", (None, n_cols), chunk_index("dataframe", 0),
            columns=self.out_columns,
        )

    def _sample_boundaries(self, ctx: TileContext, chunks) -> list:
        key = self.by[0]
        collected: list = []
        per_chunk = max(2000 // max(len(chunks), 1), 50)
        for chunk in spread_sample(chunks, 2 * ctx.config.sample_chunks):
            frame = ctx.peek(chunk.key)
            values = [
                v for v in frame[key].values.tolist()[:per_chunk]
                if v is not None and not _is_nan(v)
            ]
            collected.extend(values)
        if len(collected) < 2:
            return []
        collected.sort()
        n_parts = min(len(chunks), 2 * ctx.config.cluster.n_bands)
        cuts = []
        for r in range(1, n_parts):
            cuts.append(collected[min(
                int(len(collected) * r / n_parts), len(collected) - 1
            )])
        # duplicate cut points collapse ranges; dedup keeps them valid
        deduped = []
        for cut in cuts:
            if not deduped or cut > deduped[-1]:
                deduped.append(cut)
        return deduped


def _is_nan(value) -> bool:
    return isinstance(value, float) and np.isnan(value)


class SortPartition(Operator):
    """Shuffle-map for sort: route rows into key ranges."""

    is_shuffle_map = True

    def __init__(self, key, boundaries: list, shuffle_id: str | None = None,
                 **params):
        super().__init__(**params)
        self.key = key
        self.boundaries = boundaries
        self.shuffle_id = shuffle_id

    def execute(self, ctx: ExecContext):
        engine = ctx.engine
        value = ctx.get_physical(self.inputs[0].key)
        vectorized = ctx.config.vectorized_shuffle
        assignment = engine.range_partition(
            value, self.key, self.boundaries, vectorized=vectorized
        )
        n_parts = len(self.outputs)
        parts = engine.split(
            value, assignment, n_parts, vectorized=vectorized
        )
        return {chunk.key: parts[r] for r, chunk in enumerate(self.outputs)}


class SortChunk(Operator):
    """Gather partitions of one range and sort them locally."""

    def __init__(self, by: Sequence, ascending: Sequence, **params):
        super().__init__(**params)
        self.by = list(by)
        self.ascending = list(ascending)

    def execute(self, ctx: ExecContext):
        values = [ctx.get(c.key) for c in self.inputs]
        merged = concat(values) if len(values) > 1 else values[0]
        return merged.sort_values(self.by, ascending=self.ascending)
