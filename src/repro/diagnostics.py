"""Introspection tools: computation-graph export and execution reports.

Distributed engines live or die by their observability — these helpers
render the three plan levels and the simulated execution so users (and
the test suite) can see what the optimizer actually did.
"""

from __future__ import annotations

from io import StringIO
from typing import Optional

from .core.session import Session
from .graph.dag import DAG
from .graph.entity import ChunkData, TileableData
from .utils import human_bytes


def _node_label(node) -> str:
    op_name = type(node.op).__name__ if node.op is not None else "Data"
    if node.op is not None and node.op.stage is not None:
        op_name += f"::{node.op.stage}"
    shape = "x".join("?" if s is None else str(s) for s in node.shape)
    return f"{op_name}\\n{shape}"


def graph_to_dot(graph: DAG, name: str = "plan") -> str:
    """Render a tileable or chunk graph as Graphviz dot source."""
    out = StringIO()
    out.write(f"digraph {name} {{\n")
    out.write("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
    ids = {node.key: f"n{i}" for i, node in enumerate(graph.nodes())}
    for node in graph.nodes():
        shape_attr = "ellipse" if node.op is not None else "box"
        out.write(
            f'  {ids[node.key]} [label="{_node_label(node)}", '
            f'shape={shape_attr}];\n'
        )
    for node in graph.nodes():
        for succ in graph.successors(node):
            out.write(f"  {ids[node.key]} -> {ids[succ.key]};\n")
    out.write("}\n")
    return out.getvalue()


def describe_tileable(tileable: TileableData) -> str:
    """One-paragraph summary of a tileable's tiling state."""
    lines = [
        f"tileable {tileable.key}",
        f"  kind:    {tileable.kind}",
        f"  shape:   {tileable.shape}",
        f"  op:      {type(tileable.op).__name__ if tileable.op else 'Data'}",
    ]
    if tileable.is_tiled:
        lines.append(f"  chunks:  {len(tileable.chunks)}")
        lines.append(f"  nsplits: {tileable.nsplits}")
    else:
        lines.append("  chunks:  (not tiled yet)")
    return "\n".join(lines)


def lineage(tileable: TileableData, max_depth: int = 20) -> str:
    """The operator chain leading to a tileable, innermost first."""
    steps = []
    node: Optional[TileableData] = tileable
    depth = 0
    while node is not None and depth < max_depth:
        op_name = type(node.op).__name__ if node.op is not None else "Data"
        shape = "x".join("?" if s is None else str(s) for s in node.shape)
        steps.append(f"{op_name}[{shape}]")
        node = node.inputs[0] if node.op is not None and node.inputs else None
        depth += 1
    return " <- ".join(steps)


def band_timeline(session: Session, width: int = 60) -> str:
    """ASCII utilization bars per band for the session's virtual clock."""
    clock = session.cluster.clock
    makespan = clock.makespan
    lines = [f"virtual makespan: {makespan:.4f}s"]
    if makespan <= 0:
        return lines[0]
    for band, busy in sorted(clock.band_busy.items()):
        fraction = min(busy / makespan, 1.0)
        filled = int(round(fraction * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{band:20s} |{bar}| {fraction * 100:5.1f}% busy")
    return "\n".join(lines)


def memory_report(session: Session) -> str:
    """Per-worker memory state: used, peak, limit, spilled."""
    lines = ["worker memory (used / peak / limit):"]
    for name, tracker in sorted(session.cluster.memory.items()):
        lines.append(
            f"  {name:12s} {human_bytes(tracker.used):>10s} / "
            f"{human_bytes(tracker.peak):>10s} / "
            f"{human_bytes(tracker.limit):>10s}"
        )
    lines.append(
        f"total spilled: {human_bytes(session.storage.spilled_bytes())}"
    )
    lines.append(
        f"total transferred: "
        f"{human_bytes(session.storage.transferred_bytes())}"
    )
    return "\n".join(lines)


def recovery_report(session: Session) -> str:
    """Fault-recovery state: injected events, retries, recomputation."""
    injector = session.cluster.faults
    report = session.executor.report
    lines = [
        "fault recovery:",
        f"  injected events:     {len(injector.events)}",
        f"  retries:             {report.retries}",
        f"  recomputed subtasks: {report.recomputed_subtasks}",
        f"  recovery bytes:      {human_bytes(report.recovery_bytes)}",
        f"  backoff time:        {report.backoff_time:.4f}s",
    ]
    for event in injector.events[-10:]:
        lines.append(
            f"    [{event.point}] {event.target} "
            f"(stage {event.stage}, priority {event.priority})"
        )
    return "\n".join(lines)


def pressure_report(session: Session) -> str:
    """Memory-pressure state: backpressure, OOM ladder, re-tiling."""
    report = session.executor.report
    pressure = session.executor.pressure
    lines = [
        "memory pressure:",
        f"  admission wait:      {report.admission_wait_time:.4f}s",
        f"  forced admissions:   {pressure.admission.forced_admissions}",
        f"  oom ladder retries:  {report.oom_retries}",
        f"  forced spill:        {human_bytes(report.forced_spill_bytes)}",
        f"  degraded subtasks:   {report.degraded_subtasks}",
        f"  re-tiling passes:    {report.pressure_splits}",
    ]
    degraded = sorted(pressure.degraded_workers)
    if degraded:
        lines.append(f"  degraded workers:    {', '.join(degraded)}")
    return "\n".join(lines)


def cache_report(session: Session) -> str:
    """Result-cache state: hits, misses, invalidations, bytes reused.

    Reads the :class:`~repro.services.cache.ResultCacheService`
    counters through the session's cache actor ref, plus the
    executor-side view (chunks actually pruned from execution graphs),
    broken down per session for multi-tenant clusters.
    """
    stats = session.cache.stats_snapshot()
    report = session.executor.report
    lines = [
        "result cache:",
        f"  enabled:             {bool(session.config.result_cache)}",
        f"  hits / misses:       {stats['hits']} / {stats['misses']}",
        f"  invalidations:       {stats['invalidations']}",
        f"  evictions:           {stats['evictions']}",
        f"  bytes reused:        {human_bytes(stats['bytes_reused'])}",
        f"  live entries:        {stats['entries']} "
        f"({human_bytes(stats['bytes_cached'])})",
        f"  chunks pruned:       {report.cache_hit_chunks}",
    ]
    for name, sess in sorted(stats["per_session"].items()):
        label = name or "(default)"
        lines.append(
            f"    {label:20s} hits={sess['hits']} misses={sess['misses']} "
            f"reused={human_bytes(sess['bytes_reused'])}"
        )
    return "\n".join(lines)


def supervision_report(session: Session) -> str:
    """Actor-plane health: restarts, heartbeat leases, message chaos.

    Reads the cluster's :class:`~repro.core.supervision.SupervisionPlane`
    (restart/kill counters, per-uid heartbeat state) and the actor
    system's :class:`~repro.actors.MessageChaos` counters.  All zeros on
    a healthy, chaos-free run.
    """
    lines = ["actor supervision:"]
    plane = getattr(session.cluster, "supervision", None)
    if plane is None:
        lines.append("  (no supervision plane deployed)")
    else:
        snap = plane.snapshot()
        sup = snap["supervisor"]
        health = snap["health"]
        lines.extend([
            f"  supervised actors:   {sup['supervised']}",
            f"  restarts / kills:    {sup['total_restarts']} / "
            f"{sup['total_kills']}",
            f"  service restarts:    {snap['service_restarts']}",
            f"  runner restarts:     {snap['runner_restarts']}",
            f"  heartbeat leases:    {health['armed']} armed of "
            f"{health['watched']} watched",
            f"  runners dead:        {health['deaths_declared']}",
        ])
        for uid, count in sorted(sup["restarts_by_uid"].items()):
            lines.append(f"    {uid:24s} restarted x{count}")
    chaos = session.cluster.actor_system.chaos
    if chaos is None or not chaos.enabled:
        lines.append("  message chaos:       off")
    else:
        snap = chaos.snapshot()
        lines.extend([
            "  message chaos:",
            f"    dropped:           {snap['dropped']}",
            f"    delayed:           {snap['delayed']}",
            f"    duplicated:        {snap['duplicated']}",
        ])
    speculation = session.executor.speculation
    if speculation is None:
        lines.append("  speculation:         off")
    else:
        lines.append(
            f"  speculative runs:    {session.executor.speculative_subtasks}"
        )
    return "\n".join(lines)


def messages_per_subtask(session: Session) -> float:
    """Actor messages delivered per executed subtask (0.0 before any run).

    The scalar the RPC-batching work targets: every point shaved off
    this number is one fewer supervisor round-trip per subtask on a real
    cluster's data plane.
    """
    n_subtasks = session.executor.report.n_subtasks
    if not n_subtasks:
        return 0.0
    snapshot = session.cluster.actor_system.log.snapshot()
    return snapshot["total_delivered"] / n_subtasks


def service_report(session: Session, top: int = 8) -> str:
    """The actor plane's RPC trace, summarized per service.

    Reads the :class:`~repro.actors.MessageLog` aggregates (which
    survive window trimming): messages delivered to each service actor,
    the chattiest sender -> recipient pairs, and — when the session has
    executed subtasks — the message cost per subtask, the number that
    tells you whether a boundary is too chatty for a real RPC plane.
    """
    log = session.cluster.actor_system.log
    snapshot = log.snapshot()
    lines = [
        "service plane:",
        f"  messages delivered:  {snapshot['total_delivered']}",
    ]
    n_subtasks = session.executor.report.n_subtasks
    if n_subtasks:
        per = snapshot["total_delivered"] / n_subtasks
        lines.append(
            f"  per subtask:         {per:.1f} ({n_subtasks} subtasks)"
        )
    lines.append("  per service:")
    for recipient, count in sorted(
        snapshot["recipients"].items(), key=lambda item: (-item[1], item[0]),
    ):
        lines.append(f"    {recipient:24s} {count:>8d}")
    lines.append(f"  top {top} edges:")
    for (sender, recipient), count in log.top_edges(top):
        lines.append(f"    {sender} -> {recipient:24s} {count:>8d}")
    return "\n".join(lines)


def session_summary(session: Session) -> str:
    """Everything at a glance: last run, bands, memory."""
    report = session.last_report
    head = (
        f"last run: {report.n_subtasks} subtasks over "
        f"{report.n_graph_nodes} chunk nodes, "
        f"{report.dynamic_yields} dynamic-tiling switches, "
        f"makespan {report.makespan:.4f}s"
    )
    parts = [head, band_timeline(session), memory_report(session)]
    if report.retries or report.recomputed_subtasks:
        parts.append(recovery_report(session))
    if (report.admission_wait_time or report.oom_retries
            or report.pressure_splits or report.degraded_subtasks):
        parts.append(pressure_report(session))
    return "\n\n".join(parts)
