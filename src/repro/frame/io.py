"""CSV and columnar ("parquet-like") IO for ``repro.frame``.

The columnar format ``.rpq`` is an ``npz`` archive with a JSON metadata
member. Like real Parquet it supports reading a subset of columns (used by
the engine's column pruning) and exposes row counts and dtypes without
loading data (used by tiling to plan chunks).
"""

from __future__ import annotations

import csv as _csv
import io as _io
import json
import os
from typing import Mapping, Sequence

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import default_index

_META_KEY = "__repro_meta__"


# --------------------------------------------------------------------------
# CSV
# --------------------------------------------------------------------------

def to_csv(frame: DataFrame, path, index: bool = False) -> None:
    """Write a frame as CSV; missing values render as empty fields."""
    with open(path, "w", newline="") as f:
        writer = _csv.writer(f)
        header = ([""] if index else []) + [str(c) for c in frame._columns]
        writer.writerow(header)
        arrays = [frame._data[c] for c in frame._columns]
        masks = [dtypes.isna_array(a) for a in arrays]
        for i in range(len(frame)):
            row = [frame.index[i]] if index else []
            for arr, mask in zip(arrays, masks):
                row.append("" if mask[i] else arr[i])
            writer.writerow(row)


def read_csv(path, usecols: Sequence[str] | None = None,
             nrows: int | None = None, skiprows: int = 0,
             parse_dates: Sequence[str] | None = None,
             dtype: Mapping | None = None,
             names: Sequence[str] | None = None) -> DataFrame:
    """Read a CSV file with type inference.

    ``skiprows`` counts data rows after the header (this matches how the
    distributed ``ReadCSV`` operator slices a file into row-range chunks).
    """
    parse_dates = list(parse_dates or [])
    dtype = dict(dtype or {})
    with open(path, newline="") as f:
        reader = _csv.reader(f)
        if names is None:
            header = next(reader)
            columns = [c for c in header]
        else:
            columns = list(names)
        for _ in range(skiprows):
            if next(reader, None) is None:
                break
        raw: list[list[str]] = []
        for row in reader:
            if not row:
                continue
            raw.append(row)
            if nrows is not None and len(raw) >= nrows:
                break
    keep = list(usecols) if usecols is not None else columns
    missing = [c for c in keep if c not in columns]
    if missing:
        raise KeyError(f"usecols not in file: {missing}")
    positions = {c: columns.index(c) for c in keep}
    data: dict = {}
    for name in keep:
        pos = positions[name]
        cells = [row[pos] if pos < len(row) else "" for row in raw]
        if name in dtype:
            data[name] = _coerce_cells(cells, np.dtype(dtype[name]))
        elif name in parse_dates:
            data[name] = _parse_date_cells(cells)
        else:
            data[name] = _infer_cells(cells)
    return DataFrame(data, index=default_index(len(raw)), columns=keep)


def csv_row_count(path) -> int:
    """Number of data rows (excluding the header) — used by tiling."""
    with open(path, newline="") as f:
        count = sum(1 for line in f if line.strip())
    return max(count - 1, 0)


def _infer_cells(cells: list[str]) -> np.ndarray:
    stripped = [c.strip() for c in cells]
    non_empty = [c for c in stripped if c != ""]
    if non_empty and all(_is_int(c) for c in non_empty):
        if len(non_empty) == len(stripped):
            return np.array([int(c) for c in stripped], dtype=np.int64)
        return np.array(
            [np.nan if c == "" else float(c) for c in stripped], dtype=np.float64
        )
    if non_empty and all(_is_float(c) for c in non_empty):
        return np.array(
            [np.nan if c == "" else float(c) for c in stripped], dtype=np.float64
        )
    return np.array([None if c == "" else c for c in stripped], dtype=object)


def _is_int(cell: str) -> bool:
    try:
        int(cell)
    except ValueError:
        return False
    return True


def _is_float(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True


def _coerce_cells(cells: list[str], target: np.dtype) -> np.ndarray:
    stripped = [c.strip() for c in cells]
    if target == object:
        return np.array([None if c == "" else c for c in stripped], dtype=object)
    if target.kind == "M":
        return _parse_date_cells(stripped)
    if target.kind == "f":
        return np.array(
            [np.nan if c == "" else float(c) for c in stripped], dtype=target
        )
    return np.array([target.type(c) for c in stripped], dtype=target)


def _parse_date_cells(cells: list[str]) -> np.ndarray:
    out = np.empty(len(cells), dtype="datetime64[D]")
    for i, cell in enumerate(cells):
        cell = cell.strip()
        out[i] = np.datetime64("NaT") if cell == "" else np.datetime64(cell)
    return out


# --------------------------------------------------------------------------
# Columnar format (.rpq) — the repo's Parquet stand-in
# --------------------------------------------------------------------------

def to_parquet(frame: DataFrame, path) -> None:
    """Write a frame to the ``.rpq`` columnar format."""
    arrays: dict = {}
    col_meta = []
    for i, name in enumerate(frame._columns):
        arr = frame._data[name]
        member = f"col_{i}"
        if arr.dtype == object:
            encoded, is_na = _encode_object(arr)
            arrays[member] = encoded
            arrays[member + "_na"] = is_na
            col_meta.append({"name": str(name), "kind": "object"})
        elif arr.dtype.kind == "M":
            arrays[member] = arr.astype("datetime64[s]").astype(np.int64)
            arrays[member + "_na"] = np.isnat(arr)
            col_meta.append({"name": str(name), "kind": "datetime"})
        else:
            arrays[member] = arr
            col_meta.append({"name": str(name), "kind": "plain"})
    meta = {"columns": col_meta, "n_rows": len(frame)}
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    ).copy()
    buffer = _io.BytesIO()
    np.savez(buffer, **arrays)
    with open(path, "wb") as f:
        f.write(buffer.getvalue())


def _encode_object(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Store object columns as newline-joined UTF-8 (strings only)."""
    is_na = dtypes.isna_array(arr)
    parts = ["" if is_na[i] else str(arr[i]) for i in range(len(arr))]
    blob = "\x00".join(parts).encode()
    return np.frombuffer(blob, dtype=np.uint8).copy(), is_na


def _decode_object(encoded: np.ndarray, is_na: np.ndarray) -> np.ndarray:
    blob = encoded.tobytes().decode()
    parts = blob.split("\x00") if blob else [""] * len(is_na)
    if len(parts) != len(is_na):
        # all-empty frame edge case
        parts = [""] * len(is_na)
    out = np.empty(len(is_na), dtype=object)
    for i, part in enumerate(parts):
        out[i] = None if is_na[i] else part
    return out


def parquet_metadata(path) -> dict:
    """Read only the metadata of an ``.rpq`` file: columns, kinds, row count."""
    with np.load(path) as npz:
        meta = json.loads(npz[_META_KEY].tobytes().decode())
    return meta


def read_parquet(path, columns: Sequence[str] | None = None,
                 row_range: tuple[int, int] | None = None) -> DataFrame:
    """Read an ``.rpq`` file, optionally a column subset and a row slice.

    ``row_range=(start, stop)`` lets the distributed ``ReadParquet`` operator
    materialize only one chunk's rows.
    """
    with np.load(path) as npz:
        meta = json.loads(npz[_META_KEY].tobytes().decode())
        name_to_member = {
            col["name"]: (f"col_{i}", col["kind"])
            for i, col in enumerate(meta["columns"])
        }
        keep = list(columns) if columns is not None else [
            col["name"] for col in meta["columns"]
        ]
        missing = [c for c in keep if c not in name_to_member]
        if missing:
            raise KeyError(f"columns not in file: {missing}")
        start, stop = row_range if row_range is not None else (0, meta["n_rows"])
        data: dict = {}
        for name in keep:
            member, kind = name_to_member[name]
            if kind == "object":
                full = _decode_object(npz[member], npz[member + "_na"])
                data[name] = full[start:stop]
            elif kind == "datetime":
                seconds = npz[member]
                values = seconds.astype("datetime64[s]")
                values[npz[member + "_na"]] = np.datetime64("NaT")
                data[name] = values[start:stop]
            else:
                data[name] = npz[member][start:stop]
    return DataFrame(data, index=default_index(stop - start), columns=keep)


def parquet_file_size(path) -> int:
    return os.path.getsize(path)
