"""Relational joins for ``repro.frame``: hash/sort-merge ``merge``.

The distributed ``DataFrameMerge`` operator shuffles chunks by key hash and
then calls :func:`merge` on co-partitioned chunk pairs, so the semantics
here (NA keys never match, suffix handling, key coalescing for outer joins)
define the distributed behaviour too.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import default_index

_HOW_VALUES = ("inner", "left", "right", "outer")


def merge(left: DataFrame, right: DataFrame, how: str = "inner", on=None,
          left_on=None, right_on=None, suffixes: tuple[str, str] = ("_x", "_y"),
          sort: bool = False) -> DataFrame:
    """Pandas-style merge of two frames on key columns."""
    if how not in _HOW_VALUES:
        raise ValueError(f"how must be one of {_HOW_VALUES}, got {how!r}")
    left_keys, right_keys, shared = _resolve_keys(left, right, on, left_on, right_on)

    codes_l, codes_r = _encode_keys(
        [left._data[k] for k in left_keys],
        [right._data[k] for k in right_keys],
    )
    left_idx, right_idx = _join_indexers(codes_l, codes_r, how)

    data: dict = {}
    left_cols = list(left._columns)
    right_cols = list(right._columns)
    right_key_set = set(right_keys)
    # columns of right that will appear (shared 'on' keys collapse into one)
    right_out_cols = [
        c for c in right_cols if not (c in shared and c in right_key_set)
    ]
    overlap = (set(left_cols) & set(right_out_cols)) - set(shared)

    for name in left_cols:
        out_name = f"{name}{suffixes[0]}" if name in overlap else name
        if name in shared:
            data[out_name] = _coalesce_key(
                left._data[name], right._data[name], left_idx, right_idx
            )
        else:
            data[out_name] = _take_with_na(left._data[name], left_idx)
    for name in right_out_cols:
        out_name = f"{name}{suffixes[1]}" if name in overlap else name
        data[out_name] = _take_with_na(right._data[name], right_idx)

    result = DataFrame(data, index=default_index(len(left_idx)))
    if sort and shared:
        result = result.sort_values(list(shared))
        result = result.reset_index(drop=True)
    elif sort and left_keys:
        keys = [k for k in left_keys if k in result._data]
        if keys:
            result = result.sort_values(keys).reset_index(drop=True)
    return result


def join_on_index(left: DataFrame, right: DataFrame, how: str = "left",
                  lsuffix: str = "", rsuffix: str = "") -> DataFrame:
    """``DataFrame.join``: align ``right`` on ``left``'s index labels."""
    overlap = set(left._columns) & set(right._columns)
    if overlap and not (lsuffix or rsuffix):
        raise ValueError(f"overlapping columns {sorted(overlap)} need suffixes")
    left2 = left.rename(columns={c: f"{c}{lsuffix}" for c in overlap})
    right2 = right.rename(columns={c: f"{c}{rsuffix}" for c in overlap})
    left_key = left2.reset_index()
    key_name = left.index.name if left.index.name is not None else "index"
    right_key = right2.reset_index()
    right_key_name = right.index.name if right.index.name is not None else "index"
    right_key = right_key.rename(columns={right_key_name: key_name})
    merged = merge(left_key, right_key, how=how, on=key_name)
    return merged.set_index(key_name)


def _resolve_keys(left: DataFrame, right: DataFrame, on, left_on, right_on):
    if on is not None:
        keys = [on] if isinstance(on, str) else list(on)
        _check_keys(left, keys, "left")
        _check_keys(right, keys, "right")
        return keys, keys, list(keys)
    if left_on is not None or right_on is not None:
        if left_on is None or right_on is None:
            raise ValueError("left_on and right_on must both be given")
        lk = [left_on] if isinstance(left_on, str) else list(left_on)
        rk = [right_on] if isinstance(right_on, str) else list(right_on)
        if len(lk) != len(rk):
            raise ValueError("left_on and right_on must have equal length")
        _check_keys(left, lk, "left")
        _check_keys(right, rk, "right")
        shared = [l for l, r in zip(lk, rk) if l == r]
        return lk, rk, shared
    common = [c for c in left._columns if c in set(right._columns)]
    if not common:
        raise ValueError("no common columns to merge on")
    return common, common, common


def _check_keys(frame: DataFrame, keys: Sequence[str], side: str) -> None:
    missing = [k for k in keys if k not in frame._data]
    if missing:
        raise KeyError(f"{side} merge keys not found: {missing}")


def _encode_keys(left_arrays: Sequence[np.ndarray],
                 right_arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Factorize key columns over the union of both sides.

    Returns combined single-integer codes per row with -1 marking rows whose
    key contains a missing value (those never match, as in pandas).
    """
    from .groupby import factorize

    n_left = len(left_arrays[0]) if left_arrays else 0
    codes_l = np.zeros(n_left, dtype=np.int64)
    codes_r = np.zeros(len(right_arrays[0]) if right_arrays else 0, dtype=np.int64)
    valid_l = np.ones(len(codes_l), dtype=bool)
    valid_r = np.ones(len(codes_r), dtype=bool)
    for la, ra in zip(left_arrays, right_arrays):
        dtype = dtypes.common_dtype([la.dtype, ra.dtype])
        both = np.concatenate([la.astype(dtype), ra.astype(dtype)])
        codes, uniques = factorize(both)
        cl, cr = codes[: len(la)], codes[len(la):]
        valid_l &= cl >= 0
        valid_r &= cr >= 0
        codes_l = codes_l * (len(uniques) + 1) + np.maximum(cl, 0)
        codes_r = codes_r * (len(uniques) + 1) + np.maximum(cr, 0)
    codes_l[~valid_l] = -1
    codes_r[~valid_r] = -1
    return codes_l, codes_r


def _match_ranges(codes_l: np.ndarray, codes_r: np.ndarray):
    """For each left code, the range of matching positions in sorted right."""
    sort_r = np.argsort(codes_r, kind="stable")
    sorted_r = codes_r[sort_r]
    lo = np.searchsorted(sorted_r, codes_l, side="left")
    hi = np.searchsorted(sorted_r, codes_l, side="right")
    counts = hi - lo
    counts[codes_l < 0] = 0
    return sort_r, lo, counts


def _inner_indexers(codes_l, codes_r):
    sort_r, lo, counts = _match_ranges(codes_l, codes_r)
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(codes_l), dtype=np.int64), counts)
    if total == 0:
        return left_idx, np.array([], dtype=np.int64)
    out_starts = np.cumsum(counts) - counts
    flat = (np.arange(total, dtype=np.int64)
            - np.repeat(out_starts, counts)
            + np.repeat(lo, counts))
    right_idx = sort_r[flat]
    return left_idx, right_idx


def _join_indexers(codes_l: np.ndarray, codes_r: np.ndarray, how: str):
    if how == "right":
        right_out, left_out = _join_indexers(codes_r, codes_l, "left")
        return left_out, right_out
    inner_l, inner_r = _inner_indexers(codes_l, codes_r)
    if how == "inner":
        return inner_l, inner_r
    _, __, counts = _match_ranges(codes_l, codes_r)
    unmatched_l = np.flatnonzero(counts == 0)
    left_idx = np.concatenate([inner_l, unmatched_l]).astype(np.int64)
    right_idx = np.concatenate(
        [inner_r, np.full(len(unmatched_l), -1, dtype=np.int64)]
    )
    order = np.argsort(left_idx, kind="stable")
    left_idx, right_idx = left_idx[order], right_idx[order]
    if how == "left":
        return left_idx, right_idx
    # outer: also append right rows that matched nothing, in right order
    matched_r = np.zeros(len(codes_r), dtype=bool)
    matched_r[inner_r] = True
    valid_codes = codes_r >= 0
    has_left_match = np.isin(codes_r, codes_l[codes_l >= 0])
    extra_r = np.flatnonzero(~(matched_r | (valid_codes & has_left_match)))
    # a valid right code may match left rows yet not appear in inner if the
    # left row code was -1; recompute strictly: right rows absent from inner_r
    extra_r = np.flatnonzero(~matched_r)
    left_idx = np.concatenate([left_idx, np.full(len(extra_r), -1, dtype=np.int64)])
    right_idx = np.concatenate([right_idx, extra_r]).astype(np.int64)
    return left_idx, right_idx


def _take_with_na(values: np.ndarray, indexer: np.ndarray) -> np.ndarray:
    """Gather values; -1 positions become the dtype's missing marker."""
    if len(indexer) == 0:
        return values[:0]
    missing = indexer < 0
    if not missing.any():
        return values[indexer]
    out_values = dtypes.promote_for_na(values)
    safe = np.where(missing, 0, indexer)
    out = out_values[safe]
    if len(values) == 0:
        out = np.full(len(indexer), dtypes.na_value_for(out_values.dtype),
                      dtype=out_values.dtype if out_values.dtype != object else object)
        return out
    if out.dtype == object:
        out = out.copy()
        out[missing] = None
    else:
        out = out.copy()
        out[missing] = dtypes.na_value_for(out.dtype)
    return out


def _coalesce_key(left_values: np.ndarray, right_values: np.ndarray,
                  left_idx: np.ndarray, right_idx: np.ndarray) -> np.ndarray:
    """Key column of the result: left value where present, else right."""
    use_right = left_idx < 0
    base = _take_with_na(left_values, left_idx)
    if not use_right.any():
        return base
    filler = _take_with_na(right_values, right_idx)
    dtype = dtypes.common_dtype([base.dtype, filler.dtype])
    out = base.astype(dtype).copy()
    out[use_right] = filler.astype(dtype)[use_right]
    return out
