"""Reshaping and encoding helpers: ``cut``/``qcut`` binning,
``get_dummies`` one-hot encoding, and ``melt`` — the feature-engineering
surface the paper's DS pipelines (census, plasticc) lean on."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import default_index
from .series import Series


def cut(series: Series, bins, labels: Optional[Sequence] = None,
        right: bool = True) -> Series:
    """Bin values into discrete intervals.

    ``bins`` is either an int (equal-width bins over the data range) or an
    explicit ascending edge sequence. Returns an object Series of labels;
    values outside the edges become missing.
    """
    values = np.asarray(series.values, dtype=np.float64)
    if isinstance(bins, (int, np.integer)):
        if bins <= 0:
            raise ValueError("bins must be positive")
        finite = values[~np.isnan(values)]
        if len(finite) == 0:
            raise ValueError("cannot cut an all-NaN series")
        lo, hi = float(finite.min()), float(finite.max())
        if lo == hi:
            lo -= 0.001 * abs(lo) + 0.001
        edges = np.linspace(lo, hi, int(bins) + 1)
        edges[0] -= (hi - lo) * 0.001  # include the minimum
    else:
        edges = np.asarray(list(bins), dtype=np.float64)
        if len(edges) < 2 or np.any(np.diff(edges) <= 0):
            raise ValueError("bin edges must be ascending and >= 2")
    return _assign_bins(series, values, edges, labels, right)


def qcut(series: Series, q: int, labels: Optional[Sequence] = None) -> Series:
    """Quantile-based binning into ``q`` near-equal-count buckets."""
    if q <= 0:
        raise ValueError("q must be positive")
    values = np.asarray(series.values, dtype=np.float64)
    finite = values[~np.isnan(values)]
    if len(finite) == 0:
        raise ValueError("cannot qcut an all-NaN series")
    edges = np.quantile(finite, np.linspace(0, 1, q + 1))
    edges = np.unique(edges)
    if len(edges) < 2:
        raise ValueError("too few distinct values for the requested q")
    edges[0] -= abs(edges[0]) * 0.001 + 0.001
    return _assign_bins(series, values, edges, labels, right=True)


def _assign_bins(series: Series, values: np.ndarray, edges: np.ndarray,
                 labels: Optional[Sequence], right: bool) -> Series:
    side = "left" if right else "right"
    positions = np.searchsorted(edges, values, side=side) - 1
    n_bins = len(edges) - 1
    if labels is not None:
        if len(labels) != n_bins:
            raise ValueError(f"need {n_bins} labels, got {len(labels)}")
        label_list = list(labels)
    else:
        label_list = [
            f"({edges[i]:.4g}, {edges[i + 1]:.4g}]" for i in range(n_bins)
        ]
    out = np.empty(len(values), dtype=object)
    for i, pos in enumerate(positions):
        if np.isnan(values[i]) or not 0 <= pos < n_bins:
            out[i] = None
        else:
            out[i] = label_list[pos]
    return Series(out, index=series.index, name=series.name)


def get_dummies(data: Series | DataFrame, prefix: Optional[str] = None,
                columns: Optional[Sequence] = None) -> DataFrame:
    """One-hot encode categorical values (0/1 float columns)."""
    if isinstance(data, Series):
        return _dummies_for(data, prefix if prefix is not None else data.name)
    frame = data
    targets = (
        list(columns) if columns is not None
        else [c for c in frame.columns.to_list()
              if dtypes.is_object(frame[c].dtype)]
    )
    pieces: dict = {}
    for name in frame.columns.to_list():
        if name in targets:
            encoded = _dummies_for(frame[name], str(name))
            for col in encoded.columns.to_list():
                pieces[col] = encoded[col].values
        else:
            pieces[name] = frame[name].values
    return DataFrame(pieces, index=frame.index)


def _dummies_for(series: Series, prefix) -> DataFrame:
    categories = [
        v for v in series.unique().tolist()
        if v is not None and not (isinstance(v, float) and np.isnan(v))
    ]
    categories.sort(key=lambda v: (type(v).__name__, v))
    data: dict = {}
    values = series.values
    for category in categories:
        name = f"{prefix}_{category}" if prefix is not None else category
        data[name] = (values == category).astype(np.float64)
    if not data:
        raise ValueError("no categories to encode")
    return DataFrame(data, index=series.index)


def melt(frame: DataFrame, id_vars: Sequence, value_vars: Optional[Sequence] = None,
         var_name: str = "variable", value_name: str = "value") -> DataFrame:
    """Unpivot from wide to long format."""
    id_list = [id_vars] if isinstance(id_vars, str) else list(id_vars)
    if value_vars is None:
        value_list = [c for c in frame.columns.to_list() if c not in set(id_list)]
    else:
        value_list = list(value_vars)
    if not value_list:
        raise ValueError("nothing to melt")
    n = len(frame)
    out: dict = {}
    for key in id_list:
        out[key] = np.concatenate(
            [frame[key].values] * len(value_list)
        ) if n else frame[key].values
    variable = np.empty(n * len(value_list), dtype=object)
    for j, name in enumerate(value_list):
        variable[j * n:(j + 1) * n] = str(name)
    out[var_name] = variable
    value_dtype = dtypes.common_dtype(
        [frame[c].dtype for c in value_list]
    )
    out[value_name] = np.concatenate(
        [frame[c].values.astype(value_dtype) for c in value_list]
    ) if n else np.empty(0, dtype=value_dtype)
    return DataFrame(out, index=default_index(n * len(value_list)))
