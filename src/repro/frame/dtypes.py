"""Dtype handling and missing-value semantics for ``repro.frame``.

The conventions mirror pandas 1.x semantics on NumPy storage:

- float columns use ``nan`` as the missing marker;
- object columns use ``None`` (``nan`` is also recognized);
- integer and boolean columns cannot hold missing values — operations that
  would introduce one promote the column to float / object first;
- ``datetime64[ns]`` columns use ``NaT``.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np


def object_array(values: Iterable) -> np.ndarray:
    """A 1-D object array of arbitrary items — safe for tuples, which
    ``np.array`` would otherwise turn into extra dimensions."""
    items = list(values)
    out = np.empty(len(items), dtype=object)
    for i, item in enumerate(items):
        out[i] = item
    return out


def as_array(values: Any) -> np.ndarray:
    """Coerce arbitrary column input to a 1-D NumPy array.

    Strings become object arrays (never ``<U`` fixed-width arrays) so that
    assignment and concatenation cannot silently truncate.
    """
    if isinstance(values, np.ndarray):
        arr = values
    else:
        arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


def is_numeric(dtype: np.dtype) -> bool:
    """True for integer, float, and boolean dtypes."""
    return dtype.kind in ("i", "u", "f", "b")


def is_float(dtype: np.dtype) -> bool:
    return dtype.kind == "f"


def is_integer(dtype: np.dtype) -> bool:
    return dtype.kind in ("i", "u")


def is_bool(dtype: np.dtype) -> bool:
    return dtype.kind == "b"


def is_object(dtype: np.dtype) -> bool:
    return dtype == object


def is_datetime(dtype: np.dtype) -> bool:
    return dtype.kind == "M"


def isna_array(arr: np.ndarray) -> np.ndarray:
    """Boolean mask of missing entries under the conventions above."""
    if arr.dtype.kind == "f":
        return np.isnan(arr)
    if arr.dtype.kind == "M":
        return np.isnat(arr)
    if arr.dtype == object:
        mask = np.empty(len(arr), dtype=bool)
        for i, value in enumerate(arr):
            mask[i] = value is None or (isinstance(value, float) and np.isnan(value))
        return mask
    return np.zeros(len(arr), dtype=bool)


def na_value_for(dtype: np.dtype) -> Any:
    """The missing-value marker appropriate for ``dtype``."""
    if dtype.kind == "M":
        return np.datetime64("NaT")
    if dtype == object:
        return None
    return np.nan


def promote_for_na(arr: np.ndarray) -> np.ndarray:
    """Return an array of a dtype able to hold missing values.

    Integers and booleans are promoted to float64; everything else is
    returned unchanged.
    """
    if arr.dtype.kind in ("i", "u", "b"):
        return arr.astype(np.float64)
    return arr


def common_dtype(dtypes: Iterable[np.dtype]) -> np.dtype:
    """The dtype able to hold values of all ``dtypes`` (pandas-style).

    Mixing object with anything yields object; mixing datetimes with
    non-datetimes yields object; otherwise defer to NumPy promotion.
    """
    dtype_list = list(dtypes)
    if not dtype_list:
        raise ValueError("common_dtype of no dtypes")
    if any(dt == object for dt in dtype_list):
        return np.dtype(object)
    kinds = {dt.kind for dt in dtype_list}
    if "M" in kinds and kinds != {"M"}:
        return np.dtype(object)
    result = dtype_list[0]
    for dt in dtype_list[1:]:
        result = np.promote_types(result, dt)
    return result


def values_equal(left: np.ndarray, right: np.ndarray) -> bool:
    """Element-wise equality treating missing values as equal to each other."""
    if len(left) != len(right):
        return False
    left_na = isna_array(left)
    right_na = isna_array(right)
    if not np.array_equal(left_na, right_na):
        return False
    if left.dtype == object or right.dtype == object:
        for lv, rv, na in zip(left, right, left_na):
            if na:
                continue
            if lv != rv:
                return False
        return True
    mask = ~left_na
    return bool(np.array_equal(left[mask], right[mask]))
