"""Window and ranking operations: ``rolling``, ``rank``, ``sample``,
``corr``/``cov`` — the statistical surface of exploratory pipelines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import Index
from .series import Series


class Rolling:
    """Fixed-size trailing window over a Series (``series.rolling(n)``)."""

    def __init__(self, series: Series, window: int,
                 min_periods: Optional[int] = None):
        if window <= 0:
            raise ValueError("window must be positive")
        self.series = series
        self.window = int(window)
        self.min_periods = int(min_periods) if min_periods is not None \
            else int(window)

    def _apply(self, reducer) -> Series:
        values = np.asarray(self.series.values, dtype=np.float64)
        n = len(values)
        out = np.full(n, np.nan)
        for i in range(n):
            lo = max(i - self.window + 1, 0)
            segment = values[lo:i + 1]
            valid = segment[~np.isnan(segment)]
            if len(valid) >= self.min_periods:
                out[i] = reducer(valid)
        return Series(out, index=self.series.index, name=self.series.name)

    def mean(self) -> Series:
        return self._apply(np.mean)

    def sum(self) -> Series:
        return self._apply(np.sum)

    def min(self) -> Series:
        return self._apply(np.min)

    def max(self) -> Series:
        return self._apply(np.max)

    def std(self, ddof: int = 1) -> Series:
        return self._apply(
            lambda seg: np.std(seg, ddof=ddof) if len(seg) > ddof else np.nan
        )


def rank(series: Series, method: str = "average",
         ascending: bool = True) -> Series:
    """Rank values 1..n; ties resolved by ``method`` (average/min/first)."""
    values = series.values
    na_mask = dtypes.isna_array(values)
    work = np.asarray(
        [0.0 if na_mask[i] else float(values[i]) for i in range(len(values))]
    )
    if not ascending:
        work = -work
    order = np.argsort(work[~na_mask], kind="stable")
    ranks = np.full(len(values), np.nan)
    valid_positions = np.flatnonzero(~na_mask)
    sorted_positions = valid_positions[order]
    sorted_values = work[sorted_positions]
    i = 0
    while i < len(sorted_positions):
        j = i
        while j + 1 < len(sorted_positions) and \
                sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if method == "first":
            for k in range(i, j + 1):
                ranks[sorted_positions[k]] = k + 1
        elif method == "min":
            for k in range(i, j + 1):
                ranks[sorted_positions[k]] = i + 1
        else:  # average
            avg = (i + j) / 2 + 1
            for k in range(i, j + 1):
                ranks[sorted_positions[k]] = avg
        i = j + 1
    return Series(ranks, index=series.index, name=series.name)


def sample(frame: DataFrame, n: Optional[int] = None,
           frac: Optional[float] = None, seed: Optional[int] = None,
           replace: bool = False) -> DataFrame:
    """Random row sample of a frame."""
    if (n is None) == (frac is None):
        raise ValueError("specify exactly one of n / frac")
    total = len(frame)
    count = int(n) if n is not None else int(round(total * frac))
    if count > total and not replace:
        raise ValueError("cannot sample more rows than exist without replace")
    rng = np.random.default_rng(seed)
    indexer = rng.choice(total, size=count, replace=replace)
    if not replace:
        indexer = np.sort(indexer)
    return frame.iloc[indexer]


def corr(frame: DataFrame) -> DataFrame:
    """Pairwise Pearson correlation of the numeric columns."""
    return _pairwise(frame, covariance=False)


def cov(frame: DataFrame) -> DataFrame:
    """Pairwise covariance (ddof=1) of the numeric columns."""
    return _pairwise(frame, covariance=True)


def _pairwise(frame: DataFrame, covariance: bool) -> DataFrame:
    numeric = [
        c for c in frame.columns.to_list()
        if dtypes.is_numeric(frame[c].dtype)
    ]
    if not numeric:
        raise ValueError("no numeric columns")
    matrix = np.column_stack([
        np.asarray(frame[c].values, dtype=np.float64) for c in numeric
    ])
    valid = ~np.isnan(matrix).any(axis=1)
    matrix = matrix[valid]
    if len(matrix) < 2:
        raise ValueError("need at least two complete rows")
    result = np.cov(matrix, rowvar=False, ddof=1)
    result = np.atleast_2d(result)
    if not covariance:
        stds = np.sqrt(np.diag(result))
        denom = np.outer(stds, stds)
        with np.errstate(invalid="ignore", divide="ignore"):
            result = result / denom
    data = {name: result[:, j] for j, name in enumerate(numeric)}
    return DataFrame(data, index=Index(dtypes.object_array(numeric)))
