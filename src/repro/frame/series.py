""":class:`Series` — a labelled 1-D column, the building block of
:class:`repro.frame.DataFrame`.

Semantics follow pandas where the paper's workloads need them: NaN-skipping
reductions, boolean masking, ``map``/``isin``/``value_counts``, and the
``.str``/``.dt`` accessors.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

import numpy as np

from . import dtypes
from .index import Index, RangeIndex, default_index, ensure_index
from .strings import DatetimeMethods, StringMethods


class _SeriesIloc:
    def __init__(self, series: "Series"):
        self._series = series

    def __getitem__(self, item):
        series = self._series
        if isinstance(item, (int, np.integer)):
            return series.values[int(item)]
        if isinstance(item, slice):
            return Series(
                series.values[item], index=series.index[item], name=series.name
            )
        indexer = np.asarray(item)
        if indexer.dtype == bool:
            indexer = np.flatnonzero(indexer)
        return Series(
            series.values[indexer],
            index=series.index.take(indexer),
            name=series.name,
        )


class _SeriesLoc:
    def __init__(self, series: "Series"):
        self._series = series

    def __getitem__(self, item):
        series = self._series
        if isinstance(item, Series) and dtypes.is_bool(item.dtype):
            return series[item]
        if isinstance(item, slice):
            indexer = series.index.slice_indexer(item.start, item.stop)
            return series.iloc[indexer]
        if isinstance(item, (list, np.ndarray)):
            indexer = series.index.get_indexer(list(item))
            return series.iloc[indexer]
        pos = series.index.get_indexer([item])[0]
        return series.values[pos]


class Series:
    """A 1-D labelled array of a single dtype."""

    __slots__ = ("_values", "_index", "name")

    def __init__(self, values: Any, index: Index | Iterable | None = None,
                 name: str | None = None):
        if isinstance(values, Series):
            if index is None:
                index = values._index
            if name is None:
                name = values.name
            values = values._values
        if isinstance(values, (int, float, bool, str, np.generic)) and index is not None:
            idx = ensure_index(index)
            arr = np.full(len(idx), values)
            self._values = dtypes.as_array(arr)
            self._index = idx
            self.name = name
            return
        self._values = dtypes.as_array(values)
        self._index = ensure_index(index, n=len(self._values))
        if len(self._index) != len(self._values):
            raise ValueError(
                f"index length {len(self._index)} != data length {len(self._values)}"
            )
        self.name = name

    # -- basic protocol ------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def index(self) -> Index:
        return self._index

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    @property
    def shape(self) -> tuple[int]:
        return (len(self._values),)

    @property
    def size(self) -> int:
        return len(self._values)

    @property
    def empty(self) -> bool:
        return len(self._values) == 0

    @property
    def nbytes(self) -> int:
        # same numbers as utils.sizeof, without the import/dispatch cost.
        values = self._values
        if values.dtype == object:
            return int(values.size) * 64 + 96 + self._index.nbytes
        return int(values.nbytes) + self._index.nbytes

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __repr__(self) -> str:
        head = ", ".join(
            f"{label!r}: {value!r}"
            for label, value in list(zip(self._index, self._values))[:8]
        )
        suffix = ", ..." if len(self) > 8 else ""
        return f"Series({{{head}{suffix}}}, name={self.name!r}, dtype={self.dtype})"

    # -- selection -----------------------------------------------------------
    @property
    def iloc(self) -> _SeriesIloc:
        return _SeriesIloc(self)

    @property
    def loc(self) -> _SeriesLoc:
        return _SeriesLoc(self)

    def __getitem__(self, item):
        if isinstance(item, Series) and dtypes.is_bool(item.dtype):
            mask = item._values
            return Series(
                self._values[mask],
                index=self._index.take(np.flatnonzero(mask)),
                name=self.name,
            )
        if isinstance(item, np.ndarray) and item.dtype == bool:
            return Series(
                self._values[item],
                index=self._index.take(np.flatnonzero(item)),
                name=self.name,
            )
        return self.loc[item]

    def head(self, n: int = 5) -> "Series":
        return self.iloc[:n]

    def tail(self, n: int = 5) -> "Series":
        return self.iloc[len(self) - min(n, len(self)):]

    def take(self, indexer) -> "Series":
        return self.iloc[np.asarray(indexer)]

    # -- alignment helper ----------------------------------------------------
    def _coerce_operand(self, other):
        if isinstance(other, Series):
            if len(other) != len(self):
                raise ValueError(
                    f"cannot align Series of lengths {len(self)} and {len(other)}"
                )
            return other._values
        if isinstance(other, np.ndarray):
            if other.ndim == 1 and len(other) != len(self):
                raise ValueError("operand length mismatch")
            return other
        return other

    def _binop(self, other, func: Callable, name: str | None = None) -> "Series":
        other_values = self._coerce_operand(other)
        left = self._values
        if dtypes.is_object(left.dtype) and callable(func):
            result = _object_binop(left, other_values, func)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                result = func(left, other_values)
        return Series(result, index=self._index, name=name if name is not None else self.name)

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other):
        return self._binop(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._binop(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._binop(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._binop(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self._binop(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._binop(other, lambda a, b: b * a)

    def __truediv__(self, other):
        return self._binop(other, lambda a, b: np.true_divide(a, b))

    def __rtruediv__(self, other):
        return self._binop(other, lambda a, b: np.true_divide(b, a))

    def __floordiv__(self, other):
        return self._binop(other, lambda a, b: np.floor_divide(a, b))

    def __mod__(self, other):
        return self._binop(other, lambda a, b: np.mod(a, b))

    def __pow__(self, other):
        return self._binop(other, lambda a, b: np.power(a, b))

    def __neg__(self):
        return Series(-self._values, index=self._index, name=self.name)

    def __abs__(self):
        return self.abs()

    # -- comparisons -----------------------------------------------------------
    def _compare(self, other, func: Callable) -> "Series":
        other_values = self._coerce_operand(other)
        if dtypes.is_object(self._values.dtype):
            result = _object_binop(self._values, other_values, func, na_result=False)
            result = np.array([bool(v) for v in result], dtype=bool)
        else:
            with np.errstate(invalid="ignore"):
                result = func(self._values, other_values)
        return Series(np.asarray(result, dtype=bool), index=self._index, name=self.name)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other):
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._compare(other, lambda a, b: a >= b)

    __hash__ = None  # type: ignore[assignment]

    # -- logical ---------------------------------------------------------------
    def __and__(self, other):
        return self._binop(other, lambda a, b: a & b)

    def __or__(self, other):
        return self._binop(other, lambda a, b: a | b)

    def __xor__(self, other):
        return self._binop(other, lambda a, b: a ^ b)

    def __invert__(self):
        return Series(~self._values, index=self._index, name=self.name)

    # -- missing data ------------------------------------------------------------
    def isna(self) -> "Series":
        return Series(dtypes.isna_array(self._values), index=self._index, name=self.name)

    def notna(self) -> "Series":
        return Series(~dtypes.isna_array(self._values), index=self._index, name=self.name)

    def fillna(self, value) -> "Series":
        mask = dtypes.isna_array(self._values)
        if not mask.any():
            return self.copy()
        values = self._values
        if dtypes.is_object(values.dtype) or isinstance(value, str):
            out = values.astype(object).copy()
            out[mask] = value
        else:
            out = values.copy()
            out[mask] = value
        return Series(out, index=self._index, name=self.name)

    def dropna(self) -> "Series":
        mask = ~dtypes.isna_array(self._values)
        return Series(
            self._values[mask], index=self._index.take(np.flatnonzero(mask)), name=self.name
        )

    # -- transforms ---------------------------------------------------------------
    def astype(self, dtype) -> "Series":
        target = np.dtype(dtype)
        values = self._values
        if target == object:
            out = values.astype(object)
        elif dtypes.is_object(values.dtype):
            out = np.array(
                [dtypes.na_value_for(target) if v is None else v for v in values],
                dtype=target,
            )
        else:
            out = values.astype(target)
        return Series(out, index=self._index, name=self.name)

    def abs(self) -> "Series":
        return Series(np.abs(self._values), index=self._index, name=self.name)

    def round(self, decimals: int = 0) -> "Series":
        return Series(np.round(self._values, decimals), index=self._index, name=self.name)

    def clip(self, lower=None, upper=None) -> "Series":
        return Series(np.clip(self._values, lower, upper), index=self._index, name=self.name)

    def map(self, mapper) -> "Series":
        values = self._values
        out = np.empty(len(values), dtype=object)
        if isinstance(mapper, Mapping):
            for i, value in enumerate(values):
                out[i] = mapper.get(value)
        else:
            mask = dtypes.isna_array(values)
            for i, value in enumerate(values):
                out[i] = None if mask[i] else mapper(value)
        return Series(_tighten(out), index=self._index, name=self.name)

    def apply(self, func: Callable) -> "Series":
        out = np.empty(len(self._values), dtype=object)
        for i, value in enumerate(self._values):
            out[i] = func(value)
        return Series(_tighten(out), index=self._index, name=self.name)

    def isin(self, values: Iterable) -> "Series":
        lookup = set(values)
        out = np.fromiter(
            (v in lookup for v in self._values), dtype=bool, count=len(self._values)
        )
        return Series(out, index=self._index, name=self.name)

    def between(self, left, right, inclusive: str = "both") -> "Series":
        if inclusive == "both":
            mask = (self >= left) & (self <= right)
        elif inclusive == "neither":
            mask = (self > left) & (self < right)
        elif inclusive == "left":
            mask = (self >= left) & (self < right)
        elif inclusive == "right":
            mask = (self > left) & (self <= right)
        else:
            raise ValueError(f"invalid inclusive value {inclusive!r}")
        mask.name = self.name
        return mask

    def where(self, cond: "Series", other=np.nan) -> "Series":
        mask = cond._values if isinstance(cond, Series) else np.asarray(cond, dtype=bool)
        values = dtypes.promote_for_na(self._values)
        other_values = other._values if isinstance(other, Series) else other
        out = np.where(mask, values, other_values)
        return Series(out, index=self._index, name=self.name)

    def shift(self, periods: int = 1) -> "Series":
        values = dtypes.promote_for_na(self._values)
        out = np.empty(len(values), dtype=values.dtype if values.dtype.kind == "f" else object)
        na = dtypes.na_value_for(np.dtype(out.dtype))
        if periods >= 0:
            out[:periods] = na
            out[periods:] = values[: len(values) - periods]
        else:
            out[periods:] = na
            out[:periods] = values[-periods:]
        return Series(out, index=self._index, name=self.name)

    def diff(self, periods: int = 1) -> "Series":
        return self - self.shift(periods)

    # -- uniqueness / counting ------------------------------------------------------
    def unique(self) -> np.ndarray:
        values = self._values
        if dtypes.is_object(values.dtype):
            seen: dict = {}
            for value in values:
                key = value if value is not None else "__repro_na__"
                if key not in seen:
                    seen[key] = value
            return np.array(list(seen.values()), dtype=object)
        if dtypes.is_float(values.dtype):
            mask = np.isnan(values)
            uniques = np.unique(values[~mask])
            if mask.any():
                uniques = np.concatenate([uniques, [np.nan]])
            return uniques
        return np.unique(values)

    def nunique(self, dropna: bool = True) -> int:
        uniques = self.unique()
        if dropna:
            return int((~dtypes.isna_array(dtypes.as_array(uniques))).sum())
        return len(uniques)

    def value_counts(self, ascending: bool = False) -> "Series":
        values = self._values
        mask = ~dtypes.isna_array(values)
        kept = values[mask]
        if dtypes.is_object(kept.dtype):
            counts: dict = {}
            for value in kept:
                counts[value] = counts.get(value, 0) + 1
            labels = np.array(list(counts.keys()), dtype=object)
            freq = np.array(list(counts.values()), dtype=np.int64)
        else:
            labels, freq = np.unique(kept, return_counts=True)
        order = np.argsort(freq, kind="stable")
        if not ascending:
            order = order[::-1]
        return Series(freq[order], index=Index(labels[order], name=self.name), name="count")

    def duplicated(self, keep: str = "first") -> "Series":
        seen: set = set()
        out = np.zeros(len(self._values), dtype=bool)
        order = range(len(self._values)) if keep != "last" else range(len(self._values) - 1, -1, -1)
        for i in order:
            value = self._values[i]
            key = value if not isinstance(value, np.ndarray) else value.tobytes()
            if key in seen:
                out[i] = True
            else:
                seen.add(key)
        return Series(out, index=self._index, name=self.name)

    def drop_duplicates(self, keep: str = "first") -> "Series":
        mask = ~self.duplicated(keep=keep)._values
        return Series(
            self._values[mask], index=self._index.take(np.flatnonzero(mask)), name=self.name
        )

    # -- sorting ---------------------------------------------------------------------
    def sort_values(self, ascending: bool = True, na_position: str = "last") -> "Series":
        from .sorting import argsort_values

        order = argsort_values(self._values, ascending=ascending, na_position=na_position)
        return self.iloc[order]

    def sort_index(self, ascending: bool = True) -> "Series":
        order = self._index.argsort()
        if not ascending:
            order = order[::-1]
        return self.iloc[order]

    def nlargest(self, n: int = 5) -> "Series":
        return self.sort_values(ascending=False).head(n)

    def nsmallest(self, n: int = 5) -> "Series":
        return self.sort_values(ascending=True).head(n)

    def argsort(self) -> np.ndarray:
        from .sorting import argsort_values

        return argsort_values(self._values, ascending=True, na_position="last")

    def idxmax(self):
        values = dtypes.promote_for_na(self._values).astype(np.float64)
        return self._index[int(np.nanargmax(values))]

    def idxmin(self):
        values = dtypes.promote_for_na(self._values).astype(np.float64)
        return self._index[int(np.nanargmin(values))]

    # -- reductions ---------------------------------------------------------------------
    def _numeric_for_reduce(self) -> np.ndarray:
        values = self._values
        if dtypes.is_object(values.dtype):
            raise TypeError(f"cannot reduce object-dtype Series {self.name!r} numerically")
        return values

    def sum(self, skipna: bool = True):
        values = self._values
        if dtypes.is_object(values.dtype):
            kept = [v for v in values if v is not None]
            total = kept[0] if kept else 0
            for v in kept[1:]:
                total = total + v
            return total
        if dtypes.is_bool(values.dtype):
            return int(values.sum())
        return np.nansum(values) if skipna else values.sum()

    def prod(self, skipna: bool = True):
        values = self._numeric_for_reduce()
        return np.nanprod(values) if skipna else values.prod()

    def mean(self, skipna: bool = True):
        values = self._numeric_for_reduce().astype(np.float64)
        if len(values) == 0:
            return np.nan
        return np.nanmean(values) if skipna else values.mean()

    def median(self, skipna: bool = True):
        values = self._numeric_for_reduce().astype(np.float64)
        if len(values) == 0:
            return np.nan
        return np.nanmedian(values) if skipna else np.median(values)

    def min(self, skipna: bool = True):
        values = self._values
        if len(values) == 0:
            return np.nan
        if dtypes.is_object(values.dtype):
            kept = [v for v in values if v is not None]
            return min(kept) if kept else None
        if values.dtype.kind == "M":
            return values[~np.isnat(values)].min() if skipna else values.min()
        return np.nanmin(values) if skipna and values.dtype.kind == "f" else values.min()

    def max(self, skipna: bool = True):
        values = self._values
        if len(values) == 0:
            return np.nan
        if dtypes.is_object(values.dtype):
            kept = [v for v in values if v is not None]
            return max(kept) if kept else None
        if values.dtype.kind == "M":
            return values[~np.isnat(values)].max() if skipna else values.max()
        return np.nanmax(values) if skipna and values.dtype.kind == "f" else values.max()

    def count(self) -> int:
        return int((~dtypes.isna_array(self._values)).sum())

    def var(self, ddof: int = 1):
        values = self._numeric_for_reduce().astype(np.float64)
        n = int((~np.isnan(values)).sum())
        if n - ddof <= 0:
            return np.nan
        return np.nanvar(values, ddof=ddof)

    def std(self, ddof: int = 1):
        result = self.var(ddof=ddof)
        return np.sqrt(result) if not np.isnan(result) else np.nan

    def any(self) -> bool:
        return bool(np.any(self._values))

    def all(self) -> bool:
        return bool(np.all(self._values))

    def quantile(self, q: float = 0.5):
        values = self._numeric_for_reduce().astype(np.float64)
        kept = values[~np.isnan(values)]
        if len(kept) == 0:
            return np.nan
        return float(np.quantile(kept, q))

    def cumsum(self) -> "Series":
        values = self._numeric_for_reduce()
        if dtypes.is_float(values.dtype):
            mask = np.isnan(values)
            filled = np.where(mask, 0.0, values)
            out = np.cumsum(filled)
            out[mask] = np.nan
        else:
            out = np.cumsum(values)
        return Series(out, index=self._index, name=self.name)

    def cummax(self) -> "Series":
        values = self._numeric_for_reduce()
        return Series(np.maximum.accumulate(values), index=self._index, name=self.name)

    def cummin(self) -> "Series":
        values = self._numeric_for_reduce()
        return Series(np.minimum.accumulate(values), index=self._index, name=self.name)

    # -- accessors & conversion -------------------------------------------------------
    @property
    def str(self) -> StringMethods:
        return StringMethods(self)

    @property
    def dt(self) -> DatetimeMethods:
        return DatetimeMethods(self)

    def to_frame(self, name: str | None = None):
        from .dataframe import DataFrame

        col = name if name is not None else (self.name if self.name is not None else 0)
        return DataFrame({col: self._values}, index=self._index)

    def to_numpy(self) -> np.ndarray:
        return self._values.copy()

    def to_list(self) -> list:
        return self._values.tolist()

    def tolist(self) -> list:
        return self.to_list()

    def copy(self) -> "Series":
        return Series(self._values.copy(), index=self._index.copy(), name=self.name)

    def rename(self, name: str) -> "Series":
        return Series(self._values, index=self._index, name=name)

    def reset_index(self, drop: bool = False):
        if drop:
            return Series(self._values, index=default_index(len(self)), name=self.name)
        frame = self.to_frame()
        return frame.reset_index()

    def equals(self, other: "Series") -> bool:
        if not isinstance(other, Series):
            return False
        if len(self) != len(other):
            return False
        return dtypes.values_equal(self._values, other._values) and self._index.equals(
            other._index
        )

    def groupby(self, by):
        from .groupby import SeriesGroupBy

        return SeriesGroupBy(self, by)

    def rolling(self, window: int, min_periods=None):
        from .window import Rolling

        return Rolling(self, window, min_periods=min_periods)

    def rank(self, method: str = "average", ascending: bool = True) -> "Series":
        from .window import rank

        return rank(self, method=method, ascending=ascending)


def _object_binop(left: np.ndarray, right, func: Callable, na_result=None) -> np.ndarray:
    """Apply ``func`` elementwise over an object array, propagating NA."""
    out = np.empty(len(left), dtype=object)
    right_is_seq = isinstance(right, np.ndarray)
    for i, lv in enumerate(left):
        rv = right[i] if right_is_seq else right
        if lv is None or rv is None:
            out[i] = na_result
        else:
            out[i] = func(lv, rv)
    return out


def _tighten(arr: np.ndarray) -> np.ndarray:
    """Convert an object array to a specialized dtype when possible."""
    if len(arr) == 0:
        return arr
    kinds = {type(v) for v in arr}
    if kinds <= {bool}:
        return arr.astype(bool)
    if kinds <= {int, bool}:
        return arr.astype(np.int64)
    if kinds <= {int, float, bool} or kinds <= {int, float, bool, type(None)}:
        return np.array([np.nan if v is None else v for v in arr], dtype=np.float64)
    return arr
