"""Row/column label containers: :class:`Index`, :class:`RangeIndex`,
and a tuple-based :class:`MultiIndex`.

The distributed layer (Section III-C, "Indexing and Ordering") relies on
each chunk carrying its own index so that label- and position-based
operators (``loc``, ``iloc``) can be reassembled globally.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from . import dtypes


class Index:
    """An immutable 1-D array of row or column labels."""

    __slots__ = ("_values", "name")

    def __init__(self, values: Any, name: str | None = None):
        self._values = dtypes.as_array(values)
        self.name = name

    # -- basic protocol ------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def nbytes(self) -> int:
        if self.values.dtype == object:
            return len(self.values) * 64
        return int(self.values.nbytes)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            return self.values[item]
        return type(self)(self.values[item], name=self.name)

    def __contains__(self, label) -> bool:
        return bool(np.any(self.values == label))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self.values[:10])!r}{'...' if len(self) > 10 else ''}, name={self.name!r})"

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if not isinstance(other, Index):
            return NotImplemented
        return self.equals(other)

    def __hash__(self):  # indexes are used in sets keyed by identity
        return id(self)

    # -- operations ----------------------------------------------------------
    def equals(self, other: "Index") -> bool:
        """Value equality, ignoring names (like pandas ``Index.equals``)."""
        if len(self) != len(other):
            return False
        return dtypes.values_equal(self.values, other.values)

    def take(self, indexer: np.ndarray) -> "Index":
        return Index(self.values[indexer], name=self.name)

    def append(self, other: "Index") -> "Index":
        dtype = dtypes.common_dtype([self.dtype, other.dtype])
        values = np.concatenate(
            [self.values.astype(dtype), other.values.astype(dtype)]
        )
        name = self.name if self.name == other.name else None
        return Index(values, name=name)

    def get_indexer(self, labels: Sequence) -> np.ndarray:
        """Position of each label; raises KeyError on a missing label."""
        positions = {}
        for pos, value in enumerate(self.values):
            if value not in positions:
                positions[value] = pos
        out = np.empty(len(labels), dtype=np.int64)
        for i, label in enumerate(labels):
            if label not in positions:
                raise KeyError(label)
            out[i] = positions[label]
        return out

    def slice_indexer(self, start, stop) -> np.ndarray:
        """Positions for a label slice ``start:stop`` (both inclusive)."""
        mask = np.ones(len(self), dtype=bool)
        if start is not None:
            first = np.flatnonzero(self.values == start)
            if len(first) == 0:
                raise KeyError(start)
            mask[: first[0]] = False
        if stop is not None:
            last = np.flatnonzero(self.values == stop)
            if len(last) == 0:
                raise KeyError(stop)
            mask[last[-1] + 1:] = False
        return np.flatnonzero(mask)

    def argsort(self) -> np.ndarray:
        if self.dtype == object:
            return np.array(
                sorted(range(len(self)), key=lambda i: _sort_key(self.values[i])),
                dtype=np.int64,
            )
        return np.argsort(self.values, kind="stable")

    def is_monotonic_increasing(self) -> bool:
        if len(self) <= 1:
            return True
        values = self.values
        if self.dtype == object:
            return all(
                not (_sort_key(values[i + 1]) < _sort_key(values[i]))
                for i in range(len(values) - 1)
            )
        return bool(np.all(values[1:] >= values[:-1]))

    def copy(self) -> "Index":
        return Index(self.values.copy(), name=self.name)

    def to_list(self) -> list:
        return self.values.tolist()


def _sort_key(value):
    """Total order over heterogeneous labels: group by type name first."""
    if isinstance(value, tuple):
        return tuple(_sort_key(v) for v in value)
    return (type(value).__name__, value)


class RangeIndex(Index):
    """The default ``0..n-1`` index, stored lazily."""

    __slots__ = ("start", "stop")

    def __init__(self, stop: int, start: int = 0, name: str | None = None):
        if stop < start:
            stop = start
        self.start = int(start)
        self.stop = int(stop)
        self.name = name
        self._values = None  # type: ignore[assignment]

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            self._values = np.arange(self.start, self.stop, dtype=np.int64)
        return self._values

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.int64)

    @property
    def nbytes(self) -> int:
        return 32

    def __len__(self) -> int:
        return self.stop - self.start

    def __iter__(self):
        return iter(range(self.start, self.stop))

    def __getitem__(self, item):
        if isinstance(item, (int, np.integer)):
            idx = int(item)
            if idx < 0:
                idx += len(self)
            if not 0 <= idx < len(self):
                raise IndexError(item)
            return self.start + idx
        return Index(self.values[item], name=self.name)

    def __contains__(self, label) -> bool:
        return isinstance(label, (int, np.integer)) and self.start <= label < self.stop

    def equals(self, other: "Index") -> bool:
        if isinstance(other, RangeIndex):
            if len(self) == len(other) == 0:
                return True
            return self.start == other.start and self.stop == other.stop
        return super().equals(other)

    def take(self, indexer: np.ndarray) -> Index:
        return Index(self.values[indexer], name=self.name)

    def argsort(self) -> np.ndarray:
        return np.arange(len(self), dtype=np.int64)

    def is_monotonic_increasing(self) -> bool:
        return True

    def copy(self) -> "RangeIndex":
        return RangeIndex(self.stop, start=self.start, name=self.name)


class MultiIndex(Index):
    """A hierarchical index stored as an object array of tuples."""

    __slots__ = ("names",)

    def __init__(self, tuples: Iterable[tuple], names: Sequence[str | None] | None = None):
        values = np.empty(len(list_ := list(tuples)), dtype=object)
        for i, tup in enumerate(list_):
            values[i] = tuple(tup)
        self._values = values
        self.names = list(names) if names is not None else []
        self.name = None

    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray], names: Sequence[str | None] | None = None) -> "MultiIndex":
        if not arrays:
            raise ValueError("from_arrays requires at least one array")
        length = len(arrays[0])
        if any(len(a) != length for a in arrays):
            raise ValueError("all arrays must have equal length")
        tuples = list(zip(*[dtypes.as_array(a).tolist() for a in arrays]))
        return cls(tuples, names=names)

    @property
    def nlevels(self) -> int:
        if len(self._values):
            return len(self._values[0])
        return len(self.names)

    def get_level_values(self, level: int | str) -> Index:
        if isinstance(level, str):
            level = self.names.index(level)
        values = np.array([tup[level] for tup in self._values], dtype=object)
        name = self.names[level] if level < len(self.names) else None
        return Index(values, name=name)

    def take(self, indexer: np.ndarray) -> "MultiIndex":
        return MultiIndex(self._values[indexer].tolist(), names=self.names)

    def append(self, other: Index) -> Index:
        if isinstance(other, MultiIndex):
            return MultiIndex(
                self._values.tolist() + other.values.tolist(),
                names=self.names if self.names == other.names else [],
            )
        return super().append(other)

    def copy(self) -> "MultiIndex":
        return MultiIndex(self._values.tolist(), names=list(self.names))


def default_index(n: int) -> RangeIndex:
    """The index a new frame gets when none is supplied."""
    return RangeIndex(n)


def ensure_index(value, n: int | None = None) -> Index:
    """Coerce user input to an :class:`Index`.

    ``None`` becomes a :class:`RangeIndex` of length ``n``.
    """
    if value is None:
        if n is None:
            raise ValueError("cannot build a default index without a length")
        return default_index(n)
    if isinstance(value, Index):
        return value
    return Index(value)
