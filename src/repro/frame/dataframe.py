""":class:`DataFrame` — a labelled 2-D table of typed columns.

This is the single-node execution backend of the distributed engine,
standing in for pandas: the distributed ``repro.dataframe`` operators call
into these kernels on each chunk.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from . import dtypes
from .index import Index, RangeIndex, default_index, ensure_index
from .series import Series
from .sorting import lexsort_columns


class _ILoc:
    """Positional indexing: ``df.iloc[rows]`` or ``df.iloc[rows, cols]``."""

    def __init__(self, frame: "DataFrame"):
        self._frame = frame

    def __getitem__(self, item):
        frame = self._frame
        if isinstance(item, tuple):
            rows, cols = item
        else:
            rows, cols = item, slice(None)
        col_names = _resolve_positional_columns(frame, cols)
        if isinstance(rows, (int, np.integer)):
            row = int(rows)
            if row < 0:
                row += len(frame)
            if not 0 <= row < len(frame):
                raise IndexError(f"row {rows} out of bounds for length {len(frame)}")
            if isinstance(cols, (int, np.integer)):
                return frame._data[col_names[0]][row]
            values = dtypes.object_array(
                frame._data[name][row] for name in col_names
            )
            return Series(values, index=Index(dtypes.object_array(col_names)),
                          name=frame.index[row])
        if isinstance(rows, slice):
            indexer = np.arange(len(frame))[rows]
        else:
            indexer = np.asarray(rows)
            if indexer.dtype == bool:
                indexer = np.flatnonzero(indexer)
        if isinstance(cols, (int, np.integer)):
            name = col_names[0]
            return Series(frame._data[name][indexer],
                          index=frame.index.take(indexer), name=name)
        data = {name: frame._data[name][indexer] for name in col_names}
        return DataFrame._new(data, frame.index.take(indexer), list(col_names))


class _Loc:
    """Label indexing: ``df.loc[labels]``, ``df.loc[mask, cols]``."""

    def __init__(self, frame: "DataFrame"):
        self._frame = frame

    def __getitem__(self, item):
        frame = self._frame
        if isinstance(item, tuple):
            rows, cols = item
        else:
            rows, cols = item, slice(None)
        if isinstance(cols, slice) and cols == slice(None):
            col_names = list(frame.columns)
        elif isinstance(cols, str):
            col_names = [cols]
        else:
            col_names = list(cols)
        if isinstance(rows, Series) and dtypes.is_bool(rows.dtype):
            indexer = np.flatnonzero(rows.values)
        elif isinstance(rows, np.ndarray) and rows.dtype == bool:
            indexer = np.flatnonzero(rows)
        elif isinstance(rows, slice):
            indexer = frame.index.slice_indexer(rows.start, rows.stop)
        elif isinstance(rows, (list, np.ndarray)):
            indexer = frame.index.get_indexer(list(rows))
        else:
            indexer = frame.index.get_indexer([rows])
            if isinstance(cols, str):
                return frame._data[cols][indexer[0]]
            values = dtypes.object_array(
                frame._data[name][indexer[0]] for name in col_names
            )
            return Series(values, index=Index(dtypes.object_array(col_names)),
                          name=rows)
        if isinstance(cols, str):
            return Series(frame._data[cols][indexer],
                          index=frame.index.take(indexer), name=cols)
        data = {name: frame._data[name][indexer] for name in col_names}
        return DataFrame(data, index=frame.index.take(indexer), columns=col_names)

    def __setitem__(self, item, value):
        frame = self._frame
        if not isinstance(item, tuple):
            raise TypeError("loc assignment requires df.loc[rows, col] = value")
        rows, col = item
        if isinstance(rows, Series):
            mask = rows.values
        else:
            mask = np.asarray(rows, dtype=bool)
        if col not in frame._data:
            frame[col] = np.nan
        column = frame._data[col]
        if isinstance(value, str) and not dtypes.is_object(column.dtype):
            column = column.astype(object)
        elif (isinstance(value, float) or (isinstance(value, Series)
              and dtypes.is_float(value.dtype))) and dtypes.is_integer(column.dtype):
            column = column.astype(np.float64)
        column = column.copy()
        if isinstance(value, Series):
            column[mask] = value.values[mask]
        else:
            column[mask] = value
        frame._data[col] = column


def _resolve_positional_columns(frame: "DataFrame", cols) -> list:
    names = list(frame.columns)
    if isinstance(cols, slice):
        return names[cols]
    if isinstance(cols, (int, np.integer)):
        return [names[int(cols)]]
    return [names[int(c)] for c in cols]


class DataFrame:
    """A 2-D table: ordered, named, typed columns over a shared row index."""

    __slots__ = ("_data", "_index", "_columns")

    def __init__(self, data: Any = None,
                 index: Index | Iterable | None = None,
                 columns: Sequence | None = None):
        if data is None:
            data = {}
        if isinstance(data, DataFrame):
            src = data
            data = {name: src._data[name] for name in src.columns}
            if index is None:
                index = src._index
        if isinstance(data, np.ndarray):
            if data.ndim != 2:
                raise ValueError("2-D array required to build a DataFrame")
            if columns is None:
                columns = list(range(data.shape[1]))
            data = {name: data[:, i] for i, name in enumerate(columns)}
        if isinstance(data, list):
            data = _records_to_columns(data, columns)
            columns = list(data.keys())
        if not isinstance(data, Mapping):
            raise TypeError(f"cannot build a DataFrame from {type(data).__name__}")

        arrays: dict[Any, np.ndarray] = {}
        n_rows: int | None = None
        for name, values in data.items():
            if isinstance(values, Series):
                values = values.values
            if np.isscalar(values) or values is None:
                arrays[name] = values  # broadcast later once length is known
                continue
            arr = dtypes.as_array(values)
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {n_rows}"
                )
            arrays[name] = arr
        if n_rows is None:
            n_rows = 0 if index is None else len(ensure_index(index))
        for name, values in arrays.items():
            if np.isscalar(values) or values is None:
                arrays[name] = dtypes.as_array(np.full(n_rows, values))

        self._data = arrays
        self._index = ensure_index(index, n=n_rows)
        if len(self._index) != n_rows:
            raise ValueError(
                f"index length {len(self._index)} != data length {n_rows}"
            )
        if columns is not None:
            ordered = list(columns)
            missing = [c for c in ordered if c not in arrays]
            if missing:
                raise KeyError(f"columns not in data: {missing}")
            self._columns = ordered
        else:
            self._columns = list(arrays.keys())

    @classmethod
    def _new(cls, data: dict, index: Index, columns: list) -> "DataFrame":
        """Internal fast constructor: callers guarantee aligned 1-D arrays.

        Hot paths (filtering, slicing, joins) construct thousands of small
        frames; this skips the public constructor's coercion/validation.
        """
        frame = cls.__new__(cls)
        frame._data = data
        frame._index = index
        frame._columns = columns
        return frame

    # -- basic protocol ---------------------------------------------------------
    @property
    def index(self) -> Index:
        return self._index

    @property
    def columns(self) -> Index:
        return Index(dtypes.object_array(self._columns))

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self._index), len(self._columns))

    @property
    def dtypes(self) -> Series:
        return Series(
            dtypes.object_array(self._data[c].dtype for c in self._columns),
            index=Index(dtypes.object_array(self._columns)),
        )

    @property
    def empty(self) -> bool:
        return len(self._index) == 0 or not self._columns

    @property
    def values(self) -> np.ndarray:
        if not self._columns:
            return np.empty((len(self._index), 0))
        dtype = dtypes.common_dtype([self._data[c].dtype for c in self._columns])
        out = np.empty((len(self._index), len(self._columns)), dtype=dtype)
        for i, name in enumerate(self._columns):
            out[:, i] = self._data[name]
        return out

    @property
    def nbytes(self) -> int:
        # inlined per-column sizing (same numbers as utils.sizeof): this
        # runs once per chunk per subtask on the executor's hot path.
        total = self._index.nbytes + 64
        for name in self._columns:
            arr = self._data[name]
            if arr.dtype == object:
                total += int(arr.size) * 64 + 96
            else:
                total += int(arr.nbytes)
        return total

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name) -> bool:
        return name in self._data

    def __iter__(self):
        return iter(self._columns)

    def __repr__(self) -> str:
        return self.to_string(max_rows=10)

    def to_string(self, max_rows: int = 30) -> str:
        """Plain-text rendering of (the head of) the frame."""
        n = min(len(self), max_rows)
        headers = ["" if self._index.name is None else str(self._index.name)]
        headers += [str(c) for c in self._columns]
        rows = []
        index_values = [self._index[i] for i in range(n)]
        for i in range(n):
            row = [str(index_values[i])]
            row += [_format_cell(self._data[c][i]) for c in self._columns]
            rows.append(row)
        widths = [max(len(h), *(len(r[j]) for r in rows)) if rows else len(h)
                  for j, h in enumerate(headers)]
        lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
        for row in rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if len(self) > n:
            lines.append(f"... [{len(self)} rows x {len(self._columns)} columns]")
        return "\n".join(lines)

    # -- selection ------------------------------------------------------------------
    def __getitem__(self, item):
        if isinstance(item, str) or (not isinstance(item, (list, np.ndarray, Series, slice))
                                     and item in self._data):
            if item not in self._data:
                raise KeyError(item)
            return Series(self._data[item], index=self._index, name=item)
        if isinstance(item, Series) and dtypes.is_bool(item.dtype):
            return self._filter_mask(item.values)
        if isinstance(item, np.ndarray) and item.dtype == bool:
            return self._filter_mask(item)
        if isinstance(item, list):
            missing = [c for c in item if c not in self._data]
            if missing:
                raise KeyError(f"columns not found: {missing}")
            data = {name: self._data[name] for name in item}
            return DataFrame._new(data, self._index, list(item))
        if isinstance(item, slice):
            return self.iloc[item]
        raise KeyError(item)

    def _filter_mask(self, mask: np.ndarray) -> "DataFrame":
        if len(mask) != len(self):
            raise ValueError("boolean mask length mismatch")
        indexer = np.flatnonzero(mask)
        data = {name: self._data[name][indexer] for name in self._columns}
        return DataFrame._new(data, self._index.take(indexer),
                              list(self._columns))

    def __setitem__(self, name, value):
        if isinstance(value, Series):
            if len(value) != len(self) and len(self._columns) > 0:
                raise ValueError("cannot assign Series of different length")
            arr = value.values
        elif np.isscalar(value) or value is None:
            arr = dtypes.as_array(np.full(len(self), value))
        else:
            arr = dtypes.as_array(value)
            if len(self._columns) > 0 and len(arr) != len(self):
                raise ValueError(
                    f"length mismatch: assigning {len(arr)} values to {len(self)} rows"
                )
        if not self._columns and len(self._index) == 0:
            self._index = default_index(len(arr))
        self._data[name] = arr
        if name not in self._columns:
            self._columns.append(name)

    @property
    def iloc(self) -> _ILoc:
        return _ILoc(self)

    @property
    def loc(self) -> _Loc:
        return _Loc(self)

    def head(self, n: int = 5) -> "DataFrame":
        return self.iloc[:n]

    def tail(self, n: int = 5) -> "DataFrame":
        return self.iloc[len(self) - min(n, len(self)):]

    def take(self, indexer) -> "DataFrame":
        return self.iloc[np.asarray(indexer)]

    def get(self, name, default=None):
        if name in self._data:
            return self[name]
        return default

    def select_dtypes(self, include: str) -> "DataFrame":
        if include == "number":
            keep = [c for c in self._columns if dtypes.is_numeric(self._data[c].dtype)]
        elif include == "object":
            keep = [c for c in self._columns if dtypes.is_object(self._data[c].dtype)]
        else:
            raise ValueError(f"unsupported include={include!r}")
        return self[keep]

    # -- column mutation ----------------------------------------------------------------
    def assign(self, **new_columns) -> "DataFrame":
        out = self.copy()
        for name, value in new_columns.items():
            if callable(value):
                value = value(out)
            out[name] = value
        return out

    def rename(self, columns: Mapping | None = None) -> "DataFrame":
        if columns is None:
            return self.copy()
        new_names = [columns.get(c, c) for c in self._columns]
        data = {new: self._data[old] for new, old in zip(new_names, self._columns)}
        return DataFrame(data, index=self._index, columns=new_names)

    def drop(self, labels=None, columns=None, index=None) -> "DataFrame":
        if columns is None and labels is not None:
            columns = labels
        if columns is not None:
            if isinstance(columns, str):
                columns = [columns]
            missing = [c for c in columns if c not in self._data]
            if missing:
                raise KeyError(f"columns not found: {missing}")
            keep = [c for c in self._columns if c not in set(columns)]
            return self[keep]
        if index is not None:
            if np.isscalar(index):
                index = [index]
            drop_positions = set(self._index.get_indexer(list(index)).tolist())
            mask = np.array([i not in drop_positions for i in range(len(self))])
            return self._filter_mask(mask)
        return self.copy()

    def astype(self, dtype) -> "DataFrame":
        out = self.copy()
        if isinstance(dtype, Mapping):
            for name, target in dtype.items():
                out._data[name] = out[name].astype(target).values
        else:
            for name in out._columns:
                out._data[name] = out[name].astype(dtype).values
        return out

    def copy(self) -> "DataFrame":
        data = {name: self._data[name].copy() for name in self._columns}
        return DataFrame(data, index=self._index.copy(), columns=list(self._columns))

    # -- missing data ---------------------------------------------------------------------
    def isna(self) -> "DataFrame":
        data = {name: dtypes.isna_array(self._data[name]) for name in self._columns}
        return DataFrame(data, index=self._index, columns=self._columns)

    def notna(self) -> "DataFrame":
        data = {name: ~dtypes.isna_array(self._data[name]) for name in self._columns}
        return DataFrame(data, index=self._index, columns=self._columns)

    def fillna(self, value) -> "DataFrame":
        out = self.copy()
        if isinstance(value, Mapping):
            for name, fill in value.items():
                if name in out._data:
                    out._data[name] = out[name].fillna(fill).values
        else:
            for name in out._columns:
                out._data[name] = out[name].fillna(value).values
        return out

    def dropna(self, subset: Sequence | None = None, how: str = "any") -> "DataFrame":
        names = list(subset) if subset is not None else list(self._columns)
        masks = np.column_stack(
            [dtypes.isna_array(self._data[name]) for name in names]
        ) if names else np.zeros((len(self), 0), dtype=bool)
        if how == "any":
            drop = masks.any(axis=1)
        elif how == "all":
            drop = masks.all(axis=1) if names else np.zeros(len(self), dtype=bool)
        else:
            raise ValueError(f"invalid how={how!r}")
        return self._filter_mask(~drop)

    # -- index manipulation -------------------------------------------------------------------
    def reset_index(self, drop: bool = False) -> "DataFrame":
        from .index import MultiIndex

        if drop:
            out = self.copy()
            out._index = default_index(len(out))
            return out
        data: dict = {}
        if isinstance(self._index, MultiIndex):
            names = self._index.names or [
                f"level_{i}" for i in range(self._index.nlevels)
            ]
            for level, name in enumerate(names):
                data[name if name is not None else f"level_{level}"] = (
                    self._index.get_level_values(level).values
                )
        else:
            name = self._index.name if self._index.name is not None else "index"
            data[name] = self._index.values
        for col in self._columns:
            data[col] = self._data[col]
        return DataFrame(data, index=default_index(len(self)))

    def set_index(self, keys, drop: bool = True) -> "DataFrame":
        from .index import MultiIndex

        if isinstance(keys, str):
            new_index: Index = Index(self._data[keys], name=keys)
            dropped = [keys]
        else:
            arrays = [self._data[k] for k in keys]
            new_index = MultiIndex.from_arrays(arrays, names=list(keys))
            dropped = list(keys)
        keep = [c for c in self._columns if not (drop and c in dropped)]
        data = {name: self._data[name] for name in keep}
        return DataFrame(data, index=new_index, columns=keep)

    # -- sorting / dedup --------------------------------------------------------------------------
    def sort_values(self, by, ascending=True, na_position: str = "last") -> "DataFrame":
        if isinstance(by, str):
            by = [by]
        if isinstance(ascending, bool):
            ascending = [ascending] * len(by)
        if len(ascending) != len(by):
            raise ValueError("ascending must match the number of sort keys")
        missing = [k for k in by if k not in self._data]
        if missing:
            raise KeyError(f"sort keys not found: {missing}")
        indexer = lexsort_columns(
            [self._data[k] for k in by], list(ascending), na_position=na_position
        )
        return self.iloc[indexer]

    def sort_index(self, ascending: bool = True) -> "DataFrame":
        order = self._index.argsort()
        if not ascending:
            order = order[::-1]
        return self.iloc[order]

    def nlargest(self, n: int, columns) -> "DataFrame":
        return self.sort_values(columns, ascending=False).head(n)

    def nsmallest(self, n: int, columns) -> "DataFrame":
        return self.sort_values(columns, ascending=True).head(n)

    def duplicated(self, subset: Sequence | None = None, keep: str = "first") -> Series:
        names = list(subset) if subset is not None else list(self._columns)
        seen: set = set()
        out = np.zeros(len(self), dtype=bool)
        order = range(len(self)) if keep != "last" else range(len(self) - 1, -1, -1)
        for i in order:
            key = tuple(self._data[name][i] for name in names)
            if key in seen:
                out[i] = True
            else:
                seen.add(key)
        return Series(out, index=self._index)

    def drop_duplicates(self, subset: Sequence | None = None, keep: str = "first") -> "DataFrame":
        mask = ~self.duplicated(subset=subset, keep=keep).values
        return self._filter_mask(mask)

    # -- joins / grouping ------------------------------------------------------------------------------
    def merge(self, right: "DataFrame", how: str = "inner", on=None,
              left_on=None, right_on=None, suffixes: tuple[str, str] = ("_x", "_y"),
              sort: bool = False) -> "DataFrame":
        from .join import merge

        return merge(self, right, how=how, on=on, left_on=left_on,
                     right_on=right_on, suffixes=suffixes, sort=sort)

    def join(self, right: "DataFrame", how: str = "left",
             lsuffix: str = "", rsuffix: str = "") -> "DataFrame":
        from .join import join_on_index

        return join_on_index(self, right, how=how, lsuffix=lsuffix, rsuffix=rsuffix)

    def groupby(self, by, as_index: bool = True, sort: bool = True):
        from .groupby import DataFrameGroupBy

        return DataFrameGroupBy(self, by, as_index=as_index, sort=sort)

    def pivot_table(self, values=None, index=None, columns=None, aggfunc="mean"):
        from .pivot import pivot_table

        return pivot_table(self, values=values, index=index, columns=columns,
                           aggfunc=aggfunc)

    # -- reductions ------------------------------------------------------------------------------
    def _reduce(self, method: str, numeric_only: bool = True, **kwargs) -> Series:
        names, results = [], []
        for name in self._columns:
            series = self[name]
            if numeric_only and not dtypes.is_numeric(series.dtype):
                continue
            names.append(name)
            results.append(getattr(series, method)(**kwargs))
        return Series(
            np.array(results, dtype=np.float64 if results else object),
            index=Index(dtypes.object_array(names)),
        )

    def sum(self, numeric_only: bool = True) -> Series:
        return self._reduce("sum", numeric_only=numeric_only)

    def mean(self, numeric_only: bool = True) -> Series:
        return self._reduce("mean", numeric_only=numeric_only)

    def min(self, numeric_only: bool = True) -> Series:
        return self._reduce("min", numeric_only=numeric_only)

    def max(self, numeric_only: bool = True) -> Series:
        return self._reduce("max", numeric_only=numeric_only)

    def median(self, numeric_only: bool = True) -> Series:
        return self._reduce("median", numeric_only=numeric_only)

    def std(self, numeric_only: bool = True, ddof: int = 1) -> Series:
        return self._reduce("std", numeric_only=numeric_only, ddof=ddof)

    def var(self, numeric_only: bool = True, ddof: int = 1) -> Series:
        return self._reduce("var", numeric_only=numeric_only, ddof=ddof)

    def count(self) -> Series:
        names = list(self._columns)
        values = np.array([self[name].count() for name in names], dtype=np.int64)
        return Series(values, index=Index(dtypes.object_array(names)))

    def nunique(self) -> Series:
        names = list(self._columns)
        values = np.array([self[name].nunique() for name in names], dtype=np.int64)
        return Series(values, index=Index(dtypes.object_array(names)))

    def describe(self) -> "DataFrame":
        from .describe import describe

        return describe(self)

    # -- function application -----------------------------------------------------------------------------
    def apply(self, func: Callable, axis: int = 0):
        if axis == 0:
            results = {name: func(self[name]) for name in self._columns}
            if all(isinstance(v, Series) for v in results.values()):
                return DataFrame(
                    {k: v.values for k, v in results.items()}, index=self._index
                )
            return Series(
                dtypes.object_array(results[name] for name in self._columns),
                index=Index(dtypes.object_array(self._columns)),
            )
        out = np.empty(len(self), dtype=object)
        for i, (_, row) in enumerate(self.iterrows()):
            out[i] = func(row)
        from .series import _tighten

        return Series(_tighten(out), index=self._index)

    def iterrows(self):
        for i in range(len(self)):
            yield self._index[i], self.iloc[i]

    def itertuples(self, index: bool = True):
        arrays = [self._data[name] for name in self._columns]
        for i in range(len(self)):
            row = tuple(arr[i] for arr in arrays)
            if index:
                yield (self._index[i],) + row
            else:
                yield row

    # -- elementwise arithmetic on whole frames -------------------------------------------------------------
    def _frame_binop(self, other, func: Callable) -> "DataFrame":
        data = {}
        if isinstance(other, DataFrame):
            for name in self._columns:
                data[name] = func(self._data[name], other._data[name])
        else:
            for name in self._columns:
                data[name] = func(self._data[name], other)
        return DataFrame(data, index=self._index, columns=self._columns)

    def __add__(self, other):
        return self._frame_binop(other, lambda a, b: a + b)

    def __sub__(self, other):
        return self._frame_binop(other, lambda a, b: a - b)

    def __mul__(self, other):
        return self._frame_binop(other, lambda a, b: a * b)

    def __truediv__(self, other):
        return self._frame_binop(other, lambda a, b: np.true_divide(a, b))

    __hash__ = None  # type: ignore[assignment]

    def equals(self, other: "DataFrame") -> bool:
        """Exact equality of columns, dtype-insensitive NA-aware values, and index."""
        if not isinstance(other, DataFrame):
            return False
        if self._columns != other._columns:
            return False
        if not self._index.equals(other._index):
            return False
        for name in self._columns:
            if not dtypes.values_equal(self._data[name], other._data[name]):
                return False
        return True

    # -- conversion ----------------------------------------------------------------------------------------
    def to_dict(self, orient: str = "list") -> dict:
        if orient == "list":
            return {name: self._data[name].tolist() for name in self._columns}
        if orient == "records":
            return [
                {name: self._data[name][i] for name in self._columns}
                for i in range(len(self))
            ]
        raise ValueError(f"unsupported orient={orient!r}")

    def to_numpy(self) -> np.ndarray:
        return self.values

    def to_csv(self, path, index: bool = False) -> None:
        from .io import to_csv

        to_csv(self, path, index=index)

    def to_parquet(self, path) -> None:
        from .io import to_parquet

        to_parquet(self, path)

    def sample(self, n=None, frac=None, seed=None,
               replace: bool = False) -> "DataFrame":
        from .window import sample

        return sample(self, n=n, frac=frac, seed=seed, replace=replace)

    def corr(self) -> "DataFrame":
        from .window import corr

        return corr(self)

    def cov(self) -> "DataFrame":
        from .window import cov

        return cov(self)

    def melt(self, id_vars, value_vars=None, var_name: str = "variable",
             value_name: str = "value") -> "DataFrame":
        from .reshape import melt

        return melt(self, id_vars, value_vars=value_vars,
                    var_name=var_name, value_name=value_name)

    def memory_usage(self) -> Series:
        from ..utils import sizeof

        names = list(self._columns)
        values = np.array(
            [sizeof(self._data[name]) for name in names], dtype=np.int64
        )
        return Series(values, index=Index(dtypes.object_array(names)))


def _records_to_columns(records: list, columns: Sequence | None) -> dict:
    """Convert a list of dicts (or tuples) to a column dict."""
    if not records:
        return {name: [] for name in (columns or [])}
    if isinstance(records[0], dict):
        names = list(columns) if columns is not None else list(records[0].keys())
        return {
            name: [rec.get(name) for rec in records] for name in names
        }
    names = list(columns) if columns is not None else list(range(len(records[0])))
    return {name: [rec[i] for rec in records] for i, name in enumerate(names)}


def _format_cell(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{value:.6g}"
    return str(value)
