"""Group-by machinery: factorization of keys plus per-group aggregation.

The distributed ``GroupByAgg`` operator (map/combine/reduce stages) calls
these single-node kernels on each chunk, so the aggregation set here defines
what the engine can distribute.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import Index, MultiIndex
from .series import Series

#: aggregations with a NumPy ``reduceat`` fast path.
_REDUCEAT_OPS = {"sum", "min", "max"}

#: every aggregation the engine understands.
AGGREGATIONS = (
    "sum", "mean", "min", "max", "count", "size", "std", "var",
    "nunique", "first", "last", "median", "prod", "any", "all",
)


def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode values as integer codes; missing entries get code -1.

    Returns ``(codes, uniques)`` with uniques in sorted order, so equal key
    sets factorize identically on every chunk — a property the distributed
    shuffle relies on.
    """
    mask = dtypes.isna_array(values)
    if dtypes.is_object(values.dtype):
        kept = values[~mask]
        # single pass: provisional codes in first-seen order (O(n) dict
        # ops), then sort only the much smaller unique set and remap the
        # provisional codes vectorized — instead of a second Python-level
        # pass resolving every row through a mapping dict.
        first_seen: dict = {}
        provisional = np.fromiter(
            (first_seen.setdefault(v, len(first_seen)) for v in kept.tolist()),
            dtype=np.int64, count=len(kept),
        )
        uniques_list = sorted(first_seen, key=_mixed_key)
        remap = np.empty(len(uniques_list), dtype=np.int64)
        for sorted_pos, value in enumerate(uniques_list):
            remap[first_seen[value]] = sorted_pos
        codes = np.full(len(values), -1, dtype=np.int64)
        if len(kept):
            codes[~mask] = remap[provisional]
        uniques = np.array(uniques_list, dtype=object)
        return codes, uniques
    uniques, inverse = np.unique(values[~mask], return_inverse=True)
    codes = np.full(len(values), -1, dtype=np.int64)
    codes[~mask] = inverse
    return codes, uniques


def _mixed_key(value):
    if isinstance(value, (int, float, np.integer, np.floating)):
        return ("", float(value))
    return (type(value).__name__, value)


class Grouper:
    """Resolved grouping: row codes, group labels, and ordering."""

    def __init__(self, key_arrays: Sequence[np.ndarray], key_names: Sequence):
        if not key_arrays:
            raise ValueError("groupby requires at least one key")
        self.key_names = list(key_names)
        codes_list, uniques_list = [], []
        for arr in key_arrays:
            codes, uniques = factorize(arr)
            codes_list.append(codes)
            uniques_list.append(uniques)
        combined = codes_list[0].copy()
        valid = codes_list[0] >= 0
        for codes, uniques in zip(codes_list[1:], uniques_list[1:]):
            combined = combined * len(uniques) + codes
            valid &= codes >= 0
        combined[~valid] = -1
        # compress combined codes to dense 0..k-1 in sorted-key order
        present = np.unique(combined[valid]) if valid.any() else np.array([], dtype=np.int64)
        remap = {code: i for i, code in enumerate(present.tolist())}
        dense = np.full(len(combined), -1, dtype=np.int64)
        for i, code in enumerate(combined):
            if code >= 0:
                dense[i] = remap[code]
        self.codes = dense
        self.n_groups = len(present)
        # reconstruct per-level labels for each dense group id
        self.group_keys: list[tuple] = []
        sizes = [len(u) for u in uniques_list]
        for code in present.tolist():
            parts = []
            rest = code
            for size in reversed(sizes[1:]):
                rest, part = divmod(rest, size)
                parts.append(part)
            parts.append(rest)
            parts.reverse()
            self.group_keys.append(
                tuple(uniques_list[level][p] for level, p in enumerate(parts))
            )

    def result_index(self) -> Index:
        if len(self.key_names) == 1:
            values = np.array([k[0] for k in self.group_keys], dtype=object)
            return Index(_maybe_tighten(values), name=self.key_names[0])
        return MultiIndex(self.group_keys, names=self.key_names)

    def sorted_layout(self) -> tuple[np.ndarray, np.ndarray]:
        """Row order grouping equal keys together, plus group boundaries.

        Returns ``(order, starts)`` where ``order`` drops NA-key rows and
        ``starts`` has one entry per group (positions into ``order``).
        """
        valid = np.flatnonzero(self.codes >= 0)
        order = valid[np.argsort(self.codes[valid], kind="stable")]
        sorted_codes = self.codes[order]
        if len(order) == 0:
            return order, np.array([], dtype=np.int64)
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_codes)) + 1]
        ).astype(np.int64)
        return order, starts


def _maybe_tighten(values: np.ndarray) -> np.ndarray:
    kinds = {type(v) for v in values.tolist()}
    if kinds and kinds <= {int, np.int64}:
        return values.astype(np.int64)
    if kinds and kinds <= {int, float, np.int64, np.float64}:
        return values.astype(np.float64)
    return values


def _aggregate_column(values: np.ndarray, order: np.ndarray,
                      starts: np.ndarray, how: str | Callable) -> np.ndarray:
    """Aggregate one column over the grouped layout."""
    n_groups = len(starts)
    sorted_values = values[order]
    if callable(how):
        out = np.empty(n_groups, dtype=object)
        bounds = np.append(starts, len(order))
        for g in range(n_groups):
            seg = sorted_values[starts[g]:bounds[g + 1]]
            out[g] = how(Series(seg))
        return _maybe_tighten(out)

    numeric = dtypes.is_numeric(sorted_values.dtype)
    if how in _REDUCEAT_OPS and numeric and len(order) and not (
        dtypes.is_float(sorted_values.dtype) and np.isnan(sorted_values).any()
    ):
        ufunc = {"sum": np.add, "min": np.minimum, "max": np.maximum}[how]
        work = sorted_values.astype(np.float64) if how == "sum" and dtypes.is_bool(
            sorted_values.dtype) else sorted_values
        return ufunc.reduceat(work, starts)
    if how in ("count", "size") and len(order):
        bounds = np.append(starts, len(order))
        lengths = np.diff(bounds)
        if how == "size":
            return lengths.astype(np.int64)
        na = dtypes.isna_array(sorted_values).astype(np.int64)
        na_per_group = np.add.reduceat(na, starts) if len(starts) else np.array([], dtype=np.int64)
        return (lengths - na_per_group).astype(np.int64)

    bounds = np.append(starts, len(order))
    out = np.empty(n_groups, dtype=object)
    for g in range(n_groups):
        seg = Series(sorted_values[starts[g]:bounds[g + 1]])
        if how == "size":
            out[g] = len(seg)
        elif how == "first":
            non_na = seg.dropna()
            out[g] = non_na.values[0] if len(non_na) else None
        elif how == "last":
            non_na = seg.dropna()
            out[g] = non_na.values[-1] if len(non_na) else None
        else:
            out[g] = getattr(seg, how)()
    return _maybe_tighten(out)


def _normalize_spec(spec, columns: Sequence, key_names: Sequence,
                    named_kwargs: Mapping | None = None):
    """Normalize an agg spec to ``[(out_name, in_col, how), ...]``."""
    named_kwargs = named_kwargs or {}
    plan: list[tuple[Any, Any, Any]] = []
    if named_kwargs:
        for out_name, pair in named_kwargs.items():
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise TypeError(
                    "named aggregation requires out_col=(column, func) pairs"
                )
            col, how = pair
            plan.append((out_name, col, how))
        return plan, False
    value_columns = [c for c in columns if c not in set(key_names)]
    if spec is None:
        raise TypeError("agg requires a specification")
    if isinstance(spec, str) or callable(spec):
        for col in value_columns:
            plan.append((col, col, spec))
        return plan, False
    if isinstance(spec, Mapping):
        multi = any(isinstance(v, (list, tuple)) for v in spec.values())
        for col, hows in spec.items():
            if isinstance(hows, (list, tuple)):
                for how in hows:
                    plan.append(((col, _how_name(how)), col, how))
            else:
                plan.append(((col, _how_name(hows)) if multi else col, col, hows))
        return plan, multi
    if isinstance(spec, (list, tuple)):
        for col in value_columns:
            for how in spec:
                plan.append(((col, _how_name(how)), col, how))
        return plan, True
    raise TypeError(f"unsupported agg spec: {spec!r}")


def _how_name(how) -> str:
    return how if isinstance(how, str) else getattr(how, "__name__", "agg")


class DataFrameGroupBy:
    """The object returned by :meth:`DataFrame.groupby`."""

    def __init__(self, frame: DataFrame, by, as_index: bool = True, sort: bool = True):
        self._frame = frame
        self.as_index = as_index
        self.sort = sort
        if isinstance(by, str):
            by = [by]
        if isinstance(by, Series):
            self._key_arrays = [by.values]
            self._key_names = [by.name if by.name is not None else "key"]
        else:
            missing = [k for k in by if isinstance(k, str) and k not in frame._data]
            if missing:
                raise KeyError(f"groupby keys not found: {missing}")
            self._key_arrays = [
                frame._data[k] if isinstance(k, str) else dtypes.as_array(k)
                for k in by
            ]
            self._key_names = [
                k if isinstance(k, str) else f"key_{i}" for i, k in enumerate(by)
            ]
        self._grouper = Grouper(self._key_arrays, self._key_names)

    def __getitem__(self, item):
        if isinstance(item, str):
            return _SelectedGroupBy(self, [item], scalar=True)
        return _SelectedGroupBy(self, list(item), scalar=False)

    # -- aggregation -----------------------------------------------------------
    def agg(self, spec=None, **named) -> DataFrame:
        plan, _multi = _normalize_spec(
            spec, self._frame._columns, self._key_names, named
        )
        return self._run_plan(plan)

    aggregate = agg

    def _run_plan(self, plan) -> DataFrame:
        order, starts = self._grouper.sorted_layout()
        data: dict = {}
        for out_name, col, how in plan:
            if col not in self._frame._data:
                raise KeyError(f"aggregation column {col!r} not found")
            data[out_name] = _aggregate_column(
                self._frame._data[col], order, starts, how
            )
        result_index = self._grouper.result_index()
        if self.as_index:
            return DataFrame(data, index=result_index)
        out: dict = {}
        if isinstance(result_index, MultiIndex):
            for level, name in enumerate(self._key_names):
                out[name] = result_index.get_level_values(level).values
        else:
            out[self._key_names[0]] = result_index.values
        out.update(data)
        return DataFrame(out)

    def _single_how(self, how: str) -> DataFrame:
        value_columns = [
            c for c in self._frame._columns
            if c not in set(self._key_names)
            and (how in ("count", "size", "first", "last", "nunique", "min", "max")
                 or dtypes.is_numeric(self._frame._data[c].dtype))
        ]
        plan = [(c, c, how) for c in value_columns]
        return self._run_plan(plan)

    def sum(self) -> DataFrame:
        return self._single_how("sum")

    def mean(self) -> DataFrame:
        return self._single_how("mean")

    def min(self) -> DataFrame:
        return self._single_how("min")

    def max(self) -> DataFrame:
        return self._single_how("max")

    def count(self) -> DataFrame:
        return self._single_how("count")

    def median(self) -> DataFrame:
        return self._single_how("median")

    def std(self) -> DataFrame:
        return self._single_how("std")

    def var(self) -> DataFrame:
        return self._single_how("var")

    def nunique(self) -> DataFrame:
        return self._single_how("nunique")

    def first(self) -> DataFrame:
        return self._single_how("first")

    def last(self) -> DataFrame:
        return self._single_how("last")

    def size(self) -> Series:
        order, starts = self._grouper.sorted_layout()
        bounds = np.append(starts, len(order))
        sizes = np.diff(bounds).astype(np.int64)
        return Series(sizes, index=self._grouper.result_index(), name="size")

    def ngroups(self) -> int:
        return self._grouper.n_groups

    def apply(self, func: Callable) -> DataFrame:
        """Apply ``func`` to each sub-frame; concatenate DataFrame results."""
        from .concat import concat

        order, starts = self._grouper.sorted_layout()
        bounds = np.append(starts, len(order))
        pieces = []
        for g in range(self._grouper.n_groups):
            rows = order[starts[g]:bounds[g + 1]]
            piece = func(self._frame.iloc[rows])
            if isinstance(piece, Series):
                piece = piece.to_frame().reset_index(drop=True)
            pieces.append(piece)
        if not pieces:
            return DataFrame({})
        return concat(pieces, ignore_index=True)

    def __iter__(self):
        order, starts = self._grouper.sorted_layout()
        bounds = np.append(starts, len(order))
        for g in range(self._grouper.n_groups):
            rows = order[starts[g]:bounds[g + 1]]
            key = self._grouper.group_keys[g]
            yield (key[0] if len(key) == 1 else key), self._frame.iloc[rows]


class _SelectedGroupBy:
    """``df.groupby(k)[cols]`` — aggregation over a column subset."""

    def __init__(self, parent: DataFrameGroupBy, columns: list, scalar: bool):
        self._parent = parent
        self._columns = columns
        self._scalar = scalar

    def agg(self, spec=None, **named):
        if named:
            return self._parent.agg(**named)
        if isinstance(spec, str) or callable(spec):
            plan = [(c, c, spec) for c in self._columns]
            result = self._parent._run_plan(plan)
            if self._scalar and self._parent.as_index:
                return result[self._columns[0]]
            return result
        if isinstance(spec, (list, tuple)):
            plan = [((c, _how_name(h)), c, h) for c in self._columns for h in spec]
            return self._parent._run_plan(plan)
        if isinstance(spec, Mapping):
            return self._parent.agg(spec)
        raise TypeError(f"unsupported agg spec: {spec!r}")

    aggregate = agg

    def _single(self, how: str):
        return self.agg(how)

    def sum(self):
        return self._single("sum")

    def mean(self):
        return self._single("mean")

    def min(self):
        return self._single("min")

    def max(self):
        return self._single("max")

    def count(self):
        return self._single("count")

    def median(self):
        return self._single("median")

    def std(self):
        return self._single("std")

    def var(self):
        return self._single("var")

    def nunique(self):
        return self._single("nunique")

    def first(self):
        return self._single("first")

    def last(self):
        return self._single("last")

    def size(self):
        return self._parent.size()


class SeriesGroupBy:
    """``series.groupby(keys)`` — aggregation of one column."""

    def __init__(self, series: Series, by):
        self._series = series
        if isinstance(by, Series):
            key_arrays = [by.values]
            key_names = [by.name if by.name is not None else "key"]
        elif isinstance(by, (list, tuple)) and by and isinstance(by[0], Series):
            key_arrays = [s.values for s in by]
            key_names = [s.name if s.name is not None else f"key_{i}"
                         for i, s in enumerate(by)]
        else:
            key_arrays = [dtypes.as_array(by)]
            key_names = ["key"]
        self._grouper = Grouper(key_arrays, key_names)

    def agg(self, how) -> Series:
        order, starts = self._grouper.sorted_layout()
        values = _aggregate_column(self._series.values, order, starts, how)
        return Series(values, index=self._grouper.result_index(),
                      name=self._series.name)

    aggregate = agg

    def sum(self):
        return self.agg("sum")

    def mean(self):
        return self.agg("mean")

    def min(self):
        return self.agg("min")

    def max(self):
        return self.agg("max")

    def count(self):
        return self.agg("count")

    def nunique(self):
        return self.agg("nunique")

    def size(self):
        return self.agg("size")
