"""Concatenation of frames and series along either axis.

Row-wise concat is the kernel behind the engine's *auto merge* (Section
IV-C): small chunks produced by a filter or shuffle are concatenated back
into right-sized chunks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import Index, default_index
from .series import Series


def concat(objs: Sequence, axis: int = 0, ignore_index: bool = False):
    """Concatenate DataFrames or Series."""
    objs = [o for o in objs if o is not None]
    if not objs:
        raise ValueError("no objects to concatenate")
    if all(isinstance(o, Series) for o in objs):
        if axis == 1:
            return _concat_series_as_frame(objs)
        return _concat_series(objs, ignore_index=ignore_index)
    frames = [o.to_frame() if isinstance(o, Series) else o for o in objs]
    if axis == 1:
        return _concat_columns(frames)
    return _concat_rows(frames, ignore_index=ignore_index)


def _concat_series(series_list: Sequence[Series], ignore_index: bool) -> Series:
    dtype = dtypes.common_dtype([s.dtype for s in series_list])
    values = np.concatenate([s.values.astype(dtype) for s in series_list])
    if ignore_index:
        index = default_index(len(values))
    else:
        index = series_list[0].index
        for s in series_list[1:]:
            index = index.append(s.index)
    names = {s.name for s in series_list}
    name = names.pop() if len(names) == 1 else None
    return Series(values, index=index, name=name)


def _concat_series_as_frame(series_list: Sequence[Series]) -> DataFrame:
    data = {}
    for i, s in enumerate(series_list):
        name = s.name if s.name is not None else i
        data[name] = s.values
    return DataFrame(data, index=series_list[0].index)


def _concat_rows(frames: Sequence[DataFrame], ignore_index: bool) -> DataFrame:
    non_empty = [f for f in frames if len(f.columns) > 0]
    if not non_empty:
        return DataFrame({})
    # union of columns in first-seen order
    columns: list = []
    for frame in non_empty:
        for name in frame._columns:
            if name not in columns:
                columns.append(name)
    total = sum(len(f) for f in non_empty)
    data: dict = {}
    for name in columns:
        pieces = []
        present_dtypes = [
            f._data[name].dtype for f in non_empty if name in f._data
        ]
        has_missing_block = any(name not in f._data for f in non_empty)
        dtype = dtypes.common_dtype(present_dtypes)
        if has_missing_block and dtype.kind in ("i", "u", "b"):
            dtype = np.dtype(np.float64)
        for frame in non_empty:
            if name in frame._data:
                pieces.append(frame._data[name].astype(dtype))
            else:
                fill = dtypes.na_value_for(dtype)
                pieces.append(np.full(len(frame), fill, dtype=dtype))
        data[name] = np.concatenate(pieces) if pieces else np.empty(0)
        if len(data[name]) != total:
            raise AssertionError("concat length bookkeeping error")
    if ignore_index:
        index: Index = default_index(total)
    else:
        index = non_empty[0].index
        for frame in non_empty[1:]:
            index = index.append(frame.index)
    return DataFrame(data, index=index, columns=columns)


def _concat_columns(frames: Sequence[DataFrame]) -> DataFrame:
    n = len(frames[0])
    if any(len(f) != n for f in frames):
        raise ValueError("axis=1 concat requires equal lengths")
    data: dict = {}
    for frame in frames:
        for name in frame._columns:
            out_name = name
            counter = 0
            while out_name in data:
                counter += 1
                out_name = f"{name}_{counter}"
            data[out_name] = frame._data[name]
    return DataFrame(data, index=frames[0].index)
