"""Stable, NA-aware sorting kernels shared by Series and DataFrame."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import dtypes


def argsort_values(values: np.ndarray, ascending: bool = True,
                   na_position: str = "last") -> np.ndarray:
    """Stable argsort with missing values pinned to one end.

    Descending order is implemented by reversing a stable ascending sort of
    the non-missing block, which keeps ties in their original relative order
    reversed — matching pandas' ``kind='stable'`` behaviour closely enough
    for the workloads here.
    """
    if na_position not in ("first", "last"):
        raise ValueError(f"invalid na_position {na_position!r}")
    na_mask = dtypes.isna_array(values)
    valid_positions = np.flatnonzero(~na_mask)
    na_positions = np.flatnonzero(na_mask)
    valid = values[valid_positions]
    if dtypes.is_object(valid.dtype):
        order = np.array(
            sorted(range(len(valid)), key=lambda i: _total_key(valid[i])),
            dtype=np.int64,
        )
    else:
        order = np.argsort(valid, kind="stable")
    if not ascending:
        order = order[::-1]
    sorted_valid = valid_positions[order]
    if na_position == "first":
        return np.concatenate([na_positions, sorted_valid]).astype(np.int64)
    return np.concatenate([sorted_valid, na_positions]).astype(np.int64)


def _total_key(value):
    """Sort key giving a total order over heterogeneous objects."""
    if isinstance(value, tuple):
        return (1, tuple(_total_key(v) for v in value))
    if isinstance(value, (int, float, np.integer, np.floating)):
        return (0, ("", float(value)))
    return (0, (type(value).__name__, value))


def lexsort_columns(columns: Sequence[np.ndarray],
                    ascending: Sequence[bool],
                    na_position: str = "last") -> np.ndarray:
    """Multi-key stable sort: first column is the primary key.

    Implemented as repeated stable argsorts from the least significant key
    to the most significant one.
    """
    if len(columns) != len(ascending):
        raise ValueError("columns and ascending must have equal length")
    if not columns:
        raise ValueError("need at least one sort key")
    n = len(columns[0])
    indexer = np.arange(n, dtype=np.int64)
    for values, asc in zip(reversed(list(columns)), reversed(list(ascending))):
        partial = argsort_values(values[indexer], ascending=asc, na_position=na_position)
        indexer = indexer[partial]
    return indexer


def searchsorted_bounds(sorted_values: np.ndarray, probes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Left/right insertion points of each probe in a sorted array."""
    left = np.searchsorted(sorted_values, probes, side="left")
    right = np.searchsorted(sorted_values, probes, side="right")
    return left, right
