"""``repro.frame`` — a from-scratch single-node dataframe library.

This package is the pandas stand-in of the reproduction: the distributed
engine (``repro.dataframe``) executes every chunk with these kernels, the
same way Xorbits uses pandas as its execution backend (Section III-C).

Public surface mirrors the pandas names the paper's workloads use::

    from repro import frame as pf

    df = pf.DataFrame({"a": [1, 2, 3], "b": [1.0, 2.0, 3.0]})
    df.groupby("a").agg({"b": "sum"})
    pf.merge(df, df, on="a")
"""

from .concat import concat
from .dataframe import DataFrame
from .datetimes import date_range, to_datetime
from .describe import describe
from .groupby import AGGREGATIONS, DataFrameGroupBy, SeriesGroupBy
from .index import Index, MultiIndex, RangeIndex
from .io import (
    csv_row_count,
    parquet_file_size,
    parquet_metadata,
    read_csv,
    read_parquet,
    to_csv,
    to_parquet,
)
from .join import merge
from .pivot import pivot_table
from .reshape import cut, get_dummies, melt, qcut
from .window import Rolling, corr, cov, rank, sample
from .series import Series

__all__ = [
    "AGGREGATIONS",
    "DataFrame",
    "DataFrameGroupBy",
    "Index",
    "MultiIndex",
    "RangeIndex",
    "Series",
    "SeriesGroupBy",
    "Rolling",
    "concat",
    "corr",
    "cov",
    "csv_row_count",
    "cut",
    "date_range",
    "get_dummies",
    "melt",
    "qcut",
    "rank",
    "sample",
    "describe",
    "merge",
    "parquet_file_size",
    "parquet_metadata",
    "pivot_table",
    "read_csv",
    "read_parquet",
    "to_csv",
    "to_datetime",
    "to_parquet",
]
