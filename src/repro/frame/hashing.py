"""Deterministic content hashing for shuffle partitioning.

Two implementations of the same hash function:

- :func:`stable_hash` — the scalar reference (Python's built-in ``str``
  hash is salted per process, so shuffles need a content-based hash that
  every worker computes identically);
- :func:`hash_array` — the vectorized kernel: one pass over a whole key
  column, bit-identical to mapping :func:`stable_hash` over the column's
  ``tolist()`` view.

Bit parity is load-bearing — re-executing a chunk must route every row
to the same partition — so the vectorized integer path leans on two
number-theory facts: NumPy's uint64 multiplication wraps modulo ``2**64``
and ``2**31`` divides ``2**64``, hence the low 31 bits of the wrapped
product equal Python's arbitrary-precision ``v * mult % 2**31``; and the
two's-complement reinterpretation of a negative int64 is exactly its
value modulo ``2**64``, so signed keys need no special case. The float
path relies on float64 products being representable identically in both
runtimes and on C casts truncating toward zero like Python's ``int()``.
"""

from __future__ import annotations

import math

import numpy as np

#: hash values live in [0, HASH_MOD).
HASH_MOD = 2 ** 31
_MASK31 = np.uint64(HASH_MOD - 1)
#: Knuth's multiplicative constant (integer keys).
_INT_MULT = 2654435761
#: CPython's tuple-hash prime (float keys).
_FLOAT_MULT = 1000003
#: FNV-1a parameters (everything else, hashed by str()).
_FNV_OFFSET = 2166136261
_FNV_PRIME = 16777619


def stable_hash(value) -> int:
    """Deterministic, content-based hash of one key (scalar reference)."""
    if value is None:
        return 0
    if isinstance(value, (bool, int, np.integer)):
        return int(value) * _INT_MULT % HASH_MOD
    if isinstance(value, (float, np.floating)):
        if math.isnan(value):
            return 0  # NaN keys hash like missing values
        prod = value * _FLOAT_MULT
        if math.isinf(prod):  # inf keys, or finite keys whose product overflows
            return _fnv(str(float(value)))
        return int(prod) % HASH_MOD
    return _fnv(str(value))


def _fnv(text: str) -> int:
    h = _FNV_OFFSET
    for ch in text:
        h = (h ^ ord(ch)) * _FNV_PRIME % (2 ** 32)
    return h % HASH_MOD


def hash_array(values) -> np.ndarray:
    """Vectorized :func:`stable_hash` over a 1-D array.

    Returns int64 hashes in ``[0, HASH_MOD)``, element-for-element equal
    to ``[stable_hash(v) for v in values.tolist()]``.
    """
    values = np.asarray(values)
    kind = values.dtype.kind
    if kind in ("i", "b"):
        wrapped = values.astype(np.int64, copy=False).view(np.uint64)
        return ((wrapped * np.uint64(_INT_MULT)) & _MASK31).astype(np.int64)
    if kind == "u":
        wrapped = values.astype(np.uint64, copy=False)
        return ((wrapped * np.uint64(_INT_MULT)) & _MASK31).astype(np.int64)
    if kind == "f":
        return _hash_floats(values.astype(np.float64, copy=False))
    return _hash_objects(values.tolist())


def _hash_floats(values: np.ndarray) -> np.ndarray:
    prod = values * np.float64(_FLOAT_MULT)
    out = np.zeros(len(values), dtype=np.int64)
    # products beyond int64 range (or inf) cannot take the C-cast path;
    # NaN stays 0 by the NA convention above.
    with np.errstate(invalid="ignore"):
        in_range = np.isfinite(prod) & (np.abs(prod) < np.float64(2 ** 63))
    trunc = prod[in_range].astype(np.int64)  # C cast truncates toward zero
    out[in_range] = (trunc.view(np.uint64) & _MASK31).astype(np.int64)
    oversized = ~in_range & ~np.isnan(prod)
    for i in np.flatnonzero(oversized):
        out[i] = stable_hash(float(values[i]))
    return out


def _hash_objects(items: list) -> np.ndarray:
    """Hash a mixed-type key list, memoizing repeated keys.

    The memo key pairs ``type(v)`` with the value because Python dicts
    unify ``1``, ``1.0`` and ``True`` as keys while :func:`stable_hash`
    deliberately does not (int and float take different hash paths).
    """
    if items and all(type(value) is str for value in items):
        return _hash_strings(items)
    memo: dict = {}
    out = np.empty(len(items), dtype=np.int64)
    for i, value in enumerate(items):
        try:
            token = (type(value), value)
            h = memo.get(token)
        except TypeError:  # unhashable key (list, dict, ...)
            token = None
            h = None
        if h is None:
            h = stable_hash(value)
            if token is not None:
                memo[token] = h
        out[i] = h
    return out


def _hash_strings(items: list) -> np.ndarray:
    """Columnar FNV-1a over an all-``str`` key list.

    A ``U``-dtype copy lays the strings out as a dense UCS-4 codepoint
    matrix, so the per-character FNV step runs once per *position* as a
    whole-column vector op instead of once per character per row. True
    lengths come from the Python strings, so embedded NULs don't truncate.
    """
    arr = np.array(items, dtype="U")
    n = len(items)
    max_len = arr.dtype.itemsize // 4
    offset = np.int64(_FNV_OFFSET % HASH_MOD)
    if max_len == 0:  # all-empty strings
        return np.full(n, offset, dtype=np.int64)
    codes = arr.view(np.uint32).reshape(n, max_len).astype(np.uint64)
    lengths = np.fromiter((len(s) for s in items), dtype=np.int64, count=n)
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask32 = np.uint64(2 ** 32 - 1)
    for col in range(max_len):
        active = lengths > col
        if not active.any():
            break
        # (h ^ code) < 2**32 and the product < 2**57: no uint64 wrap, so
        # the & mask32 is exactly the scalar path's % 2**32.
        h = np.where(active, ((h ^ codes[:, col]) * prime) & mask32, h)
    return (h & _MASK31).astype(np.int64)
