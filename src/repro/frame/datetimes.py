"""Datetime construction helpers: ``to_datetime`` and ``date_range``."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import dtypes
from .index import default_index
from .series import Series


def to_datetime(values, errors: str = "raise") -> Series:
    """Convert strings / datetime-likes to a ``datetime64[D]`` Series.

    ``errors='coerce'`` turns unparseable entries into ``NaT`` instead of
    raising, like pandas.
    """
    if errors not in ("raise", "coerce"):
        raise ValueError(f"invalid errors={errors!r}")
    if isinstance(values, Series):
        arr = values.values
        index = values.index
        name = values.name
    else:
        arr = dtypes.as_array(values)
        index = default_index(len(arr))
        name = None
    if arr.dtype.kind == "M":
        return Series(arr.astype("datetime64[D]"), index=index, name=name)
    out = np.empty(len(arr), dtype="datetime64[D]")
    for i, value in enumerate(arr):
        if value is None or (isinstance(value, float) and np.isnan(value)):
            out[i] = np.datetime64("NaT")
            continue
        try:
            out[i] = np.datetime64(str(value).strip()[:10])
        except ValueError:
            if errors == "raise":
                raise ValueError(f"cannot parse {value!r} as a date") from None
            out[i] = np.datetime64("NaT")
    return Series(out, index=index, name=name)


def date_range(start: str, end: Optional[str] = None,
               periods: Optional[int] = None, freq: str = "D") -> Series:
    """A sequence of dates: give ``end`` or ``periods`` (exactly one)."""
    if (end is None) == (periods is None):
        raise ValueError("specify exactly one of end / periods")
    step = _freq_days(freq)
    first = np.datetime64(start)
    if end is not None:
        last = np.datetime64(end)
        if last < first:
            raise ValueError("end precedes start")
        values = np.arange(first, last + np.timedelta64(1, "D"),
                           np.timedelta64(step, "D"))
    else:
        if periods <= 0:
            raise ValueError("periods must be positive")
        values = first + np.arange(periods) * np.timedelta64(step, "D")
    return Series(values.astype("datetime64[D]"))


def _freq_days(freq: str) -> int:
    if freq == "D":
        return 1
    if freq == "W":
        return 7
    if freq.endswith("D") and freq[:-1].isdigit():
        return int(freq[:-1])
    raise ValueError(f"unsupported frequency {freq!r} (use D, W, or <n>D)")
