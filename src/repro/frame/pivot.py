"""``pivot_table`` — the non-relational reshaping operator the paper cites
as a pandas capability SQL engines lack."""

from __future__ import annotations

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .groupby import Grouper, _aggregate_column
from .index import Index


def pivot_table(frame: DataFrame, values=None, index=None, columns=None,
                aggfunc="mean") -> DataFrame:
    """A reduced pandas ``pivot_table``: one index key, one column key,
    one or more value columns, a single aggfunc."""
    if index is None or columns is None:
        raise ValueError("pivot_table requires both index and columns")
    if isinstance(values, str):
        value_cols = [values]
    elif values is None:
        key_set = {index, columns}
        value_cols = [
            c for c in frame._columns
            if c not in key_set and dtypes.is_numeric(frame._data[c].dtype)
        ]
    else:
        value_cols = list(values)
    if not value_cols:
        raise ValueError("no value columns to aggregate")

    grouper = Grouper(
        [frame._data[index], frame._data[columns]], [index, columns]
    )
    order, starts = grouper.sorted_layout()
    row_labels: list = []
    row_positions: dict = {}
    col_labels: list = []
    col_positions: dict = {}
    for r_label, c_label in grouper.group_keys:
        if r_label not in row_positions:
            row_positions[r_label] = len(row_labels)
            row_labels.append(r_label)
        if c_label not in col_positions:
            col_positions[c_label] = len(col_labels)
            col_labels.append(c_label)
    row_labels_sorted = sorted(row_labels, key=_key)
    col_labels_sorted = sorted(col_labels, key=_key)
    row_positions = {label: i for i, label in enumerate(row_labels_sorted)}
    col_positions = {label: i for i, label in enumerate(col_labels_sorted)}

    data: dict = {}
    for vcol in value_cols:
        agg = _aggregate_column(frame._data[vcol], order, starts, aggfunc)
        table = np.full((len(row_labels_sorted), len(col_labels_sorted)), np.nan)
        for g, (r_label, c_label) in enumerate(grouper.group_keys):
            table[row_positions[r_label], col_positions[c_label]] = agg[g]
        for c_label in col_labels_sorted:
            name = c_label if len(value_cols) == 1 else (vcol, c_label)
            data[name] = table[:, col_positions[c_label]]
    out_index = Index(np.array(row_labels_sorted, dtype=object), name=index)
    return DataFrame(data, index=out_index)


def _key(value):
    if isinstance(value, (int, float, np.integer, np.floating)):
        return ("", float(value))
    return (type(value).__name__, value)
