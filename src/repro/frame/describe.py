"""``DataFrame.describe`` — summary statistics of numeric columns."""

from __future__ import annotations

import numpy as np

from . import dtypes
from .dataframe import DataFrame
from .index import Index

_STATS = ("count", "mean", "std", "min", "25%", "50%", "75%", "max")


def describe(frame: DataFrame) -> DataFrame:
    numeric = [c for c in frame._columns if dtypes.is_numeric(frame._data[c].dtype)]
    if not numeric:
        raise ValueError("describe requires at least one numeric column")
    data: dict = {}
    for name in numeric:
        series = frame[name]
        data[name] = np.array(
            [
                float(series.count()),
                float(series.mean()),
                float(series.std()),
                float(series.min()),
                series.quantile(0.25),
                series.quantile(0.50),
                series.quantile(0.75),
                float(series.max()),
            ],
            dtype=np.float64,
        )
    return DataFrame(data, index=Index(np.array(_STATS, dtype=object)))
