"""``.str`` and ``.dt`` accessors for :class:`repro.frame.Series`."""

from __future__ import annotations

from typing import Callable

import numpy as np

from . import dtypes


class StringMethods:
    """Vectorized string methods over an object-dtype Series.

    Missing entries propagate as missing, like pandas.
    """

    def __init__(self, series):
        from .series import Series

        if not dtypes.is_object(series.dtype):
            raise AttributeError(".str accessor requires string (object) values")
        self._series = series
        self._series_cls = Series

    def _map(self, func: Callable, out_dtype=object):
        values = self._series.values
        mask = dtypes.isna_array(values)
        out = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            out[i] = None if mask[i] else func(value)
        if out_dtype is not object:
            filled = np.array(
                [dtypes.na_value_for(np.dtype(out_dtype)) if v is None else v for v in out],
                dtype=out_dtype,
            )
            return self._series_cls(filled, index=self._series.index, name=self._series.name)
        return self._series_cls(out, index=self._series.index, name=self._series.name)

    def lower(self):
        return self._map(str.lower)

    def upper(self):
        return self._map(str.upper)

    def strip(self):
        return self._map(str.strip)

    def len(self):
        return self._map(len, out_dtype=np.float64)

    def contains(self, pat: str):
        result = self._map(lambda s: pat in s)
        return result.fillna(False).astype(bool)

    def startswith(self, prefix: str):
        result = self._map(lambda s: s.startswith(prefix))
        return result.fillna(False).astype(bool)

    def endswith(self, suffix: str):
        result = self._map(lambda s: s.endswith(suffix))
        return result.fillna(False).astype(bool)

    def replace(self, old: str, new: str):
        return self._map(lambda s: s.replace(old, new))

    def slice(self, start=None, stop=None, step=None):
        return self._map(lambda s: s[start:stop:step])

    def get(self, i: int):
        return self._map(lambda s: s[i] if -len(s) <= i < len(s) else None)

    def cat(self, other, sep: str = ""):
        other_values = other.values if hasattr(other, "values") else np.asarray(other)
        values = self._series.values
        out = np.empty(len(values), dtype=object)
        for i in range(len(values)):
            left, right = values[i], other_values[i]
            out[i] = None if left is None or right is None else f"{left}{sep}{right}"
        return self._series_cls(out, index=self._series.index, name=self._series.name)


class DatetimeMethods:
    """``.dt`` accessor over a ``datetime64[ns]`` Series."""

    def __init__(self, series):
        from .series import Series

        if not dtypes.is_datetime(series.dtype):
            raise AttributeError(".dt accessor requires datetime64 values")
        self._series = series
        self._series_cls = Series

    def _field(self, unit: str, base_unit: str, modulo: int | None = None, offset: int = 0):
        values = self._series.values
        coarse = values.astype(f"datetime64[{unit}]").astype(np.int64)
        if modulo is not None:
            coarse = coarse % modulo
        out = (coarse + offset).astype(np.float64)
        out[np.isnat(values)] = np.nan
        return self._series_cls(out, index=self._series.index, name=self._series.name)

    @property
    def year(self):
        return self._field("Y", "Y", offset=1970)

    @property
    def month(self):
        return self._field("M", "M", modulo=12, offset=1)

    @property
    def day(self):
        values = self._series.values
        days = (
            values.astype("datetime64[D]").astype(np.int64)
            - values.astype("datetime64[M]").astype("datetime64[D]").astype(np.int64)
        )
        out = (days + 1).astype(np.float64)
        out[np.isnat(values)] = np.nan
        return self._series_cls(out, index=self._series.index, name=self._series.name)

    @property
    def dayofweek(self):
        values = self._series.values
        days = values.astype("datetime64[D]").astype(np.int64)
        out = ((days + 3) % 7).astype(np.float64)  # 1970-01-01 was a Thursday
        out[np.isnat(values)] = np.nan
        return self._series_cls(out, index=self._series.index, name=self._series.name)
