"""repro — a reproduction of "Xorbits: Automating Operator Tiling for
Distributed Data Science" (ICDE 2024).

Usage mirrors the paper's Listing 2::

    import repro
    import repro.numpy as np
    import repro.pandas as pd

    repro.init(n_workers=4)

    a = np.random.rand(1000, 100)
    q, r = np.linalg.qr(a)
    print(r)                        # deferred evaluation triggers execution

    df = pd.read_parquet("data.rpq")
    print(df.groupby("k").agg({"v": "min"}))

The "cluster" is simulated: real NumPy compute in-process, virtual time
and byte-accurate per-worker memory budgets for the distributed behaviour
(see DESIGN.md for the substitution rationale).
"""

from .config import ClusterSpec, Config, CostModel, default_config
from .core.session import (
    RunReport,
    Session,
    get_default_session,
    init_session,
    stop_session,
)
from .dataframe import run as _run_objects
from .errors import (
    ApiCompatibilityError,
    ExecutionHang,
    ReproError,
    WorkerOutOfMemory,
)

__version__ = "0.1.0"


def init(config: Config | None = None, *, n_workers: int | None = None,
         memory_limit: int | None = None, **overrides) -> Session:
    """Start (or restart) the default session, Listing-2 style.

    ``n_workers`` / ``memory_limit`` shape the simulated cluster; other
    keyword arguments override any :class:`Config` field.
    """
    cfg = config if config is not None else default_config()
    if n_workers is not None:
        cfg.cluster.n_workers = n_workers
    if memory_limit is not None:
        cfg.cluster.memory_limit = memory_limit
    return init_session(cfg, **overrides)


def run(*objects) -> None:
    """Materialize deferred objects immediately (``xorbits.run``)."""
    _run_objects(*objects)


def shutdown() -> None:
    """Close the default session and free every cached chunk."""
    stop_session()


__all__ = [
    "ApiCompatibilityError",
    "ClusterSpec",
    "Config",
    "CostModel",
    "ExecutionHang",
    "ReproError",
    "RunReport",
    "Session",
    "WorkerOutOfMemory",
    "__version__",
    "default_config",
    "get_default_session",
    "init",
    "run",
    "shutdown",
]
