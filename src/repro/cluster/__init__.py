"""``repro.cluster`` — simulated cluster: workers, bands, memory, clocks."""

from .cluster import SUPERVISOR_ADDRESS, ClusterState
from .resource import Band, MemoryTracker, WorkerSpec, build_workers
from .simulation import SimClock, SimReport

__all__ = [
    "SUPERVISOR_ADDRESS",
    "Band",
    "ClusterState",
    "MemoryTracker",
    "SimClock",
    "SimReport",
    "WorkerSpec",
    "build_workers",
]
