"""Cluster resources: bands, workers, and per-worker memory accounting.

A *band* is the paper's basic scheduling/execution unit (Section V-B): a
NUMA node or GPU of a worker. Memory is accounted per worker — the unit
that dies when a real Dask/Modin/Ray worker OOMs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..errors import WorkerOutOfMemory


@dataclass(frozen=True)
class Band:
    """One schedulable computing device of a worker."""

    worker: str
    index: int
    threads: int = 16

    @property
    def name(self) -> str:
        return f"{self.worker}/band-{self.index}"

    def __repr__(self) -> str:
        return f"Band({self.name})"


class MemoryTracker:
    """Byte-accurate memory budget of one worker.

    ``allocate`` raises :class:`WorkerOutOfMemory` when the budget would be
    exceeded — the event the benchmark harness classifies as an OOM failure
    (Table II). ``peak`` records the high-water mark for reporting.
    """

    def __init__(self, worker: str, limit: int):
        if limit <= 0:
            raise ValueError("memory limit must be positive")
        self.worker = worker
        self.limit = int(limit)
        self.used = 0
        self.peak = 0
        # accounting happens on one thread at a time, but the parallel
        # band runner makes "one at a time" a cross-thread property —
        # keep the used/peak updates atomic.
        self._lock = threading.Lock()

    @property
    def available(self) -> int:
        return self.limit - self.used

    def can_fit(self, nbytes: int) -> bool:
        return self.used + int(nbytes) <= self.limit

    def allocate(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        with self._lock:
            if self.used + nbytes > self.limit:
                raise WorkerOutOfMemory(self.worker, nbytes, self.limit,
                                        self.used)
            self.used += nbytes
            self.peak = max(self.peak, self.used)

    def set_limit(self, limit: int) -> None:
        """Change the budget in place (transient memory-squeeze faults).

        ``used`` may legally exceed a shrunken limit: residents are not
        evicted here — admission/spill react to the squeezed budget on
        the next allocation attempt.
        """
        limit = int(limit)
        if limit <= 0:
            raise ValueError("memory limit must be positive")
        with self._lock:
            self.limit = limit

    def note_transient(self, nbytes: int) -> None:
        """Record a transient working set in the peak watermark without
        allocating it (execution scratch space that is gone afterwards)."""
        with self._lock:
            self.peak = max(self.peak, self.used + max(int(nbytes), 0))

    def release(self, nbytes: int) -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot release negative bytes")
        with self._lock:
            if nbytes > self.used:
                raise ValueError(
                    f"releasing {nbytes} bytes but only {self.used} are allocated"
                )
            self.used -= nbytes


@dataclass
class WorkerSpec:
    """Static description of one worker node."""

    name: str
    n_bands: int
    threads_per_band: int
    memory_limit: int
    bands: list[Band] = field(default_factory=list)

    def __post_init__(self):
        if not self.bands:
            self.bands = [
                Band(self.name, i, threads=self.threads_per_band)
                for i in range(self.n_bands)
            ]


def build_workers(n_workers: int, bands_per_worker: int,
                  threads_per_band: int, memory_limit: int) -> list[WorkerSpec]:
    """Create the worker specs of a simulated cluster."""
    if n_workers <= 0:
        raise ValueError("need at least one worker")
    return [
        WorkerSpec(
            name=f"worker-{i}",
            n_bands=bands_per_worker,
            threads_per_band=threads_per_band,
            memory_limit=memory_limit,
        )
        for i in range(n_workers)
    ]
