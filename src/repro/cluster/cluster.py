"""Cluster state: supervisor + workers, their pools, trackers and clocks."""

from __future__ import annotations

import threading

from ..actors import ActorSystem
from ..config import Config
from .resource import Band, MemoryTracker, WorkerSpec, build_workers
from .simulation import SimClock

SUPERVISOR_ADDRESS = "supervisor"


class ClusterState:
    """Everything a running simulated cluster consists of.

    Mirrors the deployment of Section III-A: one supervisor node managing
    sessions/tasks/scheduling, N workers executing subtasks. Creating the
    state spawns one actor pool per node; services attach themselves to
    these pools.
    """

    def __init__(self, config: Config):
        self.config = config
        spec = config.cluster
        self.workers: list[WorkerSpec] = build_workers(
            spec.n_workers, spec.bands_per_worker,
            spec.threads_per_band, spec.memory_limit,
        )
        self.bands: list[Band] = [
            band for worker in self.workers for band in worker.bands
        ]
        self.memory: dict[str, MemoryTracker] = {
            worker.name: MemoryTracker(worker.name, worker.memory_limit)
            for worker in self.workers
        }
        self.clock = SimClock(self.bands, config.cost_model)
        # late import: repro.core pulls in the executor (which imports this
        # module); the injector itself has no such dependency.
        from ..core.recovery import FaultInjector

        #: deterministic chaos source consulted by the executor's
        #: accounting walk (no-op unless config.faults sets a rate or a
        #: test scripts an injection point).
        self.faults = FaultInjector(config.faults)
        #: actor-plane supervision (``SupervisionPlane``) — installed by
        #: ``deploy_services`` alongside the service actors.
        self.supervision = None
        self.actor_system = ActorSystem()
        self.actor_system.create_pool(SUPERVISOR_ADDRESS)
        for worker in self.workers:
            self.actor_system.create_pool(worker.name)
        #: lazy process-pool client (``execution_mode == "process"``).
        self._procpool = None
        #: the cluster-scoped service plane, memoized by
        #: ``deploy_cluster_services`` — ``None`` until first deploy.
        #: Sessions sharing this cluster attach to the same handles.
        self.services = None
        #: serializes service deployment and session attach/detach on a
        #: shared cluster.
        self.services_lock = threading.Lock()

    @property
    def n_bands(self) -> int:
        return len(self.bands)

    def executor_pool(self):
        """The thread pool backing parallel subtask compute.

        One logical slot per band is enforced by the dispatcher; the
        underlying threads come from the process-wide band-runner pool,
        so short-lived simulated clusters do not leak threads.
        """
        from ..core.dispatch import shared_pool

        return shared_pool(self.config.band_runner_threads)

    def procpool_client(self):
        """The cluster's process-pool client, created on first use.

        Shared by every band runner so one cluster keeps exactly one set
        of worker processes; the executor itself spawns lazily inside
        the client, on the first process-mode subtask.
        """
        if self._procpool is None:
            from ..core.procpool import ProcPoolClient

            self._procpool = ProcPoolClient(self.config)
        return self._procpool

    def band_by_name(self, name: str) -> Band:
        for band in self.bands:
            if band.name == name:
                return band
        raise KeyError(name)

    def worker_of(self, band: Band) -> WorkerSpec:
        for worker in self.workers:
            if worker.name == band.worker:
                return worker
        raise KeyError(band.worker)

    def peak_memory(self) -> dict[str, int]:
        return {name: tracker.peak for name, tracker in self.memory.items()}

    def total_memory_used(self) -> int:
        return sum(tracker.used for tracker in self.memory.values())

    def reset_clock(self) -> None:
        self.clock = SimClock(self.bands, self.config.cost_model)

    def shutdown(self) -> None:
        if self._procpool is not None:
            try:
                self._procpool.close()
            except Exception:  # noqa: BLE001 — shutdown must not raise
                pass
            self._procpool = None
        self.actor_system.shutdown()
