"""Virtual-time simulation of band execution.

Real NumPy compute runs in-process; *when* things would have finished on
the paper's cluster is tracked here. Each band has an availability time;
a subtask placed on a band starts at ``max(band_free, inputs_ready)`` and
occupies the band for its modeled cost. The makespan of a task graph is
the maximum completion time — this is what the benchmark figures report,
because it reflects skew, locality, and graph overheads the way the
paper's wall-clock numbers do.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..config import CostModel
from .resource import Band


@dataclass
class SimReport:
    """Aggregated statistics of one simulated task-graph execution."""

    makespan: float = 0.0
    total_compute_seconds: float = 0.0
    total_transfer_bytes: int = 0
    total_shuffle_bytes: int = 0
    #: rows folded away by mapper-side combine before shuffle writes.
    combine_dropped_rows: int = 0
    n_subtasks: int = 0
    n_graph_nodes: int = 0
    #: failed subtask attempts that were re-tried (fault recovery).
    retries: int = 0
    #: producer subtasks re-executed by lineage recovery.
    recomputed_subtasks: int = 0
    #: bytes written back to storage by recovery re-executions.
    recovery_bytes: int = 0
    #: virtual seconds of retry backoff charged to the simulated clock.
    backoff_time: float = 0.0
    #: OOM-ladder retry attempts (force-spill / reschedule / degrade).
    oom_retries: int = 0
    #: virtual seconds subtasks waited for a memory admission grant.
    admission_wait_time: float = 0.0
    #: subtasks executed under a degraded (serialized) worker.
    degraded_subtasks: int = 0
    #: memory-aware re-tiling passes taken after the OOM ladder ran dry.
    pressure_splits: int = 0
    #: bytes force-spilled by the OOM ladder's first rung.
    forced_spill_bytes: int = 0
    #: chunks pruned from the graph by a result-cache hit.
    cache_hit_chunks: int = 0
    #: stored bytes those cache hits reused instead of recomputing.
    cache_reused_bytes: int = 0
    peak_memory: dict[str, int] = field(default_factory=dict)
    band_busy: dict[str, float] = field(default_factory=dict)

    @property
    def parallel_efficiency(self) -> float:
        """Busy time over (makespan × bands); 1.0 means perfectly balanced."""
        if not self.band_busy or self.makespan <= 0:
            return 0.0
        return sum(self.band_busy.values()) / (self.makespan * len(self.band_busy))

    def merge(self, other: "SimReport") -> None:
        """Fold another stage's report into this one (sequential stages)."""
        self.makespan += other.makespan
        self.total_compute_seconds += other.total_compute_seconds
        self.total_transfer_bytes += other.total_transfer_bytes
        self.total_shuffle_bytes += other.total_shuffle_bytes
        self.combine_dropped_rows += other.combine_dropped_rows
        self.n_subtasks += other.n_subtasks
        self.n_graph_nodes += other.n_graph_nodes
        self.retries += other.retries
        self.recomputed_subtasks += other.recomputed_subtasks
        self.recovery_bytes += other.recovery_bytes
        self.backoff_time += other.backoff_time
        self.oom_retries += other.oom_retries
        self.admission_wait_time += other.admission_wait_time
        self.degraded_subtasks += other.degraded_subtasks
        self.pressure_splits += other.pressure_splits
        self.forced_spill_bytes += other.forced_spill_bytes
        self.cache_hit_chunks += other.cache_hit_chunks
        self.cache_reused_bytes += other.cache_reused_bytes
        for worker, peak in other.peak_memory.items():
            self.peak_memory[worker] = max(self.peak_memory.get(worker, 0), peak)
        for band, busy in other.band_busy.items():
            self.band_busy[band] = self.band_busy.get(band, 0.0) + busy


class SimClock:
    """Per-band virtual clocks plus the cost model."""

    def __init__(self, bands: list[Band], cost_model: CostModel):
        if not bands:
            raise ValueError("need at least one band")
        self.cost_model = cost_model
        self.band_free: dict[str, float] = {band.name: 0.0 for band in bands}
        self.band_busy: dict[str, float] = {band.name: 0.0 for band in bands}
        self._bands = {band.name: band for band in bands}
        self.now = 0.0
        # virtual time is advanced only by the (single) accounting
        # thread, but the parallel band runner makes that a cross-thread
        # invariant rather than a structural one — lock the mutations so
        # a future concurrent accountant cannot corrupt the clocks.
        self._lock = threading.Lock()

    def compute_cost(self, cpu_bytes: int, band: Band) -> float:
        """Virtual seconds of pure compute for a subtask on a band."""
        bandwidth = self.cost_model.compute_bandwidth * max(band.threads, 1)
        return cpu_bytes / bandwidth

    def transfer_cost(self, nbytes: int) -> float:
        return nbytes / self.cost_model.network_bandwidth

    def run_subtask(self, band: Band, ready_time: float, duration: float) -> float:
        """Occupy ``band`` for ``duration`` starting no earlier than
        ``ready_time``; returns the completion time."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        with self._lock:
            start = max(self.band_free[band.name], ready_time)
            end = start + duration
            self.band_free[band.name] = end
            self.band_busy[band.name] += duration
            self.now = max(self.now, end)
            return end

    def earliest_free_band(self, bands: list[Band]) -> Band:
        """The band (among ``bands``) that frees up first."""
        best = min(bands, key=lambda b: self.band_free[b.name])
        return best

    def delay_band(self, band_name: str, seconds: float) -> None:
        """Push a band's availability without counting busy time.

        Models downtime rather than work — e.g. the bands of a killed
        worker waiting out its restart.
        """
        with self._lock:
            self.band_free[band_name] += seconds

    @property
    def makespan(self) -> float:
        return max(self.band_free.values())

    def charge_overhead(self, band: Band, seconds: float) -> None:
        """Serial overhead (graph dispatch etc.) charged to a band."""
        with self._lock:
            self.band_free[band.name] += seconds
            self.band_busy[band.name] += seconds
