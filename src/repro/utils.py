"""Small shared utilities: deterministic keys, sizeof, iteration helpers."""

from __future__ import annotations

import collections
import contextlib
import itertools
import math
import threading
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

_token_counter = itertools.count()
_key_ns = threading.local()

#: exact-type sizeof handlers contributed by chunk-engine backends
#: (``repro.engine``): ``type -> fn(value) -> int``. Registration keeps
#: this module free of engine imports while letting FootprintEstimator
#: EWMAs and storage budgets price engine-specific physical chunks
#: accurately instead of falling through to the generic container walk.
_SIZEOF_HANDLERS: dict[type, Callable[[Any], int]] = {}


def register_sizeof(cls: type, handler: Callable[[Any], int]) -> None:
    """Register a byte-size handler for an engine's physical chunk type."""
    _SIZEOF_HANDLERS[cls] = handler


def new_key(prefix: str = "k") -> str:
    """Return a process-unique key, e.g. for chunks and subtasks.

    When a key namespace is active on the calling thread (see
    :func:`key_namespace`) the key is prefixed with it — sessions sharing
    one cluster namespace their runtime keys (``session-3/c-00000042``)
    so chunk/shuffle keys from different tenants can never collide in
    storage, shuffle, or LRU accounting.
    """
    ns = getattr(_key_ns, "value", "")
    return f"{ns}{prefix}-{next(_token_counter):08d}"


@contextlib.contextmanager
def key_namespace(ns: str):
    """Prefix every ``new_key`` on this thread with ``ns`` (e.g. ``"s1/"``)."""
    prev = getattr(_key_ns, "value", "")
    _key_ns.value = ns
    try:
        yield
    finally:
        _key_ns.value = prev


def tokenize(*parts: Any) -> str:
    """Deterministic short hash of the given parts (for cache keys).

    The canonical implementation lives in ``graph.identity`` (imported
    lazily: ``graph`` imports ``entity`` which imports this module, so a
    top-level import here would be circular during package init).
    """
    from .graph.identity import tokenize as _tokenize
    return _tokenize(*parts)


def sizeof(obj: Any) -> int:
    """Estimated in-memory byte size of a value held in storage.

    Understands NumPy arrays, the ``repro.frame`` containers (via their
    ``nbytes`` attribute), and plain Python containers. Object-dtype NumPy
    arrays are charged a per-element estimate because ``arr.nbytes`` only
    counts the pointers.
    """
    # ndarray first: the overwhelmingly common case on the shuffle/data
    # path, answered from dtype metadata without the getattr protocol.
    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            return int(obj.size) * 64 + 96
        return int(obj.nbytes)
    if obj is None:
        return 16
    handler = _SIZEOF_HANDLERS.get(type(obj))
    if handler is not None:
        return int(handler(obj))
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj) + 48
    if isinstance(obj, str):
        return len(obj) + 56
    if isinstance(obj, (int, float, bool, np.generic)):
        return 32
    if isinstance(obj, dict):
        return 64 + sum(sizeof(k) + sizeof(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 56 + sum(sizeof(item) for item in obj)
    return 64


def ceildiv(a: int, b: int) -> int:
    """Integer ceiling division."""
    return -(-a // b)


def split_length(total: int, chunk: int) -> list[int]:
    """Split ``total`` items into pieces of at most ``chunk`` items.

    >>> split_length(10, 4)
    [4, 4, 2]
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    if total == 0:
        return []
    full, rest = divmod(total, chunk)
    sizes = [chunk] * full
    if rest:
        sizes.append(rest)
    return sizes


def split_even(total: int, parts: int) -> list[int]:
    """Split ``total`` items into ``parts`` near-equal pieces.

    >>> split_even(10, 3)
    [4, 3, 3]
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, rest = divmod(total, parts)
    return [base + (1 if i < rest else 0) for i in range(parts)]


def cumulative_offsets(sizes: Sequence[int]) -> list[int]:
    """Exclusive prefix sums: [0, s0, s0+s1, ...] with len(sizes)+1 items."""
    offsets = [0]
    for size in sizes:
        offsets.append(offsets[-1] + size)
    return offsets


def locate_in_splits(index: int, sizes: Sequence[int]) -> tuple[int, int]:
    """Locate a global position inside a partitioned axis.

    Returns ``(chunk_idx, offset_in_chunk)`` such that global ``index``
    falls into chunk ``chunk_idx`` at local position ``offset_in_chunk``.
    """
    if index < 0:
        raise IndexError(f"index {index} out of range")
    running = 0
    for chunk_idx, size in enumerate(sizes):
        if index < running + size:
            return chunk_idx, index - running
        running += size
    raise IndexError(f"index {index} out of range for splits {list(sizes)!r}")


def batched(iterable: Iterable, size: int) -> Iterator[list]:
    """Yield lists of up to ``size`` items from ``iterable``.

    >>> list(batched([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if size <= 0:
        raise ValueError("size must be positive")
    batch: list = []
    for item in iterable:
        batch.append(item)
        if len(batch) == size:
            yield batch
            batch = []
    if batch:
        yield batch


def human_bytes(n: float) -> str:
    """Format a byte count, e.g. ``human_bytes(2048) == '2.0 KiB'``."""
    if n < 0:
        return "-" + human_bytes(-n)
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    idx = 0
    value = float(n)
    while value >= 1024 and idx < len(units) - 1:
        value /= 1024
        idx += 1
    if idx == 0:
        return f"{int(value)} B"
    return f"{value:.1f} {units[idx]}"


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class DedupLog:
    """Bounded memo of ``dedup_token -> result`` for at-least-once endpoints.

    Mutating service methods record the result of each token-carrying call;
    a redelivered message with a token already seen returns the memoized
    result instead of re-applying the mutation. Tokens are minted per call
    on the accounting walk (never reused across retry attempts), so only
    genuine duplicate deliveries of the *same* call are suppressed —
    legitimate retries carry fresh tokens and always apply.

    Thread-safe: endpoints are hit from the accounting thread and (via
    nested service calls) band-runner threads.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seen: "collections.OrderedDict[Any, Any]" = collections.OrderedDict()
        self.suppressed = 0

    def check(self, token: Any) -> tuple[bool, Any]:
        """``(seen_before, memoized_result)`` for ``token``."""
        if token is None:
            return False, None
        with self._lock:
            if token in self._seen:
                self.suppressed += 1
                self._seen.move_to_end(token)
                return True, self._seen[token]
            return False, None

    def record(self, token: Any, result: Any) -> None:
        if token is None:
            return
        with self._lock:
            self._seen[token] = result
            self._seen.move_to_end(token)
            while len(self._seen) > self.capacity:
                self._seen.popitem(last=False)
