"""Unit tests for cluster resources and the virtual-time simulation."""

import pytest

from repro.cluster import (
    Band,
    ClusterState,
    MemoryTracker,
    SimClock,
    SimReport,
    build_workers,
)
from repro.config import Config, CostModel
from repro.errors import WorkerOutOfMemory


class TestMemoryTracker:
    def test_allocate_release(self):
        tracker = MemoryTracker("w", 100)
        tracker.allocate(60)
        assert tracker.used == 60 and tracker.available == 40
        tracker.release(10)
        assert tracker.used == 50

    def test_oom_raises_with_details(self):
        tracker = MemoryTracker("w", 100)
        tracker.allocate(80)
        with pytest.raises(WorkerOutOfMemory) as exc:
            tracker.allocate(30)
        assert exc.value.worker == "w"
        assert exc.value.requested == 30
        assert exc.value.used == 80

    def test_oom_is_memory_error(self):
        tracker = MemoryTracker("w", 10)
        with pytest.raises(MemoryError):
            tracker.allocate(11)

    def test_peak_tracked(self):
        tracker = MemoryTracker("w", 100)
        tracker.allocate(70)
        tracker.release(50)
        tracker.allocate(10)
        assert tracker.peak == 70

    def test_over_release_rejected(self):
        tracker = MemoryTracker("w", 100)
        tracker.allocate(5)
        with pytest.raises(ValueError):
            tracker.release(6)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MemoryTracker("w", 0)


class TestWorkers:
    def test_build_workers_bands(self):
        workers = build_workers(2, 2, 16, 1000)
        assert len(workers) == 2
        assert [b.name for b in workers[0].bands] == [
            "worker-0/band-0", "worker-0/band-1",
        ]

    def test_band_is_hashable_value(self):
        assert Band("w", 0) == Band("w", 0)
        assert len({Band("w", 0), Band("w", 0), Band("w", 1)}) == 2

    def test_no_workers_rejected(self):
        with pytest.raises(ValueError):
            build_workers(0, 1, 1, 1)


class TestSimClock:
    def _clock(self):
        bands = [Band("w0", 0, threads=1), Band("w0", 1, threads=1)]
        return SimClock(bands, CostModel(compute_bandwidth=100.0,
                                         network_bandwidth=50.0)), bands

    def test_sequential_on_one_band(self):
        clock, bands = self._clock()
        end1 = clock.run_subtask(bands[0], 0.0, 1.0)
        end2 = clock.run_subtask(bands[0], 0.0, 1.0)
        assert end1 == 1.0 and end2 == 2.0

    def test_parallel_on_two_bands(self):
        clock, bands = self._clock()
        clock.run_subtask(bands[0], 0.0, 1.0)
        clock.run_subtask(bands[1], 0.0, 1.0)
        assert clock.makespan == 1.0

    def test_ready_time_delays_start(self):
        clock, bands = self._clock()
        end = clock.run_subtask(bands[0], 5.0, 1.0)
        assert end == 6.0

    def test_compute_and_transfer_costs(self):
        clock, bands = self._clock()
        assert clock.compute_cost(200, bands[0]) == pytest.approx(2.0)
        assert clock.transfer_cost(100) == pytest.approx(2.0)

    def test_threads_scale_compute(self):
        clock, _ = self._clock()
        fat_band = Band("w1", 0, threads=4)
        assert clock.compute_cost(400, fat_band) == pytest.approx(1.0)

    def test_earliest_free_band(self):
        clock, bands = self._clock()
        clock.run_subtask(bands[0], 0.0, 5.0)
        assert clock.earliest_free_band(bands) == bands[1]

    def test_negative_duration_rejected(self):
        clock, bands = self._clock()
        with pytest.raises(ValueError):
            clock.run_subtask(bands[0], 0.0, -1.0)


class TestSimReport:
    def test_parallel_efficiency(self):
        report = SimReport(makespan=2.0, band_busy={"a": 2.0, "b": 1.0})
        assert report.parallel_efficiency == pytest.approx(0.75)

    def test_merge_accumulates(self):
        a = SimReport(makespan=1.0, n_subtasks=2,
                      peak_memory={"w": 10}, band_busy={"b": 1.0})
        b = SimReport(makespan=2.0, n_subtasks=3,
                      peak_memory={"w": 5}, band_busy={"b": 0.5})
        a.merge(b)
        assert a.makespan == 3.0
        assert a.n_subtasks == 5
        assert a.peak_memory["w"] == 10
        assert a.band_busy["b"] == 1.5


class TestClusterState:
    def test_pools_created(self):
        cfg = Config()
        cfg.cluster.n_workers = 2
        state = ClusterState(cfg)
        addresses = set(state.actor_system.addresses())
        assert addresses == {"supervisor", "worker-0", "worker-1"}

    def test_band_lookup(self):
        state = ClusterState(Config())
        band = state.bands[0]
        assert state.band_by_name(band.name) == band
        with pytest.raises(KeyError):
            state.band_by_name("nope")

    def test_reset_clock(self):
        state = ClusterState(Config())
        state.clock.run_subtask(state.bands[0], 0.0, 1.0)
        state.reset_clock()
        assert state.clock.makespan == 0.0
