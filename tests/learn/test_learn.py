"""Tests for the distributed ML module (repro.learn)."""

import numpy as np
import pytest

import repro
import repro.numpy as rnp
from repro.learn import (
    KMeans,
    LinearRegression,
    MinMaxScaler,
    Ridge,
    StandardScaler,
    accuracy_score,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    train_test_split,
)


@pytest.fixture(autouse=True)
def runtime():
    repro.init(n_workers=2, chunk_store_limit=32 * 1024)
    yield
    repro.shutdown()


def make_regression(n=2000, k=4, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, (n, k))
    beta = np.linspace(1.0, 2.0, k)
    y = x @ beta + 0.5 + rng.normal(0, noise, n)
    return x, y, beta


class TestSplit:
    def test_shapes(self):
        x, y, _ = make_regression()
        xt = rnp.tensor_from_numpy(x)
        yt = rnp.tensor_from_numpy(y)
        x_train, x_test, y_train, y_test = train_test_split(xt, yt, 0.25)
        assert x_train.shape[0] == y_train.shape[0] == 1500
        assert x_test.shape[0] == y_test.shape[0] == 500

    def test_partition_is_exact(self):
        x, y, _ = make_regression(n=400)
        xt, yt = rnp.tensor_from_numpy(x), rnp.tensor_from_numpy(y)
        x_train, x_test, *_ = train_test_split(xt, yt, 0.3)
        joined = np.vstack([x_test.fetch(), x_train.fetch()])
        np.testing.assert_array_equal(joined, x)

    def test_mismatched_rows(self):
        with pytest.raises(ValueError):
            train_test_split(rnp.tensor_from_numpy(np.zeros((10, 2))),
                             rnp.tensor_from_numpy(np.zeros(9)))

    def test_invalid_fraction(self):
        xt = rnp.tensor_from_numpy(np.zeros((10, 2)))
        yt = rnp.tensor_from_numpy(np.zeros(10))
        with pytest.raises(ValueError):
            train_test_split(xt, yt, 1.5)


class TestScalers:
    def test_standard_scaler_moments(self):
        x, *_ = make_regression(seed=1)
        x = x * 7.0 + 3.0
        scaled = StandardScaler().fit_transform(
            rnp.tensor_from_numpy(x)
        ).fetch()
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0, ddof=1), 1.0,
                                   atol=1e-9)

    def test_standard_scaler_constant_column(self):
        x = np.column_stack([np.ones(100), np.arange(100.0)])
        scaled = StandardScaler().fit_transform(
            rnp.tensor_from_numpy(x)
        ).fetch()
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_minmax_scaler(self):
        x, *_ = make_regression(seed=2)
        scaled = MinMaxScaler().fit_transform(
            rnp.tensor_from_numpy(x)
        ).fetch()
        assert scaled.min() == pytest.approx(0.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(
                rnp.tensor_from_numpy(np.zeros((4, 2)))
            )


class TestLinearModels:
    def test_exact_recovery(self):
        x, y, beta = make_regression(seed=3)
        model = LinearRegression().fit(
            rnp.tensor_from_numpy(x), rnp.tensor_from_numpy(y)
        )
        np.testing.assert_allclose(model.coef_, beta, atol=1e-8)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_without_intercept(self):
        x, y, beta = make_regression(seed=4)
        y = y - 0.5  # remove the intercept
        model = LinearRegression(fit_intercept=False).fit(
            rnp.tensor_from_numpy(x), rnp.tensor_from_numpy(y)
        )
        np.testing.assert_allclose(model.coef_, beta, atol=1e-8)
        assert model.intercept_ == 0.0

    def test_matches_numpy_lstsq_under_noise(self):
        x, y, _ = make_regression(seed=5, noise=0.3)
        model = LinearRegression(fit_intercept=False).fit(
            rnp.tensor_from_numpy(x), rnp.tensor_from_numpy(y)
        )
        expected, *_ = np.linalg.lstsq(x, y, rcond=None)
        np.testing.assert_allclose(model.coef_, expected, atol=1e-7)

    def test_predict_and_score(self):
        x, y, _ = make_regression(seed=6, noise=0.01)
        xt, yt = rnp.tensor_from_numpy(x), rnp.tensor_from_numpy(y)
        model = LinearRegression().fit(xt, yt)
        predictions = model.predict(xt).fetch().ravel()
        assert np.corrcoef(predictions, y)[0, 1] > 0.999
        assert model.score(xt, yt) > 0.999

    def test_ridge_shrinks(self):
        x, y, _ = make_regression(seed=7, noise=0.1)
        xt, yt = rnp.tensor_from_numpy(x), rnp.tensor_from_numpy(y)
        ols = LinearRegression(fit_intercept=False).fit(xt, yt)
        ridge = Ridge(alpha=100.0, fit_intercept=False).fit(xt, yt)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(
                rnp.tensor_from_numpy(np.zeros((4, 2)))
            )


class TestKMeans:
    def _blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        centers = np.array([[0.0, 0.0], [8.0, 8.0], [0.0, 8.0]])
        points = np.vstack([
            rng.normal(c, 0.4, (300, 2)) for c in centers
        ])
        rng.shuffle(points)
        return points, centers

    def test_recovers_centers(self):
        points, true_centers = self._blobs()
        km = KMeans(n_clusters=3, seed=1).fit(rnp.tensor_from_numpy(points))
        found = km.cluster_centers_[np.lexsort(km.cluster_centers_.T)]
        expected = true_centers[np.lexsort(true_centers.T)]
        np.testing.assert_allclose(found, expected, atol=0.3)

    def test_predict_labels_consistent(self):
        points, _ = self._blobs(seed=2)
        t = rnp.tensor_from_numpy(points)
        km = KMeans(n_clusters=3, seed=3).fit(t)
        labels = km.predict(t).fetch().ravel()
        assert set(np.unique(labels)) <= {0.0, 1.0, 2.0}
        # points in the same tight blob share a label
        first_blob = labels[np.linalg.norm(points - points[0], axis=1) < 1.0]
        assert len(set(first_blob)) == 1

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = self._blobs(seed=4)
        t = rnp.tensor_from_numpy(points)
        one = KMeans(n_clusters=1, seed=5).fit(t).inertia_
        three = KMeans(n_clusters=3, seed=5).fit(t).inertia_
        assert three < one

    def test_too_many_clusters(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(
                rnp.tensor_from_numpy(np.zeros((5, 2)))
            )


class TestMetrics:
    def test_mse_mae(self):
        a = rnp.tensor_from_numpy(np.array([1.0, 2.0, 3.0]))
        b = rnp.tensor_from_numpy(np.array([1.0, 2.0, 5.0]))
        assert mean_squared_error(a, b) == pytest.approx(4.0 / 3.0)
        assert mean_absolute_error(a, b) == pytest.approx(2.0 / 3.0)

    def test_r2_perfect_and_mean(self):
        y = rnp.tensor_from_numpy(np.array([1.0, 2.0, 3.0]))
        assert r2_score(y, y) == pytest.approx(1.0)
        mean_pred = rnp.tensor_from_numpy(np.full(3, 2.0))
        assert r2_score(y, mean_pred) == pytest.approx(0.0)

    def test_accuracy(self):
        a = rnp.tensor_from_numpy(np.array([0.0, 1.0, 1.0, 0.0]))
        b = rnp.tensor_from_numpy(np.array([0.0, 1.0, 0.0, 0.0]))
        assert accuracy_score(a, b) == pytest.approx(0.75)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error(
                rnp.tensor_from_numpy(np.zeros(3)),
                rnp.tensor_from_numpy(np.zeros(4)),
            )
