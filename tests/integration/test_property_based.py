"""Property-based tests (hypothesis) on core invariants.

The central property of the whole system: for any frame and any supported
operator chain, the distributed result equals the single-node backend's
result. Plus structural invariants of auto rechunk, fusion, scheduling,
and the storage service.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.core import Session, auto_rechunk, fusion_groups
from repro.core.fusion import color_chunk_graph
from repro.dataframe import from_frame
from repro import frame as pf

SLOW = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def small_frames(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    keys = draw(st.lists(
        st.integers(min_value=0, max_value=5), min_size=n, max_size=n,
    ))
    values = draw(st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n,
    ))
    return pf.DataFrame({"k": keys, "v": values})


@st.composite
def shapes_and_limits(draw):
    ndim = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=500)) for _ in range(ndim)
    )
    itemsize = draw(st.sampled_from([1, 4, 8]))
    limit = draw(st.integers(min_value=8, max_value=100_000))
    return shape, itemsize, limit


def tiny_session():
    cfg = Config()
    cfg.chunk_store_limit = 256  # force many chunks even on tiny frames
    return Session(cfg)


# ---------------------------------------------------------------------------
# distributed == single-node
# ---------------------------------------------------------------------------

class TestDistributedEquivalence:
    @SLOW
    @given(small_frames())
    def test_groupby_sum_equivalence(self, local):
        session = tiny_session()
        try:
            dist = from_frame(local, session)
            got = dist.groupby("k").agg({"v": "sum"}).fetch().sort_index()
            expected = local.groupby("k").agg({"v": "sum"})
            np.testing.assert_allclose(
                np.asarray(got["v"].values, float),
                np.asarray(expected["v"].values, float),
                rtol=1e-9, atol=1e-6,
            )
        finally:
            session.close()

    @SLOW
    @given(small_frames(), st.floats(min_value=-1e5, max_value=1e5,
                                     allow_nan=False))
    def test_filter_equivalence(self, local, threshold):
        session = tiny_session()
        try:
            dist = from_frame(local, session)
            got = dist[dist["v"] > threshold].fetch()
            expected = local[local["v"] > threshold]
            assert len(got) == len(expected)
            np.testing.assert_allclose(
                np.asarray(got["v"].values, float),
                np.asarray(expected["v"].values, float),
            )
        finally:
            session.close()

    @SLOW
    @given(small_frames())
    def test_sort_equivalence(self, local):
        session = tiny_session()
        try:
            dist = from_frame(local, session)
            got = dist.sort_values("v").fetch()
            expected = local.sort_values("v")
            np.testing.assert_allclose(
                np.asarray(got["v"].values, float),
                np.asarray(expected["v"].values, float),
            )
        finally:
            session.close()

    @SLOW
    @given(small_frames())
    def test_reduction_equivalence(self, local):
        session = tiny_session()
        try:
            dist = from_frame(local, session)
            assert float(dist["v"].sum()) == pytest.approx(
                float(local["v"].sum()), rel=1e-9, abs=1e-6
            )
            assert int(dist["v"].count()) == local["v"].count()
        finally:
            session.close()


# ---------------------------------------------------------------------------
# Algorithm 1 invariants
# ---------------------------------------------------------------------------

class TestAutoRechunkProperties:
    @settings(max_examples=100, deadline=None)
    @given(shapes_and_limits())
    def test_covers_shape_exactly(self, case):
        shape, itemsize, limit = case
        result = auto_rechunk(shape, {}, itemsize, limit)
        for dim, length in enumerate(shape):
            assert sum(result[dim]) == length
            assert all(e >= 1 for e in result[dim])

    @settings(max_examples=100, deadline=None)
    @given(shapes_and_limits())
    def test_constrained_dim_respected(self, case):
        shape, itemsize, limit = case
        constraint = {0: shape[0]}  # whole first dimension per chunk
        result = auto_rechunk(shape, constraint, itemsize, limit)
        assert result[0] == [shape[0]]

    @settings(max_examples=100, deadline=None)
    @given(shapes_and_limits())
    def test_chunks_bounded_unless_unit(self, case):
        shape, itemsize, limit = case
        result = auto_rechunk(shape, {}, itemsize, limit)
        max_bytes = itemsize
        for dim in range(len(shape)):
            max_bytes *= max(result[dim])
        # either within ~2x of the limit or already at minimum granularity
        at_minimum = all(max(result[d]) == 1 for d in range(len(shape)))
        assert max_bytes <= 4 * limit or at_minimum


# ---------------------------------------------------------------------------
# fusion invariants
# ---------------------------------------------------------------------------

@st.composite
def random_dags(draw):
    """Random chunk DAGs via random predecessor selection."""
    from repro.core.operator import Operator
    from repro.graph import DAG, ChunkData

    class AnyOp(Operator):
        def execute(self, ctx):
            return None

    n = draw(st.integers(min_value=1, max_value=25))
    graph = DAG()
    chunks = []
    for i in range(n):
        n_preds = draw(st.integers(min_value=0, max_value=min(i, 3)))
        preds = (
            draw(st.lists(st.sampled_from(chunks), min_size=n_preds,
                          max_size=n_preds, unique=True))
            if chunks and n_preds else []
        )
        op = AnyOp()
        chunk = op.new_chunk(preds, "tensor", (1,), (i,))
        graph.add_node(chunk)
        for p in preds:
            graph.add_edge(p, chunk)
        chunks.append(chunk)
    return graph


class TestFusionProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_dags())
    def test_groups_partition_nodes(self, graph):
        groups = fusion_groups(graph)
        seen = [c.key for g in groups for c in g]
        assert sorted(seen) == sorted(c.key for c in graph.nodes())

    @settings(max_examples=60, deadline=None)
    @given(random_dags())
    def test_groups_are_convex(self, graph):
        """No path may leave a subtask and re-enter it (deadlock-free)."""
        from repro.graph.subtask import build_subtask_graph

        groups = fusion_groups(graph)
        subtask_graph = build_subtask_graph(graph, groups)
        subtask_graph.topological_order()  # raises GraphError on a cycle

    @settings(max_examples=60, deadline=None)
    @given(random_dags())
    def test_every_node_colored(self, graph):
        color = color_chunk_graph(graph)
        assert set(color) == {c.key for c in graph.nodes()}


# ---------------------------------------------------------------------------
# storage invariants
# ---------------------------------------------------------------------------

class TestStorageProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=400),
                    min_size=1, max_size=30))
    def test_memory_accounting_never_exceeds_limit(self, sizes):
        from repro.cluster import ClusterState
        from repro.storage import StorageService

        cfg = Config()
        cfg.cluster.n_workers = 1
        cfg.cluster.memory_limit = 1200
        cfg.spill_to_disk = True
        cluster = ClusterState(cfg)
        service = StorageService(cluster, cfg)
        from repro.errors import WorkerOutOfMemory

        stored = []
        for i, size in enumerate(sizes):
            try:
                service.put(f"k{i}", bytearray(size), "worker-0")
                stored.append(f"k{i}")
            except WorkerOutOfMemory:
                pass
            assert cluster.memory["worker-0"].used <= 1200
        # everything stored must still be readable (memory or disk)
        for key in stored:
            assert service.get(key, "worker-0").value is not None
