"""End-to-end scenarios through the public API (the paper's Listing 2)."""

import numpy as np
import pytest

import repro
import repro.numpy as rnp
import repro.pandas as rpd
from repro import frame as pf
from repro.workloads.tpch import ALL_QUERIES, generate_tables, write_tables
from repro.workloads.tpch.queries import materialize


@pytest.fixture(autouse=True)
def fresh_runtime():
    repro.init(n_workers=4, chunk_store_limit=64 * 1024)
    yield
    repro.shutdown()


class TestListing2:
    def test_import_swap_array_example(self):
        a = rnp.random.rand(500, 16, seed=0)
        q, r = rnp.linalg.qr(a)
        qv, rv, av = q.fetch(), r.fetch(), a.fetch()
        np.testing.assert_allclose(qv @ rv, av, atol=1e-10)

    def test_import_swap_dataframe_example(self, tmp_path):
        rng = np.random.default_rng(1)
        local = pf.DataFrame({
            "A": rng.integers(0, 5, 5_000),
            "B": rng.normal(size=5_000),
        })
        path = tmp_path / "t.rpq"
        local.to_parquet(path)
        df = rpd.read_parquet(path)
        out = df.groupby("A").agg({"B": "min"}).fetch().sort_index()
        expected = local.groupby("A").agg({"B": "min"})
        np.testing.assert_allclose(
            np.asarray(out["B"].values, float),
            np.asarray(expected["B"].values, float),
        )

    def test_filter_iloc_example(self, tmp_path):
        rng = np.random.default_rng(2)
        local = pf.DataFrame({"col": rng.normal(size=3_000),
                              "x": np.arange(3_000)})
        path = tmp_path / "t.rpq"
        local.to_parquet(path)
        df = rpd.read_parquet(path)
        filtered = df[df["col"] < 1]
        got = filtered.iloc[10].fetch()
        expected = local[local["col"] < 1].iloc[10]
        assert got.to_list() == expected.to_list()

    def test_repr_is_deferred_evaluation(self):
        df = rpd.from_dict({"a": list(range(100))})
        session = repro.get_default_session()
        before = session.executor.report.n_subtasks
        text = repr(df.head(3))
        assert session.executor.report.n_subtasks > before
        assert "a" in text

    def test_explicit_run(self):
        df = rpd.from_dict({"a": list(range(50))})
        doubled = df["a"] * 2
        repro.run(doubled)
        session = repro.get_default_session()
        assert session.is_materialized(doubled.data)


class TestFullTpchDistributed:
    """A slice of the evaluation pipeline, end to end through files."""

    def test_three_queries_from_parquet(self, tmp_path):
        tables = generate_tables(sf=1.0, seed=7)
        paths = write_tables(tables, tmp_path)
        handles = {
            name: rpd.read_parquet(path) for name, path in paths.items()
        }
        for query in ("q1", "q6", "q3"):
            dist = materialize(ALL_QUERIES[query](handles))
            local = materialize(ALL_QUERIES[query](tables))
            if isinstance(local, float):
                assert dist == pytest.approx(local)
            else:
                assert len(dist) == len(local)

    def test_column_pruning_reads_less(self, tmp_path):
        tables = generate_tables(sf=1.0, seed=8)
        paths = write_tables(tables, tmp_path)
        li = rpd.read_parquet(paths["lineitem"])
        (li["l_quantity"] * 2).sum().fetch()
        session = repro.get_default_session()
        # the lineitem scan must have been pruned to one column
        read_ops = {
            c.op.params.get("columns") and tuple(c.op.params["columns"])
            for c in li.data.chunks if hasattr(c.op, "params")
        }
        pruned = [cols for cols in read_ops if cols is not None]
        assert pruned and all(len(cols) <= 2 for cols in pruned)


class TestSessionReuse:
    def test_many_queries_one_session(self):
        rng = np.random.default_rng(3)
        df = rpd.from_dict({
            "k": rng.integers(0, 4, 2_000),
            "v": rng.normal(size=2_000),
        })
        first = df.groupby("k").agg({"v": "sum"}).fetch()
        second = df[df["v"] > 0].head(5).fetch()
        third = float(df["v"].mean())
        assert len(first) <= 4
        assert len(second) == 5
        assert isinstance(third, float)

    def test_restart_runtime(self):
        df = rpd.from_dict({"a": [1, 2, 3]})
        df.execute()
        repro.init(n_workers=2)  # restart with a different cluster
        df2 = rpd.from_dict({"a": [4, 5, 6]})
        assert df2.fetch()["a"].to_list() == [4, 5, 6]
