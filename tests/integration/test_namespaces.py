"""The drop-in claim itself: the repro.pandas / repro.numpy namespaces
expose the names Listing 2's import swap relies on."""

import numpy as np
import pytest

import repro
import repro.numpy as rnp
import repro.pandas as rpd


class TestPandasNamespace:
    def test_constructors_exposed(self):
        for name in ("read_parquet", "read_csv", "concat", "from_frame",
                     "from_dict", "DataFrame", "Series"):
            assert hasattr(rpd, name), name

    def test_from_dict_roundtrip(self):
        repro.init(n_workers=2)
        df = rpd.from_dict({"a": [3, 1, 2]})
        assert df.sort_values("a").fetch()["a"].to_list() == [1, 2, 3]
        repro.shutdown()


class TestNumpyNamespace:
    def test_structure_mirrors_numpy(self):
        assert hasattr(rnp.random, "rand")
        assert hasattr(rnp.random, "randn")
        assert hasattr(rnp.linalg, "qr")
        assert hasattr(rnp.linalg, "lstsq")
        for name in ("ones", "zeros", "full", "arange", "array", "dot"):
            assert hasattr(rnp, name), name

    def test_array_is_from_numpy(self):
        repro.init(n_workers=2)
        t = rnp.array(np.eye(3))
        np.testing.assert_array_equal(t.fetch(), np.eye(3))
        repro.shutdown()


class TestTopLevel:
    def test_public_api(self):
        for name in ("init", "run", "shutdown", "Config", "Session",
                     "WorkerOutOfMemory", "__version__"):
            assert hasattr(repro, name), name

    def test_init_overrides(self):
        session = repro.init(n_workers=3, memory_limit=64 * 1024 * 1024,
                             chunk_store_limit=1234)
        assert session.config.cluster.n_workers == 3
        assert session.config.chunk_store_limit == 1234
        repro.shutdown()

    def test_init_rejects_unknown_override(self):
        with pytest.raises(AttributeError):
            repro.init(not_a_real_option=1)
        repro.shutdown()
