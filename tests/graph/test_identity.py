"""Stability tests for the shared structural-identity hashing.

The identity module backs two consumers with different invariants:

- fault injection needs ``structural_draw`` to be byte-identical to the
  hashing it replaced (one seed ⇒ the same faults, forever);
- the result cache needs ``compute_chunk_identities`` to produce the
  same keys for the same program across sessions (runtime chunk keys
  differ every time) and across serial/thread/process execution modes.
"""

import hashlib

import numpy as np
import pytest

import repro.frame as pf
from repro.config import Config
from repro.core.session import Session
from repro.dataframe import from_frame
from repro.graph.identity import (
    OPAQUE,
    canonical_param,
    compute_chunk_identities,
    structural_draw,
    tokenize,
    value_fingerprint,
)
from repro.utils import tokenize as utils_tokenize


def make_session(**overrides) -> Session:
    cfg = Config()
    cfg.chunk_store_limit = 8_000
    cfg.result_cache = True
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return Session(cfg)


def run_workload(session: Session):
    rng = np.random.default_rng(42)
    local = pf.DataFrame({
        "k": rng.integers(0, 6, 2_000),
        "v": rng.normal(size=2_000),
    })
    return from_frame(local, session).groupby("k").agg({"v": "sum"}).fetch()


class TestStructuralDraw:
    def test_matches_legacy_blake2b(self):
        # byte-for-byte the draw the fault injector used before hoisting:
        # changing it would re-roll every seeded chaos scenario.
        for seed, ident in [(0, ("compute", 1, 2, 0)),
                            (20240806, ("chunk_loss", 3, 7)),
                            (7, ())]:
            payload = ":".join(str(p) for p in (seed,) + ident)
            digest = hashlib.blake2b(payload.encode(), digest_size=8).digest()
            expected = int.from_bytes(digest, "big") / 2.0 ** 64
            assert structural_draw(seed, *ident) == expected

    def test_injector_delegates(self):
        from repro.core.recovery import FaultInjector
        from repro.config import FaultSpec
        injector = FaultInjector(FaultSpec(seed=11))
        assert injector._draw("compute", 1, 2, 0) == structural_draw(
            11, "compute", 1, 2, 0)

    def test_utils_tokenize_delegates(self):
        assert utils_tokenize("a", 1, (2, 3)) == tokenize("a", 1, (2, 3))


class TestCanonicalParam:
    def test_runtime_keys_are_canonicalized(self):
        assert canonical_param("c-00000123") == canonical_param("c-99999999")
        assert canonical_param("c-00000123") != canonical_param("s-00000123")
        # near-misses stay literal strings
        assert canonical_param("c-123") != canonical_param("c-456")

    def test_lambdas_distinguished_by_closure(self):
        def make(n):
            return lambda x: x + n
        assert canonical_param(make(1)) != canonical_param(make(2))
        assert canonical_param(make(1)) == canonical_param(make(1))

    def test_opaque_objects_poison(self):
        class Handle:
            pass  # default repr carries the object address
        assert canonical_param(Handle()) is OPAQUE
        assert canonical_param([1, Handle()]) is OPAQUE
        assert canonical_param({"k": Handle()}) is OPAQUE

    def test_data_values_fingerprinted(self):
        a = np.arange(10.0)
        b = np.arange(10.0)
        assert canonical_param(a) == canonical_param(b)
        b[3] = -1.0
        assert canonical_param(a) != canonical_param(b)

    def test_frame_fingerprint_detects_mutation(self):
        f1 = pf.DataFrame({"x": np.arange(5.0)})
        f2 = pf.DataFrame({"x": np.arange(5.0)})
        assert value_fingerprint(f1) == value_fingerprint(f2)
        f2["x"].values[0] = 99.0
        assert value_fingerprint(f1) != value_fingerprint(f2)


class TestCrossSessionStability:
    def test_same_workload_same_identities_across_sessions(self):
        # runtime chunk keys are process-global counters, so the two
        # sessions see entirely different keys — the content-addressed
        # identities must still match exactly.
        with make_session() as s1:
            run_workload(s1)
            idents1 = s1.cache.entry_identities()
        with make_session() as s2:
            run_workload(s2)
            idents2 = s2.cache.entry_identities()
        assert idents1 and idents1 == idents2

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_modes_agree(self, mode):
        with make_session(parallel_execution=False) as base:
            run_workload(base)
            expected = base.cache.entry_identities()
        overrides = {"parallel_execution": True, "execution_mode": mode,
                     "parallel_min_subtasks": 2, "parallel_min_cores": 1}
        if mode == "process":
            overrides["procpool_workers"] = 2
        with make_session(**overrides) as s:
            run_workload(s)
            assert s.cache.entry_identities() == expected

    def test_different_params_different_identities(self):
        with make_session() as s1:
            rng = np.random.default_rng(42)
            local = pf.DataFrame({"k": rng.integers(0, 6, 2_000),
                                  "v": rng.normal(size=2_000)})
            from_frame(local, s1).groupby("k").agg({"v": "sum"}).fetch()
            sums = set(s1.cache.entry_identities())
        with make_session() as s2:
            rng = np.random.default_rng(42)
            local = pf.DataFrame({"k": rng.integers(0, 6, 2_000),
                                  "v": rng.normal(size=2_000)})
            from_frame(local, s2).groupby("k").agg({"v": "mean"}).fetch()
            means = set(s2.cache.entry_identities())
        # the source chunks coincide; the aggregation chain must not.
        assert sums != means


class TestComputeChunkIdentities:
    def test_poison_propagates_downstream(self):
        from repro.dataframe.arithmetic import MapPartitionsChunk
        from repro.dataframe.datasource import FromFrameSlice

        frame = pf.DataFrame({"x": np.arange(4.0)})
        src_op = FromFrameSlice(frame=frame, start=0, stop=4)
        src = src_op.new_chunk([], "dataframe", (4, 1), (0, 0))

        opaque = object()
        bad_op = MapPartitionsChunk(func=lambda f, h=opaque: f)
        bad = bad_op.new_chunk([src], "dataframe", (4, 1), (0, 0))
        good_op = MapPartitionsChunk(func=lambda f: f)
        good = good_op.new_chunk([bad], "dataframe", (4, 1), (0, 0))

        idents, deps = compute_chunk_identities([src, bad, good])
        assert idents[src.key] is not None
        assert idents[bad.key] is None    # opaque default argument
        assert idents[good.key] is None   # poisoned by its dep
        assert deps[good.key] == frozenset()

    def test_known_resolves_boundaries(self):
        from repro.dataframe.arithmetic import MapPartitionsChunk

        # a materialized boundary chunk with no producer in the graph —
        # the shape a partial execute sees after a dynamic-tiling yield.
        boundary_op = MapPartitionsChunk(func=lambda f: f)
        boundary = boundary_op.new_chunk([], "dataframe", (4, 1), (0, 0))
        boundary.op = None
        consumer_op = MapPartitionsChunk(func=lambda f: f)
        consumer = consumer_op.new_chunk(
            [boundary], "dataframe", (4, 1), (0, 0))

        cold, _ = compute_chunk_identities([boundary, consumer])
        assert cold[consumer.key] is None  # unresolvable boundary

        known = {boundary.key: ("abc123", ("dep1",))}
        idents, deps = compute_chunk_identities([boundary, consumer], known)
        assert idents[boundary.key] == "abc123"
        assert idents[consumer.key] is not None
        assert "abc123" in deps[consumer.key]
        assert "dep1" in deps[consumer.key]
