"""Unit tests for the DAG container and plan entities."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    DAG,
    ChunkData,
    Subtask,
    TileableData,
    build_subtask_graph,
    shape_is_known,
)


def chain_graph(n: int):
    """c0 -> c1 -> ... -> c(n-1) as a chunk graph with linked ops."""
    from repro.core.operator import Operator

    class PassOp(Operator):
        def execute(self, ctx):
            return ctx.get(self.inputs[0].key)

    graph = DAG()
    prev = ChunkData("tensor", (1,), (0,))
    graph.add_node(prev)
    chunks = [prev]
    for i in range(1, n):
        op = PassOp()
        chunk = op.new_chunk([prev], "tensor", (1,), (i,))
        graph.add_edge(prev, chunk)
        chunks.append(chunk)
        prev = chunk
    return graph, chunks


class TestDAG:
    def test_add_and_query(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        assert set(g.successors("a")) == {"b", "c"}
        assert g.predecessors("b") == ["a"]
        assert g.sources() == ["a"]
        assert set(g.sinks()) == {"b", "c"}
        assert g.edge_count() == 2

    def test_duplicate_edge_ignored(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert g.edge_count() == 1

    def test_topological_order(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(GraphError):
            g.topological_order()

    def test_remove_node(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_node("b")
        assert "b" not in g
        assert g.successors("a") == []
        assert g.predecessors("c") == []

    def test_bfs_layers(self):
        g = DAG()
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        layers = g.bfs_layers()
        assert set(layers[0]) == {"a", "b"}
        assert layers[1] == ["c"]
        assert layers[2] == ["d"]

    def test_ancestors_descendants(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.ancestors("c") == {"a", "b"}
        assert g.descendants("a") == {"b", "c"}

    def test_subgraph(self):
        g = DAG()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        sub = g.subgraph(["a", "b"])
        assert len(sub) == 2
        assert sub.successors("a") == ["b"]
        assert "c" not in sub

    def test_copy_independent(self):
        g = DAG()
        g.add_edge("a", "b")
        h = g.copy()
        h.add_edge("b", "c")
        assert "c" not in g


class TestEntities:
    def test_shape_known(self):
        assert shape_is_known((3, 4))
        assert not shape_is_known((3, None))

    def test_chunk_defaults(self):
        chunk = ChunkData("dataframe", (10, 2), (0, 0))
        assert chunk.ndim == 2
        assert chunk.inputs == []
        assert chunk.key.startswith("c-")

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ChunkData("blob", (1,), (0,))

    def test_tileable_with_chunks_refines_shape(self):
        t = TileableData("dataframe", (None, 2))
        chunks = [ChunkData("dataframe", (4, 2), (0, 0)),
                  ChunkData("dataframe", (6, 2), (1, 0))]
        t.with_chunks(chunks, ((4, 6), (2,)))
        assert t.shape == (10, 2)
        assert t.is_tiled

    def test_refresh_from_chunks(self):
        t = TileableData("dataframe", (None, 2))
        chunks = [ChunkData("dataframe", (None, 2), (0, 0)),
                  ChunkData("dataframe", (None, 2), (1, 0))]
        t.with_chunks(chunks, ((None, None), (2,)))
        chunks[0].shape = (3, 2)
        chunks[1].shape = (5, 2)
        t.refresh_from_chunks()
        assert t.shape == (8, 2)
        assert t.nsplits[0] == (3, 5)

    def test_entity_identity_by_key(self):
        a = ChunkData("tensor", (1,), (0,))
        b = ChunkData("tensor", (1,), (0,), key=a.key)
        assert a == b and hash(a) == hash(b)


class TestSubtasks:
    def test_subtask_io_keys(self):
        graph, chunks = chain_graph(3)
        subtask = Subtask(chunks[1:])  # c1, c2 fused; c0 external
        assert subtask.input_keys == [chunks[0].key]
        assert subtask.n_ops == 2

    def test_build_subtask_graph(self):
        graph, chunks = chain_graph(4)
        groups = [[chunks[0], chunks[1]], [chunks[2], chunks[3]]]
        sgraph = build_subtask_graph(graph, groups)
        assert len(sgraph) == 2
        order = sgraph.topological_order()
        assert order[0].chunks[0] is chunks[0]
        # the first subtask must export its boundary chunk
        assert chunks[1].key in order[0].output_keys
        # internal chunk c0 is not exported
        assert chunks[0].key not in order[0].output_keys

    def test_sink_chunks_are_outputs(self):
        graph, chunks = chain_graph(2)
        sgraph = build_subtask_graph(graph, [[chunks[0], chunks[1]]])
        (subtask,) = sgraph.nodes()
        assert subtask.output_keys == [chunks[1].key]

    def test_empty_subtask_rejected(self):
        with pytest.raises(ValueError):
            Subtask([])
