"""Unit tests for repro.utils and repro.frame.sorting kernels."""

import numpy as np
import pytest

from repro.frame.sorting import argsort_values, lexsort_columns
from repro.utils import (
    batched,
    ceildiv,
    cumulative_offsets,
    geomean,
    human_bytes,
    locate_in_splits,
    new_key,
    sizeof,
    split_even,
    split_length,
    tokenize,
)


class TestKeysAndHashing:
    def test_new_key_unique_and_prefixed(self):
        keys = {new_key("x") for _ in range(100)}
        assert len(keys) == 100
        assert all(k.startswith("x-") for k in keys)

    def test_tokenize_deterministic(self):
        assert tokenize(1, "a", (2, 3)) == tokenize(1, "a", (2, 3))
        assert tokenize(1) != tokenize(2)


class TestSizeof:
    def test_numpy(self):
        assert sizeof(np.zeros(10)) == 80

    def test_object_array_charged_per_element(self):
        arr = np.array(["some string"] * 10, dtype=object)
        assert sizeof(arr) > arr.nbytes  # pointers alone undercount

    def test_containers(self):
        assert sizeof([1, 2, 3]) > sizeof([1])
        assert sizeof({"a": 1}) > 0
        assert sizeof(None) == 16
        assert sizeof("hello") > 5

    def test_unknown_object(self):
        class Thing:
            pass

        assert sizeof(Thing()) == 64


class TestSplits:
    def test_split_length(self):
        assert split_length(10, 4) == [4, 4, 2]
        assert split_length(8, 4) == [4, 4]
        assert split_length(0, 4) == []

    def test_split_length_validation(self):
        with pytest.raises(ValueError):
            split_length(-1, 4)
        with pytest.raises(ValueError):
            split_length(4, 0)

    def test_split_even(self):
        assert split_even(10, 3) == [4, 3, 3]
        assert split_even(3, 5) == [1, 1, 1, 0, 0]

    def test_cumulative_offsets(self):
        assert cumulative_offsets([3, 4, 2]) == [0, 3, 7, 9]
        assert cumulative_offsets([]) == [0]

    def test_locate_in_splits(self):
        assert locate_in_splits(0, [3, 4]) == (0, 0)
        assert locate_in_splits(3, [3, 4]) == (1, 0)
        assert locate_in_splits(6, [3, 4]) == (1, 3)
        with pytest.raises(IndexError):
            locate_in_splits(7, [3, 4])
        with pytest.raises(IndexError):
            locate_in_splits(-1, [3, 4])

    def test_ceildiv(self):
        assert ceildiv(10, 3) == 4
        assert ceildiv(9, 3) == 3


class TestIterationHelpers:
    def test_batched(self):
        assert list(batched([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        assert list(batched([], 3)) == []
        with pytest.raises(ValueError):
            list(batched([1], 0))

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert human_bytes(3 * 1024 ** 3) == "3.0 GiB"
        assert human_bytes(-2048) == "-2.0 KiB"

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])


class TestArgsortValues:
    def test_ascending_descending(self):
        values = np.array([3.0, 1.0, 2.0])
        assert argsort_values(values).tolist() == [1, 2, 0]
        assert argsort_values(values, ascending=False).tolist() == [0, 2, 1]

    def test_na_positions(self):
        values = np.array([2.0, np.nan, 1.0])
        assert argsort_values(values, na_position="last").tolist() == [2, 0, 1]
        assert argsort_values(values, na_position="first").tolist() == [1, 2, 0]
        with pytest.raises(ValueError):
            argsort_values(values, na_position="middle")

    def test_object_values(self):
        values = np.array(["b", None, "a"], dtype=object)
        assert argsort_values(values).tolist() == [2, 0, 1]

    def test_stability(self):
        values = np.array([1.0, 1.0, 0.0])
        assert argsort_values(values).tolist() == [2, 0, 1]


class TestLexsort:
    def test_two_keys(self):
        a = np.array([1, 1, 0])
        b = np.array([2.0, 1.0, 9.0])
        order = lexsort_columns([a, b], [True, True])
        assert order.tolist() == [2, 1, 0]

    def test_mixed_direction(self):
        a = np.array([1, 1, 0])
        b = np.array([1.0, 2.0, 9.0])
        order = lexsort_columns([a, b], [True, False])
        assert order.tolist() == [2, 1, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            lexsort_columns([np.array([1])], [True, False])
        with pytest.raises(ValueError):
            lexsort_columns([], [])
