"""Unit tests for the actor framework."""

import pytest

from repro.actors import Actor, ActorRef, ActorSystem
from repro.errors import ActorError


class Counter(Actor):
    def __init__(self, start: int = 0):
        super().__init__()
        self.value = start
        self.started = False
        self.stopped = False

    def on_start(self):
        self.started = True

    def on_stop(self):
        self.stopped = True

    def increment(self, by: int = 1) -> int:
        self.value += by
        return self.value

    def get(self) -> int:
        return self.value


class Caller(Actor):
    def __init__(self, target: ActorRef):
        super().__init__()
        self.target = target

    def bump_twice(self) -> int:
        self.target.increment()
        return self.target.increment()


@pytest.fixture
def system():
    sys_ = ActorSystem()
    sys_.create_pool("node-a")
    sys_.create_pool("node-b")
    return sys_


class TestLifecycle:
    def test_create_and_call(self, system):
        ref = system.create_actor("node-a", Counter, 10, uid="c1")
        assert ref.increment(5) == 15
        assert ref.get() == 15

    def test_on_start_called(self, system):
        system.create_actor("node-a", Counter, uid="c1")
        assert system.get_pool("node-a").lookup("c1").started

    def test_duplicate_uid_rejected(self, system):
        system.create_actor("node-a", Counter, uid="c1")
        with pytest.raises(ActorError):
            system.create_actor("node-a", Counter, uid="c1")

    def test_destroy_calls_on_stop(self, system):
        system.create_actor("node-a", Counter, uid="c1")
        actor = system.get_pool("node-a").lookup("c1")
        system.destroy_actor("node-a", "c1")
        assert actor.stopped
        assert not system.has_actor("node-a", "c1")

    def test_unknown_actor_raises(self, system):
        with pytest.raises(ActorError):
            system.actor_ref("node-a", "missing")

    def test_unknown_pool_raises(self, system):
        with pytest.raises(ActorError):
            system.get_pool("nowhere")

    def test_stop_pool_destroys_actors(self, system):
        system.create_actor("node-a", Counter, uid="c1")
        actor = system.get_pool("node-a").lookup("c1")
        system.stop_pool("node-a")
        assert actor.stopped
        with pytest.raises(ActorError):
            system.get_pool("node-a")


class TestMessaging:
    def test_cross_node_call(self, system):
        counter = system.create_actor("node-a", Counter, uid="counter")
        caller = system.create_actor("node-b", Caller, counter, uid="caller")
        assert caller.bump_twice() == 2

    def test_messages_logged_with_sender(self, system):
        counter = system.create_actor("node-a", Counter, uid="counter")
        caller = system.create_actor("node-b", Caller, counter, uid="caller")
        caller.bump_twice()
        recent = system.log.recent()
        senders = [(m.sender, m.recipient, m.method) for m in recent]
        assert ("<external>", "caller", "bump_twice") in senders
        assert ("caller", "counter", "increment") in senders

    def test_unknown_method_raises(self, system):
        ref = system.create_actor("node-a", Counter, uid="c1")
        with pytest.raises(ActorError):
            ref.no_such_method()

    def test_count_for(self, system):
        ref = system.create_actor("node-a", Counter, uid="c1")
        ref.increment()
        ref.increment()
        assert system.log.count_for("c1") == 2

    def test_ref_equality(self, system):
        system.create_actor("node-a", Counter, uid="c1")
        a = system.actor_ref("node-a", "c1")
        b = system.actor_ref("node-a", "c1")
        assert a == b and hash(a) == hash(b)

    def test_self_ref(self, system):
        ref = system.create_actor("node-a", Counter, uid="c1")
        actor = system.get_pool("node-a").lookup("c1")
        assert actor.ref() == ref


class TestLog:
    def test_log_bounded(self):
        from repro.actors import MessageLog, Message

        log = MessageLog(capacity=5)
        for i in range(10):
            log.record(Message("a", "b", f"m{i}"))
        assert len(log.recent(100)) == 5
        assert log.total_delivered == 10

    def test_invalid_capacity(self):
        from repro.actors import MessageLog

        with pytest.raises(ValueError):
            MessageLog(capacity=0)
