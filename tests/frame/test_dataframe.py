"""Unit tests for repro.frame.DataFrame."""

import numpy as np
import pytest

from repro import frame as pf


@pytest.fixture
def df():
    return pf.DataFrame(
        {
            "a": [1, 2, 1, 3, 2],
            "b": [10.0, 20.0, 30.0, 40.0, 50.0],
            "c": ["x", "y", "x", "z", "y"],
        }
    )


class TestConstruction:
    def test_shape_and_columns(self, df):
        assert df.shape == (5, 3)
        assert df.columns.to_list() == ["a", "b", "c"]

    def test_from_records(self):
        df = pf.DataFrame([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert df.shape == (2, 2)
        assert df["a"].to_list() == [1, 2]

    def test_from_2d_array(self):
        df = pf.DataFrame(np.arange(6).reshape(3, 2), columns=["p", "q"])
        assert df["q"].to_list() == [1, 3, 5]

    def test_scalar_broadcast(self):
        df = pf.DataFrame({"a": [1, 2], "b": 9})
        assert df["b"].to_list() == [9, 9]

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError):
            pf.DataFrame({"a": [1, 2], "b": [1]})

    def test_empty(self):
        df = pf.DataFrame({})
        assert df.empty and len(df) == 0

    def test_column_reorder(self):
        df = pf.DataFrame({"a": [1], "b": [2]}, columns=["b", "a"])
        assert df.columns.to_list() == ["b", "a"]


class TestSelection:
    def test_getitem_column(self, df):
        s = df["b"]
        assert isinstance(s, pf.Series) and s.name == "b"

    def test_getitem_missing_raises(self, df):
        with pytest.raises(KeyError):
            df["nope"]

    def test_getitem_list(self, df):
        sub = df[["c", "a"]]
        assert sub.columns.to_list() == ["c", "a"]

    def test_boolean_filter(self, df):
        out = df[df["a"] == 2]
        assert out["b"].to_list() == [20.0, 50.0]
        assert out.index.to_list() == [1, 4]

    def test_iloc_row(self, df):
        row = df.iloc[3]
        assert row["a"] == 3 and row["c"] == "z"

    def test_iloc_negative_row(self, df):
        assert df.iloc[-1]["b"] == 50.0

    def test_iloc_slice(self, df):
        assert len(df.iloc[1:3]) == 2

    def test_iloc_rows_cols(self, df):
        sub = df.iloc[[0, 1], [0, 2]]
        assert sub.columns.to_list() == ["a", "c"]

    def test_iloc_scalar_cell(self, df):
        assert df.iloc[0, 1] == 10.0

    def test_iloc_out_of_bounds(self, df):
        with pytest.raises(IndexError):
            df.iloc[99]

    def test_loc_label_rows(self, df):
        filtered = df[df["a"] == 1]
        assert filtered.loc[2, "b"] == 30.0

    def test_loc_mask_and_column(self, df):
        out = df.loc[df["a"] == 1, "b"]
        assert out.to_list() == [10.0, 30.0]

    def test_loc_setitem(self, df):
        df.loc[df["a"] == 1, "b"] = 0.0
        assert df["b"].to_list() == [0.0, 20.0, 0.0, 40.0, 50.0]

    def test_loc_setitem_promotes_dtype(self, df):
        df.loc[df["a"] == 1, "a"] = 1.5
        assert df["a"].dtype == np.float64

    def test_head_tail(self, df):
        assert len(df.head(2)) == 2
        assert df.tail(1)["c"].to_list() == ["y"]

    def test_select_dtypes(self, df):
        assert df.select_dtypes("number").columns.to_list() == ["a", "b"]
        assert df.select_dtypes("object").columns.to_list() == ["c"]


class TestMutation:
    def test_setitem_scalar(self, df):
        df["d"] = 1
        assert df["d"].to_list() == [1] * 5

    def test_setitem_series(self, df):
        df["d"] = df["a"] * 10
        assert df["d"].to_list() == [10, 20, 10, 30, 20]

    def test_setitem_length_mismatch(self, df):
        with pytest.raises(ValueError):
            df["d"] = [1, 2]

    def test_assign(self, df):
        out = df.assign(e=lambda d: d["a"] + 1)
        assert out["e"].to_list() == [2, 3, 2, 4, 3]
        assert "e" not in df  # original untouched

    def test_rename(self, df):
        out = df.rename(columns={"a": "alpha"})
        assert out.columns.to_list() == ["alpha", "b", "c"]

    def test_drop_columns(self, df):
        assert df.drop(columns=["b"]).columns.to_list() == ["a", "c"]
        assert df.drop(columns="b").columns.to_list() == ["a", "c"]

    def test_drop_missing_column_raises(self, df):
        with pytest.raises(KeyError):
            df.drop(columns=["nope"])

    def test_astype_mapping(self, df):
        out = df.astype({"a": np.float64})
        assert out["a"].dtype == np.float64
        assert out["b"].dtype == np.float64


class TestMissing:
    def test_fillna_frame(self):
        df = pf.DataFrame({"a": [1.0, np.nan], "b": ["x", None]})
        out = df.fillna({"a": 0.0, "b": "?"})
        assert out["a"].to_list() == [1.0, 0.0]
        assert out["b"].to_list() == ["x", "?"]

    def test_dropna_any(self):
        df = pf.DataFrame({"a": [1.0, np.nan, 3.0], "b": [1.0, 2.0, np.nan]})
        assert len(df.dropna()) == 1

    def test_dropna_subset(self):
        df = pf.DataFrame({"a": [1.0, np.nan], "b": [np.nan, 2.0]})
        assert len(df.dropna(subset=["a"])) == 1

    def test_dropna_how_all(self):
        df = pf.DataFrame({"a": [np.nan, 1.0], "b": [np.nan, np.nan]})
        assert len(df.dropna(how="all")) == 1

    def test_isna_frame(self):
        df = pf.DataFrame({"a": [1.0, np.nan]})
        assert df.isna()["a"].to_list() == [False, True]


class TestIndexOps:
    def test_reset_index(self, df):
        filtered = df[df["a"] == 2]
        out = filtered.reset_index()
        assert out["index"].to_list() == [1, 4]
        assert out.index.to_list() == [0, 1]

    def test_reset_index_drop(self, df):
        out = df[df["a"] == 2].reset_index(drop=True)
        assert out.index.to_list() == [0, 1]

    def test_set_index_single(self, df):
        out = df.set_index("c")
        assert out.index.name == "c"
        assert "c" not in out

    def test_set_index_multi_and_reset(self, df):
        out = df.set_index(["a", "c"]).reset_index()
        assert out.columns.to_list()[:2] == ["a", "c"]


class TestSortDedup:
    def test_sort_values_single(self, df):
        assert df.sort_values("b", ascending=False)["b"].to_list() == [
            50.0, 40.0, 30.0, 20.0, 10.0,
        ]

    def test_sort_values_multi(self, df):
        out = df.sort_values(["a", "b"], ascending=[True, False])
        assert out["b"].to_list() == [30.0, 10.0, 50.0, 20.0, 40.0]

    def test_sort_missing_key_raises(self, df):
        with pytest.raises(KeyError):
            df.sort_values("nope")

    def test_drop_duplicates(self):
        df = pf.DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert len(df.drop_duplicates()) == 2

    def test_drop_duplicates_subset(self):
        df = pf.DataFrame({"a": [1, 1, 2], "b": ["x", "y", "z"]})
        out = df.drop_duplicates(subset=["a"])
        assert out["b"].to_list() == ["x", "z"]

    def test_nlargest(self, df):
        assert df.nlargest(2, "b")["b"].to_list() == [50.0, 40.0]


class TestReductions:
    def test_sum_numeric_only(self, df):
        s = df.sum()
        assert s.index.to_list() == ["a", "b"]
        assert s.loc["a"] == 9

    def test_mean(self, df):
        assert df.mean().loc["b"] == 30.0

    def test_count(self):
        df = pf.DataFrame({"a": [1.0, np.nan], "b": ["x", "y"]})
        assert df.count().to_list() == [1, 2]

    def test_nunique(self, df):
        assert df.nunique().to_list() == [3, 5, 3]

    def test_describe(self, df):
        desc = df.describe()
        assert desc.loc["mean", "b"] == 30.0
        assert desc.loc["count", "a"] == 5.0


class TestApplyIteration:
    def test_apply_axis0(self, df):
        out = df[["a", "b"]].apply(lambda s: s.sum())
        assert out.loc["b"] == 150.0

    def test_apply_axis1(self, df):
        out = df.apply(lambda row: row["a"] * 2, axis=1)
        assert out.to_list() == [2, 4, 2, 6, 4]

    def test_itertuples(self, df):
        rows = list(df.itertuples(index=False))
        assert rows[0] == (1, 10.0, "x")

    def test_iterrows(self, df):
        label, row = next(iter(df.iterrows()))
        assert label == 0 and row["c"] == "x"


class TestArithmeticEquality:
    def test_frame_scalar_arith(self, df):
        out = df[["a", "b"]] * 2
        assert out["a"].to_list() == [2, 4, 2, 6, 4]

    def test_frame_frame_arith(self, df):
        out = df[["a"]] + df[["a"]]
        assert out["a"].to_list() == [2, 4, 2, 6, 4]

    def test_equals(self, df):
        assert df.equals(df.copy())
        assert not df.equals(df.head(2))

    def test_to_dict(self, df):
        d = df.head(1).to_dict()
        assert d["c"] == ["x"]

    def test_to_dict_records(self, df):
        recs = df.head(1).to_dict(orient="records")
        assert recs[0]["a"] == 1

    def test_values_matrix(self, df):
        assert df[["a", "b"]].values.shape == (5, 2)

    def test_memory_usage(self, df):
        assert (df.memory_usage().values > 0).all()

    def test_repr_contains_columns(self, df):
        text = repr(df)
        assert "a" in text and "c" in text
