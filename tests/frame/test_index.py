"""Unit tests for Index, RangeIndex and MultiIndex."""

import numpy as np
import pytest

from repro.frame.index import (
    Index,
    MultiIndex,
    RangeIndex,
    default_index,
    ensure_index,
)


class TestIndex:
    def test_basic(self):
        idx = Index(["a", "b", "c"], name="letters")
        assert len(idx) == 3
        assert idx.name == "letters"
        assert idx[1] == "b"
        assert "b" in idx and "z" not in idx

    def test_slice_returns_index(self):
        idx = Index([10, 20, 30])
        sub = idx[1:]
        assert isinstance(sub, Index)
        assert sub.to_list() == [20, 30]

    def test_equals_ignores_name(self):
        assert Index([1, 2], name="x").equals(Index([1, 2], name="y"))
        assert not Index([1, 2]).equals(Index([1, 3]))
        assert not Index([1]).equals(Index([1, 2]))

    def test_equals_with_nan(self):
        assert Index([1.0, np.nan]).equals(Index([1.0, np.nan]))

    def test_take(self):
        idx = Index(["a", "b", "c"], name="n")
        out = idx.take(np.array([2, 0]))
        assert out.to_list() == ["c", "a"]
        assert out.name == "n"

    def test_append_promotes_dtype(self):
        out = Index([1, 2]).append(Index([2.5]))
        assert out.to_list() == [1.0, 2.0, 2.5]

    def test_append_keeps_common_name(self):
        assert Index([1], name="n").append(Index([2], name="n")).name == "n"
        assert Index([1], name="a").append(Index([2], name="b")).name is None

    def test_get_indexer(self):
        idx = Index(["x", "y", "z"])
        assert idx.get_indexer(["z", "x"]).tolist() == [2, 0]
        with pytest.raises(KeyError):
            idx.get_indexer(["missing"])

    def test_get_indexer_first_occurrence(self):
        idx = Index(["a", "a", "b"])
        assert idx.get_indexer(["a"]).tolist() == [0]

    def test_slice_indexer_inclusive(self):
        idx = Index(["a", "b", "c", "d"])
        assert idx.slice_indexer("b", "c").tolist() == [1, 2]
        with pytest.raises(KeyError):
            idx.slice_indexer("nope", None)

    def test_argsort_and_monotonic(self):
        assert Index([3, 1, 2]).argsort().tolist() == [1, 2, 0]
        assert Index([1, 2, 3]).is_monotonic_increasing()
        assert not Index([2, 1]).is_monotonic_increasing()

    def test_object_argsort(self):
        idx = Index(["b", "a"])
        assert idx.argsort().tolist() == [1, 0]


class TestRangeIndex:
    def test_lazy_values(self):
        idx = RangeIndex(5)
        assert idx._values is None  # not materialized yet
        assert len(idx) == 5
        assert idx.values.tolist() == [0, 1, 2, 3, 4]

    def test_start_offset(self):
        idx = RangeIndex(10, start=7)
        assert list(idx) == [7, 8, 9]
        assert idx[0] == 7
        assert idx[-1] == 9
        with pytest.raises(IndexError):
            idx[3]

    def test_contains(self):
        idx = RangeIndex(5, start=2)
        assert 3 in idx and 1 not in idx and "x" not in idx

    def test_equals_fast_path(self):
        assert RangeIndex(5).equals(RangeIndex(5))
        assert not RangeIndex(5).equals(RangeIndex(6))
        assert RangeIndex(3).equals(Index([0, 1, 2]))

    def test_empty_ranges_equal(self):
        assert RangeIndex(0).equals(RangeIndex(3, start=3))

    def test_negative_stop_clamped(self):
        assert len(RangeIndex(-5)) == 0

    def test_nbytes_constant(self):
        assert RangeIndex(10 ** 6).nbytes == 32

    def test_take_materializes(self):
        out = RangeIndex(10).take(np.array([9, 0]))
        assert out.to_list() == [9, 0]


class TestMultiIndex:
    def test_from_arrays(self):
        mi = MultiIndex.from_arrays(
            [np.array([1, 1, 2]), np.array(["a", "b", "a"], dtype=object)],
            names=["num", "letter"],
        )
        assert mi.nlevels == 2
        assert mi.to_list() == [(1, "a"), (1, "b"), (2, "a")]

    def test_get_level_values(self):
        mi = MultiIndex.from_arrays(
            [np.array([1, 2]), np.array(["x", "y"], dtype=object)],
            names=["n", "l"],
        )
        assert mi.get_level_values(0).to_list() == [1, 2]
        assert mi.get_level_values("l").to_list() == ["x", "y"]

    def test_take(self):
        mi = MultiIndex([(1, "a"), (2, "b")], names=["n", "l"])
        out = mi.take(np.array([1]))
        assert out.to_list() == [(2, "b")]
        assert out.names == ["n", "l"]

    def test_append(self):
        a = MultiIndex([(1, "a")], names=["n", "l"])
        b = MultiIndex([(2, "b")], names=["n", "l"])
        out = a.append(b)
        assert out.to_list() == [(1, "a"), (2, "b")]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            MultiIndex.from_arrays([np.array([1]), np.array([1, 2])])

    def test_requires_arrays(self):
        with pytest.raises(ValueError):
            MultiIndex.from_arrays([])


class TestHelpers:
    def test_default_index(self):
        assert isinstance(default_index(3), RangeIndex)

    def test_ensure_index(self):
        assert isinstance(ensure_index(None, n=4), RangeIndex)
        idx = Index([1])
        assert ensure_index(idx) is idx
        assert ensure_index([1, 2]).to_list() == [1, 2]
        with pytest.raises(ValueError):
            ensure_index(None)
